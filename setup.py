"""Setup shim for environments without the ``wheel`` package.

The offline environment used for this reproduction lacks ``wheel``, which
PEP 517 editable installs require; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
Project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

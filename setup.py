"""Legacy-path setup shim for environments without the ``wheel`` package.

Packaging metadata lives in ``pyproject.toml`` (PEP 621); modern pip
installs -- ``pip install -e .`` included -- go through it and never
read this file.  The shim remains only for offline environments whose
pip lacks ``wheel`` and must fall back to the legacy ``setup.py
develop`` path.  The package itself is stdlib-only and also runs
straight off the tree with ``PYTHONPATH=src`` (the convention the
README, tests, and CI use).
"""

from setuptools import setup

setup()

"""Setup shim for environments without the ``wheel`` package.

The offline environment used for this reproduction lacks ``wheel``, which
PEP 517 editable installs require; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
The package itself is stdlib-only and also runs straight off the tree
with ``PYTHONPATH=src`` (the convention the README, tests, and CI use).
"""

from setuptools import setup

setup()

"""The docs layer stays true: links resolve, README examples run.

Keeps documentation rot inside tier-1 -- a moved file, renamed heading,
or API change that breaks a README example fails the suite locally,
not just in the CI docs job (which runs the same checks standalone).
"""

import doctest
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_docs import check_file, github_slug, iter_links  # noqa: E402

DOC_FILES = sorted(
    [REPO / "README.md", REPO / "ROADMAP.md", REPO / "CHANGES.md"]
    + list((REPO / "docs").glob("*.md"))
)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(path):
    assert check_file(path) == []


def test_readme_examples_execute():
    """The README's code blocks are living documentation: run them."""
    failures, tests = doctest.testfile(
        str(REPO / "README.md"), module_relative=False, verbose=False
    )
    assert tests > 0, "README lost its doctested examples"
    assert failures == 0


class TestCheckerPrimitives:
    def test_github_slug(self):
        assert github_slug("Package map") == "package-map"
        assert github_slug("`core` / *analysis*") == "core--analysis"
        # Parenthesized text stays in the slug (GitHub drops only the
        # paren characters); linked headings slug by their link text.
        assert github_slug("Setup (offline)") == "setup-offline"
        assert github_slug("See [the docs](docs/x.md)") == "see-the-docs"

    def test_iter_links_masks_code_fences(self):
        text = "[a](x.md)\n```\n[not](a-link.md)\n```\n[b](y.md#z)"
        assert list(iter_links(text)) == ["x.md", "y.md#z"]

    def test_check_file_reports_breakage(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Title\n[ok](doc.md#title) [bad](gone.md)\n")
        errors = check_file(doc)
        assert len(errors) == 1 and "gone.md" in errors[0]

"""Tests for causal chains (Definition 2)."""

import pytest

from repro.core.chains import (
    chain_length,
    is_causal_chain,
    longest_chain_between,
    longest_incoming_chain,
)
from repro.core.events import Event
from repro.core.execution_graph import GraphBuilder


def pingpong_graph():
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((1, 0), (0, 1))
    b.message((0, 1), (1, 1))
    return b.build()


class TestChainPredicates:
    def test_valid_chain(self):
        g = pingpong_graph()
        chain = [Event(0, 0), Event(1, 0), Event(0, 1), Event(1, 1)]
        assert is_causal_chain(g, chain)
        assert chain_length(g, chain) == 3

    def test_chain_with_local_edge(self):
        g = pingpong_graph()
        chain = [Event(0, 0), Event(0, 1), Event(1, 1)]
        assert is_causal_chain(g, chain)
        assert chain_length(g, chain) == 1  # one message, one local edge

    def test_invalid_chain(self):
        g = pingpong_graph()
        assert not is_causal_chain(g, [Event(1, 1), Event(0, 0)])
        with pytest.raises(ValueError):
            chain_length(g, [Event(1, 1), Event(0, 0)])

    def test_empty_is_not_a_chain(self):
        assert not is_causal_chain(pingpong_graph(), [])


class TestLongestChains:
    def test_longest_incoming(self):
        g = pingpong_graph()
        longest = longest_incoming_chain(g)
        assert longest[Event(0, 0)] == 0
        assert longest[Event(1, 0)] == 1
        assert longest[Event(1, 1)] == 3

    def test_longest_between(self):
        g = pingpong_graph()
        assert longest_chain_between(g, Event(0, 0), Event(1, 1)) == 3
        assert longest_chain_between(g, Event(1, 1), Event(0, 0)) is None

    def test_longest_between_prefers_message_heavy_path(self):
        # Two routes from (0,0) to (1,1): direct message vs. a two-message
        # detour; the longest chain counts the detour.
        b = GraphBuilder()
        b.message((0, 0), (1, 1))
        b.message((0, 0), (2, 0))
        b.message((2, 0), (1, 0))
        g = b.build()
        # (1,0) -> (1,1) via local edge: 2 messages beat the direct 1.
        assert longest_chain_between(g, Event(0, 0), Event(1, 1)) == 2

    def test_unknown_events_raise(self):
        g = pingpong_graph()
        with pytest.raises(KeyError):
            longest_chain_between(g, Event(9, 9), Event(0, 0))

"""Targeted adversarial conformance cases for the integer kernels.

Where :mod:`tests.core.test_kernel_differential` sweeps whole random
workloads, this suite aims at the specific shapes that can break an
integer kernel while leaving random sweeps green:

* cross-multiplication overflow -- probes at deep Stern-Brocot ratios
  with huge numerators/denominators, including ones past the vector
  backend's int64 guard (which must *degrade*, not overflow);
* the ``p < q`` domain boundary of the safe-slack certificate class;
* exact tie resolution at the worst ratio (the probe at the worst
  ratio itself answers True, its Farey successor False -- a boundary
  float arithmetic cannot hold);
* summary re-weighting above and below the compaction floor;
* the PR 2 seeded Bellman-Ford counterexample (seeded detection must
  climb through forward edges on every kernel);
* the certificate-window soundness invariant: whenever the O(1) window
  pre-check passes, the exact sweep must also pass -- with a direct
  regression for the ``(df=0, db=0, dl>0)`` always-negative slack
  class that once slipped through the window;
* witness-memo interaction with checkpoint/rollback.
"""

import random
from fractions import Fraction

import pytest

from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.kernel import (
    FlatIntKernel,
    available_kernels,
    make_kernel,
    spfa_has_negative_cycle,
)
from repro.core.synchrony import (
    AdmissibilityChecker,
    farey_successor,
)
from repro.scenarios.generators import (
    random_execution_graph,
    streaming_trace,
)
from repro.sim.trace import Trace, build_execution_graph

REFERENCE = "py_object"
KERNELS = [name for name in available_kernels() if name != REFERENCE]


def random_checker_pair(kernel, seed, n_processes=3, n_messages=14):
    graph = random_execution_graph(
        random.Random(seed), n_processes, n_messages
    )
    return (
        AdmissibilityChecker(graph, kernel=REFERENCE),
        AdmissibilityChecker(graph, kernel=kernel),
    )


def stern_brocot_path(depth: int) -> list[Fraction]:
    """Mediant descent toward sqrt(2): numerators and denominators grow
    exponentially, exactly the deep-refinement ratios the worst-ratio
    search can probe on adversarial executions."""
    lo, hi = Fraction(1), Fraction(2)
    path = []
    for _ in range(depth):
        mid = Fraction(
            lo.numerator + hi.numerator, lo.denominator + hi.denominator
        )
        path.append(mid)
        if mid * mid < 2:
            lo = mid
        else:
            hi = mid
    return path


@pytest.mark.parametrize("kernel", KERNELS)
class TestOverflowShapes:
    def test_deep_stern_brocot_probes(self, kernel):
        ref, alt = random_checker_pair(kernel, seed=2)
        for ratio in stern_brocot_path(120)[::7]:
            assert ref.has_ratio_at_least(ratio) == alt.has_ratio_at_least(
                ratio
            ), f"diverged at {ratio.numerator}/{ratio.denominator}"

    def test_past_int64_guard(self, kernel):
        # Numerator/denominator far beyond 2**63: any fixed-width
        # backend must detect the overflow hazard and degrade to exact
        # big-int arithmetic rather than wrap.
        huge = Fraction(2**70 + 1, 2**70 - 1)
        astronomically = Fraction(10**40 + 7, 10**40 - 9)
        for seed in (3, 4, 5):
            ref, alt = random_checker_pair(kernel, seed=seed)
            for ratio in (huge, astronomically):
                assert ref.has_ratio_at_least(
                    ratio
                ) == alt.has_ratio_at_least(ratio)

    def test_worst_ratio_search_on_dense_graph(self, kernel):
        # End-to-end Stern-Brocot search (the deepest p/q consumer).
        for seed in range(6):
            ref, alt = random_checker_pair(
                kernel, seed=seed, n_messages=20
            )
            assert ref.worst_relevant_ratio() == alt.worst_relevant_ratio()


@pytest.mark.parametrize("kernel", KERNELS)
class TestDomainBoundaries:
    def test_p_below_q_probes(self, kernel):
        # Ratios below 1 are out of the safe-slack certificate's domain
        # (its nonnegativity argument needs p >= q); the kernel must
        # answer them exactly anyway, matching the raw reference loop.
        for seed in range(5):
            graph = random_execution_graph(random.Random(seed), 3, 12)
            checker = AdmissibilityChecker(graph, kernel=kernel)
            k = checker._kernel
            for p, q in ((1, 2), (2, 3), (1, 5), (3, 4)):
                assert k.has_negative_cycle(p, q, None) == (
                    spfa_has_negative_cycle(checker, p, q, None)
                ), (seed, p, q)

    def test_exact_tie_at_worst_ratio(self, kernel):
        # has_ratio_at_least(worst) is True and has_ratio_at_least just
        # above worst is False: a zero-weight cycle tie that exact
        # arithmetic must resolve identically on every kernel.
        hits = 0
        for seed in range(12):
            ref, alt = random_checker_pair(kernel, seed=seed)
            worst = ref.worst_relevant_ratio()
            if worst is None:
                continue
            hits += 1
            above = farey_successor(worst, ref.ratio_bound)
            for checker in (ref, alt):
                assert checker.has_ratio_at_least(worst)
                assert not checker.has_ratio_at_least(above)
        assert hits >= 3, "workload produced too few relevant cycles"


@pytest.mark.parametrize("kernel", KERNELS)
class TestSummaryReweighting:
    def _trace(self, seed=13, n=70):
        return streaming_trace(
            random.Random(seed), n_processes=4, n_records=n
        )

    def test_probes_above_floor_match_full_graph(self, kernel):
        trace = self._trace()
        graph = build_execution_graph(trace)
        full = AdmissibilityChecker(graph, kernel=REFERENCE)
        compacted = AdmissibilityChecker(graph, kernel=kernel)
        cut = [
            event
            for process in range(trace.n)
            for event in graph.events_of(process)[
                : len(graph.events_of(process)) // 2
            ]
        ]
        floor = compacted.worst_relevant_ratio()
        compacted.compact_prefix(cut, mode="summary", floor=floor)
        assert compacted.n_summary_edges > 0
        probe = floor if floor is not None else Fraction(1)
        for _ in range(6):
            probe = farey_successor(probe, full.ratio_bound)
            assert compacted.has_ratio_at_least(
                probe
            ) == full.has_ratio_at_least(probe), probe

    def test_below_floor_kernels_agree_with_each_other(self, kernel):
        # Below the floor the compacted graph legitimately differs from
        # the full graph -- but the kernels must still agree on *it*.
        trace = self._trace(seed=14)
        graph = build_execution_graph(trace)
        cut = [
            event
            for process in range(trace.n)
            for event in graph.events_of(process)[
                : len(graph.events_of(process)) // 2
            ]
        ]
        pair = []
        for name in (REFERENCE, kernel):
            checker = AdmissibilityChecker(graph, kernel=name)
            floor = checker.worst_relevant_ratio()
            checker.compact_prefix(cut, mode="summary", floor=floor)
            pair.append(checker)
        ref, alt = pair
        for num in range(1, 9):
            for den in range(1, 5):
                ratio = Fraction(num, den)
                assert ref.has_ratio_at_least(
                    ratio
                ) == alt.has_ratio_at_least(ratio), ratio
        assert ref.worst_relevant_ratio() == alt.worst_relevant_ratio()


@pytest.mark.parametrize("kernel", KERNELS)
class TestSeededCounterexample:
    def test_seeded_search_climbs_through_forward_edges(self, kernel):
        """PR 2's five-process counterexample: the violating cycle's
        prefix weight turns nonnegative at a forward edge, so anything
        short of true Bellman-Ford from the source set misses it."""
        xi = Fraction(3, 2)
        a0, b0 = Event(0, 0), Event(1, 0)
        c0, c1 = Event(2, 0), Event(2, 1)
        d0, d1 = Event(3, 0), Event(3, 1)
        e0, e1 = Event(4, 0), Event(4, 1)
        base = ExecutionGraph(
            {0: [a0], 1: [b0], 2: [c0, c1], 3: [d0, d1], 4: [e0]},
            [
                MessageEdge(b0, e0),
                MessageEdge(b0, c1),
                MessageEdge(d1, c0),
                MessageEdge(a0, d0),
            ],
        )
        checker = AdmissibilityChecker(base, kernel=kernel)
        assert not checker.has_ratio_at_least(xi)
        checker.add_event(e1)
        checker.add_message(a0, e1)
        assert checker.has_ratio_at_least(xi)
        assert checker.has_ratio_at_least(xi, sources=(e1,))

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_matches_full_on_frontier_extensions(self, kernel, seed):
        rng = random.Random(seed)
        graph = random_execution_graph(rng, 3, rng.randint(4, 10))
        checker = AdmissibilityChecker(graph, kernel=kernel)
        worst = checker.worst_relevant_ratio()
        src = rng.choice(sorted(graph.events()))
        process = rng.randrange(3)
        dst = Event(process, checker.n_events_of(process))
        checker.add_event(dst)
        if src != dst:
            checker.add_message(src, dst)
        probe = Fraction(1) if worst is None else worst
        for _ in range(4):
            assert checker.has_ratio_at_least(
                probe, sources=(dst,)
            ) == checker.has_ratio_at_least(probe), (seed, probe)
            probe = farey_successor(probe, checker.ratio_bound)


class TestWindowSoundness:
    """The flat kernel's O(1) certificate window must never claim a pass
    the exact sweep would refute -- the invariant whose violation once
    produced a wrong ``False`` (missed violation) after compaction."""

    def test_always_bad_df_zero_db_positive(self):
        checker = AdmissibilityChecker(kernel="flat_int")
        k = FlatIntKernel(checker)
        k._reset()
        k._bucket_add((0, 1, 0))
        assert k._n_always_bad == 1
        assert not k._window_passes(5, 1, 10)
        k._bucket_remove((0, 1, 0))
        assert k._n_always_bad == 0

    def test_always_bad_df_zero_db_zero_dl_positive(self):
        # Regression: (df=0, db=0, dl>0) evaluates to exactly -dl at
        # *every* ratio -- its ratio term is identically zero, so the
        # max_dl >= s guard never applies and only the always-bad count
        # can catch it.  Settled clock fixpoints cannot produce the
        # triple, but capped cascades / capped re-pin passes can.
        checker = AdmissibilityChecker(kernel="flat_int")
        k = FlatIntKernel(checker)
        k._reset()
        k._bucket_add((0, 0, 3))
        assert k._n_always_bad == 1
        for p, q, s in ((5, 1, 100), (2, 1, 4), (7, 3, 10**6)):
            assert not k._window_passes(p, q, s)
        k._bucket_remove((0, 0, 3))
        assert k._n_always_bad == 0
        # The harmless df == 0 profiles do not trip the counter.
        k._bucket_add((0, 0, 0))
        k._bucket_add((0, 0, -2))
        k._bucket_add((0, -1, 5))
        assert k._n_always_bad == 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_window_pass_implies_sweep_clean(self, kernel, monkeypatch):
        # Property: on live workloads, every window pass must be backed
        # by a clean exact sweep (the window is an optimization of the
        # sweep, never a relaxation of it).
        window = FlatIntKernel._window_passes
        sweep = FlatIntKernel._sweep_clean
        checked = {"passes": 0}

        def checked_window(self, p, q, s):
            ok = window(self, p, q, s)
            if ok:
                checked["passes"] += 1
                assert sweep(self, p, q, s), (
                    f"window certified ({p},{q},{s}) but the exact "
                    "sweep refutes it"
                )
            return ok

        monkeypatch.setattr(FlatIntKernel, "_window_passes", checked_window)
        for seed in range(6):
            trace = streaming_trace(
                random.Random(seed), n_processes=3, n_records=50
            )
            checker = AdmissibilityChecker(kernel=kernel)
            for k in range(10, len(trace.records) + 1, 10):
                checker.absorb(
                    build_execution_graph(
                        Trace(trace.n, trace.faulty, trace.records[:k])
                    )
                )
                checker.worst_relevant_ratio()
        assert checked["passes"] > 0, "window certificate never engaged"


@pytest.mark.parametrize("kernel", KERNELS)
class TestWitnessMemoRollback:
    def test_rollback_invalidates_memo(self, kernel):
        # A True probe seeds the witness memo; rolling the stream back
        # past the witness must invalidate it, and post-rollback answers
        # must match the reference exactly.
        for seed in range(8):
            trace = streaming_trace(
                random.Random(seed), n_processes=3, n_records=50
            )
            cut = 25
            half = build_execution_graph(
                Trace(trace.n, trace.faulty, trace.records[:cut])
            )
            full = build_execution_graph(trace)
            ref = AdmissibilityChecker(half, kernel=REFERENCE)
            alt = AdmissibilityChecker(half, kernel=kernel)
            half_worst = ref.worst_relevant_ratio()
            assert alt.worst_relevant_ratio() == half_worst
            tokens = (ref.checkpoint(), alt.checkpoint())
            ref.absorb(full)
            alt.absorb(full)
            full_worst = ref.worst_relevant_ratio()
            assert alt.worst_relevant_ratio() == full_worst
            if full_worst is not None:
                # Repeat-probe the worst ratio: the second answer rides
                # the witness memo on the flat kernel and must agree.
                assert alt.has_ratio_at_least(full_worst)
                assert alt.has_ratio_at_least(full_worst)
            ref.rollback(tokens[0])
            alt.rollback(tokens[1])
            assert alt.worst_relevant_ratio() == half_worst
            probe = Fraction(1) if full_worst is None else full_worst
            for _ in range(3):
                assert ref.has_ratio_at_least(
                    probe
                ) == alt.has_ratio_at_least(probe), (seed, probe)
                probe = farey_successor(probe, ref.ratio_bound)


@pytest.mark.parametrize("kernel", KERNELS)
class TestKernelSelection:
    def test_env_var_selection(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        assert AdmissibilityChecker().kernel_name == kernel
        monkeypatch.delenv("REPRO_KERNEL")
        assert AdmissibilityChecker().kernel_name == REFERENCE

    def test_ctor_overrides_env(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", REFERENCE)
        assert AdmissibilityChecker(kernel=kernel).kernel_name == kernel

    def test_pickle_is_kernel_portable(self, kernel):
        import pickle

        graph = random_execution_graph(random.Random(7), 3, 10)
        checker = AdmissibilityChecker(graph, kernel=kernel)
        worst = checker.worst_relevant_ratio()
        clone = pickle.loads(pickle.dumps(checker))
        assert clone.kernel_name == kernel
        assert clone.worst_relevant_ratio() == worst
        clone.set_kernel(REFERENCE)
        assert clone.worst_relevant_ratio() == worst

"""Tests for the Section-6 weaker variants of the ABC model."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuts import Cut
from repro.core.cycles import relevant_cycles
from repro.core.events import Event
from repro.core.execution_graph import GraphBuilder
from repro.core.synchrony import check_abc, find_violating_cycle
from repro.core.variants import (
    check_abc_forward_bounded,
    check_abc_length_restricted,
    check_eventual_abc,
    earliest_stabilization_cut,
    running_worst_ratio,
    suffix_graph,
    unknown_xi_infimum,
)
from repro.scenarios.generators import random_execution_graph


class TestSuffixGraph:
    def test_empty_cut_keeps_graph(self, fig3_like_graph):
        suffix = suffix_graph(fig3_like_graph, Cut(frozenset()))
        assert suffix.n_events == fig3_like_graph.n_events
        assert len(suffix.messages) == len(fig3_like_graph.messages)

    def test_cut_removes_events_and_messages(self, fig3_like_graph):
        cut = Cut(frozenset({Event(0, 0)}))
        suffix = suffix_graph(fig3_like_graph, cut)
        assert suffix.n_events == fig3_like_graph.n_events - 1
        # (0,0) sent two messages; both disappear.
        assert len(suffix.messages) == len(fig3_like_graph.messages) - 2


class TestEventualAbc:
    def test_violating_graph_stabilizes(self, fig3_like_graph):
        cut = earliest_stabilization_cut(fig3_like_graph, 2)
        assert len(cut) >= 1
        assert check_eventual_abc(fig3_like_graph, 2, cut).admissible

    def test_admissible_graph_needs_no_cut(self, broadcast_graph):
        cut = earliest_stabilization_cut(broadcast_graph, 2)
        assert len(cut) == 0

    def test_eventual_check_respects_cut(self, fig3_like_graph):
        empty = Cut(frozenset())
        assert not check_eventual_abc(fig3_like_graph, 2, empty).admissible


class TestUnknownXi:
    def test_infimum_equals_worst_ratio(self, fig3_like_graph, chain_only_graph):
        assert unknown_xi_infimum(fig3_like_graph) == 2
        assert unknown_xi_infimum(chain_only_graph) is None

    def test_running_worst_ratio_monotone_on_prefixes(self, fig3_like_graph):
        g = fig3_like_graph
        prefixes = [
            g.prefix([Event(0, 2)]),
            g,
        ]
        ratios = running_worst_ratio(prefixes)
        cleaned = [r if r is not None else Fraction(0) for r in ratios]
        assert cleaned == sorted(cleaned)


def seed_earliest_stabilization_cut(graph, xi):
    """Frozen copy of the pre-tombstoning implementation: rebuilds the
    suffix graph (and a fresh checker) per absorbed cut and maps witness
    events back through the survivor re-indexing.  The differential
    baseline for the shared-digraph version; do not "fix" it."""
    absorbed: set[Event] = set()
    while True:
        current = Cut(frozenset(absorbed))
        suffix = suffix_graph(graph, current)
        witness = find_violating_cycle(suffix, xi)
        if witness is None:
            return (
                Cut(frozenset(absorbed)).left_closure(graph)
                if absorbed
                else current
            )
        survivors_by_process = {
            p: [ev for ev in graph.events_of(p) if ev not in current]
            for p in graph.processes
        }
        original_events = [
            survivors_by_process[ev.process][ev.index]
            for ev in witness.cycle.events
        ]
        earliest = min(original_events)
        absorbed |= graph.causal_past([earliest])


def eventually_admissible_graph(rng, extra_messages=10):
    """A random execution with an injected inadmissible prefix: the
    Figure-3 violation first, then a random causal-order suffix."""
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((1, 0), (0, 1))
    b.message((0, 1), (1, 1))
    b.message((1, 1), (0, 2))
    b.message((0, 0), (2, 0))
    b.message((2, 0), (0, 3))
    counts = {0: 4, 1: 2, 2: 1}
    events = [Event(p, i) for p, n in counts.items() for i in range(n)]
    for _ in range(extra_messages):
        src = events[rng.randrange(len(events))]
        dst_process = rng.randrange(3)
        dst = Event(dst_process, counts[dst_process])
        counts[dst_process] += 1
        b.message(src, dst)
        events.append(dst)
    return b.build()


class TestTombstonedStabilizationCut:
    """Cross-validation of the shared-digraph (tombstoning) stabilization
    search against the frozen suffix-rebuild implementation."""

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("xi", [Fraction(3, 2), Fraction(2)])
    def test_identical_cuts_with_inadmissible_prefix(self, seed, xi):
        graph = eventually_admissible_graph(random.Random(seed))
        expected = seed_earliest_stabilization_cut(graph, xi)
        actual = earliest_stabilization_cut(graph, xi)
        assert actual.events == expected.events
        assert check_eventual_abc(graph, xi, actual).admissible

    @pytest.mark.parametrize("seed", range(15))
    def test_identical_cuts_on_random_graphs(self, seed):
        rng = random.Random(seed + 1000)
        graph = random_execution_graph(rng, 3, rng.randint(4, 14))
        for xi in (Fraction(3, 2), Fraction(2), Fraction(3)):
            expected = seed_earliest_stabilization_cut(graph, xi)
            actual = earliest_stabilization_cut(graph, xi)
            assert actual.events == expected.events, (seed, xi)


class TestForwardBounded:
    def test_matches_paper_example(self, fig3_like_graph):
        # The fig3 violation has 2 forward messages: visible at bound 2,
        # exempt at bound 1.
        assert not check_abc_forward_bounded(fig3_like_graph, 2, max_forward=2)
        assert check_abc_forward_bounded(fig3_like_graph, 2, max_forward=1)

    def test_validation(self, fig3_like_graph):
        with pytest.raises(ValueError):
            check_abc_forward_bounded(fig3_like_graph, 1, max_forward=2)
        with pytest.raises(ValueError):
            check_abc_forward_bounded(fig3_like_graph, 2, max_forward=0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), bound=st.integers(1, 3))
def test_forward_bounded_matches_exhaustive(seed, bound):
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(2, 8))
    for xi in (Fraction(3, 2), Fraction(2)):
        fast = check_abc_forward_bounded(graph, xi, max_forward=bound)
        slow = not any(
            info.violates(xi) and info.forward_messages <= bound
            for info in relevant_cycles(graph)
        )
        assert fast == slow, f"seed={seed} xi={xi} bound={bound}"


class TestLengthRestricted:
    def test_long_cycles_exempt(self, fig3_like_graph):
        # The violating cycle has 6 messages + locals; restricting to
        # short cycles hides it.
        result = check_abc_length_restricted(fig3_like_graph, 2, max_length=4)
        assert result.admissible
        full = check_abc_length_restricted(fig3_like_graph, 2, max_length=20)
        assert not full.admissible

    def test_consistent_with_unrestricted(self, fig3_like_graph):
        full = check_abc_length_restricted(fig3_like_graph, 2, max_length=10**6)
        assert full.admissible == check_abc(fig3_like_graph, 2).admissible

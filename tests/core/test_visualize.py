"""Tests for the DOT/ASCII exporters."""

from repro.core.synchrony import find_violating_cycle
from repro.core.visualize import to_ascii, to_dot
from repro.scenarios.figures import fig3_graph


def test_dot_contains_all_nodes_and_edges(fig3_like_graph):
    dot = to_dot(fig3_like_graph)
    assert dot.startswith("digraph execution {") and dot.endswith("}")
    for ev in fig3_like_graph.events():
        assert f"e_{ev.process}_{ev.index}" in dot
    assert dot.count("->") == fig3_like_graph.n_edges


def test_dot_highlights_violating_cycle():
    graph, _ = fig3_graph(2)
    witness = find_violating_cycle(graph, 2)
    dot = to_dot(graph, highlight=witness)
    assert dot.count("color=blue") == witness.backward_messages
    assert dot.count("color=red") == witness.forward_messages


def test_dot_with_times_and_labels(broadcast_graph):
    times = {ev: float(i) for i, ev in enumerate(broadcast_graph.events())}
    dot = to_dot(
        broadcast_graph,
        label_of=lambda ev: f"E{ev.index}",
        times=times,
    )
    assert "E0" in dot and "t=0.00" in dot


def test_ascii_lists_processes_and_messages(fig3_like_graph):
    text = to_ascii(fig3_like_graph)
    assert "p0:" in text and "p2:" in text
    assert "messages:" in text
    assert text.count("->") == len(fig3_like_graph.messages)

"""Differential conformance: every kernel vs the ``py_object`` reference.

The kernel layer's contract (:mod:`repro.core.kernel`) is *bit
identity*: any kernel, on any workload, must produce exactly the
answers of the reference SPFA -- worst ratios, oracle booleans,
witnesses, violation callbacks, and oracle-call counts, at **every
prefix** of the stream, not just at the end.  This suite drives the
kernels in lockstep through all the generator profiles (storm, burst,
idler, relay), the simulator scenarios (ping-pong storm, zero-delay
burst, long-silence), the metadata-free degraded mode, and randomized
hypothesis streams, asserting identity after each observation; the
checkpoint / rollback / speculate surface is exercised the same way.

If a kernel ever diverges, the failing assertion names the first
prefix where it happened -- the bisection is built in.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.online import OnlineAbcMonitor
from repro.core.kernel import available_kernels
from repro.core.synchrony import AdmissibilityChecker
from repro.scenarios.generators import (
    long_silence,
    ping_pong_storm,
    profiled_trace_records,
    streaming_trace,
    strip_sends_metadata,
    zero_delay_burst,
)
from repro.sim import SimulationLimits, Simulator
from repro.sim.trace import Trace, build_execution_graph

REFERENCE = "py_object"
KERNELS = [name for name in available_kernels() if name != REFERENCE]

RECORD_PROFILES = ("storm", "burst", "idler", "relay")
SIM_SCENARIOS = {
    "ping_pong": ping_pong_storm,
    "zero_delay": zero_delay_burst,
    "long_silence": long_silence,
}
PROBE_RATIOS = (
    Fraction(1),
    Fraction(3, 2),
    Fraction(2),
    Fraction(5, 2),
    Fraction(4),
)


def profile_records(profile: str, n: int = 120, seed: int = 9):
    return list(profiled_trace_records(random.Random(seed), profile, n))


def sim_records(scenario: str, max_events: int = 300):
    processes, network = SIM_SCENARIOS[scenario]()
    trace = Simulator(processes, network, seed=0).run(
        SimulationLimits(max_events=max_events)
    )
    return list(trace.records)


def lockstep_monitors(records, kernel, xi=None, compact_threshold=None):
    """Replay ``records`` through a reference and a ``kernel`` monitor
    in lockstep, asserting identity at every prefix; returns the pair.
    """
    monitors = {
        name: OnlineAbcMonitor(
            xi=xi, compact_threshold=compact_threshold, kernel=name
        )
        for name in (REFERENCE, kernel)
    }
    ref, alt = monitors[REFERENCE], monitors[kernel]
    for i, record in enumerate(records):
        ratios = {n: m.observe(record) for n, m in monitors.items()}
        assert ratios[REFERENCE] == ratios[kernel], (
            f"worst ratio diverged at prefix {i + 1}: "
            f"{ratios[REFERENCE]} vs {ratios[kernel]} ({kernel})"
        )
        assert ref.oracle_calls == alt.oracle_calls, (
            f"oracle-call counts diverged at prefix {i + 1}"
        )
    assert ref.changes == alt.changes
    assert ref.violation == alt.violation
    assert ref.forgotten_message_edges == alt.forgotten_message_edges
    assert ref.auto_compactions == alt.auto_compactions
    return ref, alt


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("profile", RECORD_PROFILES)
class TestGeneratorProfiles:
    def test_every_prefix_identical(self, profile, kernel):
        ref, alt = lockstep_monitors(profile_records(profile), kernel)
        for xi in PROBE_RATIOS[1:]:
            assert ref.check(xi) == alt.check(xi)

    def test_with_xi_and_witness(self, profile, kernel):
        # A xi low enough that storm/burst profiles actually violate:
        # the witness cycle and the callback history must also match.
        ref, alt = lockstep_monitors(
            profile_records(profile), kernel, xi=Fraction(3, 2)
        )
        if ref.violation is not None:
            assert ref.violation.cycle == alt.violation.cycle
            assert ref.violation.ratio == alt.violation.ratio

    def test_compacting_monitor_identical(self, profile, kernel):
        # Adaptive summary compaction exercises the summary re-weighting
        # path of each kernel at every compaction point.
        ref, alt = lockstep_monitors(
            profile_records(profile), kernel, compact_threshold=2.0
        )
        assert ref.summary_edges == alt.summary_edges
        assert ref.auto_compactions > 0 or profile == "idler"


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("scenario", sorted(SIM_SCENARIOS))
class TestSimulatorScenarios:
    def test_every_prefix_identical(self, scenario, kernel):
        records = sim_records(scenario)
        assert records, "scenario produced no records"
        ref, alt = lockstep_monitors(records, kernel, xi=Fraction(2))
        assert ref.violation == alt.violation


@pytest.mark.parametrize("kernel", KERNELS)
class TestDegradedMetadataFree:
    def test_stripped_sends_identical(self, kernel):
        # Without sends metadata the compacting monitor degrades to a
        # counted lower bound -- both kernels must degrade identically.
        records = strip_sends_metadata(profile_records("burst"))
        ref, alt = lockstep_monitors(
            records, kernel, compact_threshold=2.0
        )
        assert ref.worst_ratio == alt.worst_ratio


@pytest.mark.parametrize("kernel", KERNELS)
class TestCheckpointRollbackSpeculate:
    def _checker_pair(self, kernel, n_records=80, seed=23):
        trace = streaming_trace(
            random.Random(seed), n_processes=4, n_records=n_records
        )
        graph = build_execution_graph(trace)
        return (
            AdmissibilityChecker(graph, kernel=REFERENCE),
            AdmissibilityChecker(graph, kernel=kernel),
            trace,
        )

    def test_checkpoint_rollback_identity(self, kernel):
        ref, alt, trace = self._checker_pair(kernel)
        cut = len(trace.records) // 2
        half = build_execution_graph(
            Trace(trace.n, trace.faulty, trace.records[:cut])
        )
        ref_half = AdmissibilityChecker(half, kernel=REFERENCE)
        alt_half = AdmissibilityChecker(half, kernel=kernel)
        tokens = (ref_half.checkpoint(), alt_half.checkpoint())
        full = build_execution_graph(trace)
        ref_half.absorb(full)
        alt_half.absorb(full)
        assert (
            ref_half.worst_relevant_ratio()
            == alt_half.worst_relevant_ratio()
        )
        ref_half.rollback(tokens[0])
        alt_half.rollback(tokens[1])
        for p in PROBE_RATIOS:
            assert ref_half.has_ratio_at_least(
                p
            ) == alt_half.has_ratio_at_least(p), (
                f"post-rollback probe at {p} diverged ({kernel})"
            )
        assert (
            ref_half.worst_relevant_ratio()
            == alt_half.worst_relevant_ratio()
        )

    def test_speculate_identity(self, kernel):
        ref, alt, trace = self._checker_pair(kernel)
        for checker in (ref, alt):
            with checker.speculate() as spec:
                # The speculative view answers through the same kernel;
                # exiting must restore the pre-speculation answers.
                spec_worst = spec.worst_relevant_ratio()
            checker._spec_worst = spec_worst
        assert ref._spec_worst == alt._spec_worst
        assert ref.worst_relevant_ratio() == alt.worst_relevant_ratio()

    def test_interleaved_probe_stream(self, kernel):
        # Alternate absorption and probes so each kernel's incremental
        # state (pin, slacks, witness memo) is exercised mid-growth.
        trace = streaming_trace(
            random.Random(31), n_processes=4, n_records=60
        )
        ref = AdmissibilityChecker(kernel=REFERENCE)
        alt = AdmissibilityChecker(kernel=kernel)
        for k in range(10, len(trace.records) + 1, 10):
            prefix = build_execution_graph(
                Trace(trace.n, trace.faulty, trace.records[:k])
            )
            ref.absorb(prefix)
            alt.absorb(prefix)
            for p in PROBE_RATIOS:
                assert ref.has_ratio_at_least(
                    p
                ) == alt.has_ratio_at_least(p), (
                    f"probe at {p} diverged after {k} records ({kernel})"
                )
            ref_cycle = ref.violating_cycle(Fraction(3, 2))
            alt_cycle = alt.violating_cycle(Fraction(3, 2))
            assert (ref_cycle is None) == (alt_cycle is None)
            if ref_cycle is not None:
                assert ref_cycle.cycle == alt_cycle.cycle


@pytest.mark.parametrize("kernel", KERNELS)
class TestRandomizedStreams:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_random_stream_identity(self, kernel, seed):
        trace = streaming_trace(
            random.Random(seed), n_processes=3, n_records=40
        )
        lockstep_monitors(list(trace.records), kernel, xi=Fraction(2))

"""Speculative extension and prefix tombstoning of the checker.

The ABC-enforcing scheduler rests on two guarantees of
:class:`~repro.core.synchrony.AdmissibilityChecker`:

* ``checkpoint()`` / ``rollback()`` round trips leave the checker
  *bit-identical* to one freshly built from the same graph -- same
  digraph arrays, adjacency, message set, frontier counts, and the same
  answer to every oracle query;
* ``remove_prefix()`` turns the checker into an exact oracle for the
  suffix graph, and a prefix chosen by ``removable_prefix()`` (no
  crossing messages) splits the worst relevant ratio of the full graph
  into ``max(prefix, suffix)`` -- the decomposition that makes
  tombstoning sound inside the enforcer.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.cuts import Cut
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.synchrony import AdmissibilityChecker
from repro.core.variants import suffix_graph
from repro.scenarios.generators import random_execution_graph

RATIO_GRID = [Fraction(1), Fraction(4, 3), Fraction(3, 2), Fraction(2), Fraction(3)]


def fingerprint(checker: AdmissibilityChecker):
    """Every piece of digraph state an oracle answer can depend on."""
    return (
        list(checker._nodes),
        dict(checker._index),
        list(checker._tails),
        list(checker._heads),
        list(checker._kinds),
        list(checker._steps),
        [list(adj) for adj in checker._adj],
        set(checker._messages),
        checker._n_locals,
        dict(checker._events_per_process),
        dict(checker._first_live),
    )


def grow_speculatively(checker: AdmissibilityChecker, rng: random.Random) -> None:
    """Push a random batch of events and messages inside a speculation."""
    added: list[Event] = []
    for _ in range(rng.randint(1, 4)):
        process = rng.randrange(3)
        event = Event(process, checker.n_events_of(process))
        checker.add_event(event)
        added.append(event)
    candidates = [ev for ev in checker._nodes if ev not in added]
    for event in added:
        src = rng.choice(candidates) if candidates else None
        if src is not None and src != event:
            checker.add_message(src, event)


class TestCheckpointRollback:
    @pytest.mark.parametrize("seed", range(20))
    def test_round_trip_is_bit_identical(self, seed):
        rng = random.Random(seed)
        graph = random_execution_graph(rng, 3, rng.randint(3, 12))
        checker = AdmissibilityChecker(graph)
        before = fingerprint(checker)
        answers_before = [checker.has_ratio_at_least(r) for r in RATIO_GRID]
        with checker.speculate():
            grow_speculatively(checker, rng)
            checker.worst_relevant_ratio()
            with checker.speculate():  # nested speculation rolls back too
                grow_speculatively(checker, rng)
        assert fingerprint(checker) == before
        fresh = AdmissibilityChecker(graph)
        assert fingerprint(fresh) == before
        answers_after = [checker.has_ratio_at_least(r) for r in RATIO_GRID]
        answers_fresh = [fresh.has_ratio_at_least(r) for r in RATIO_GRID]
        assert answers_before == answers_after == answers_fresh
        assert checker.worst_relevant_ratio() == fresh.worst_relevant_ratio()

    def test_explicit_checkpoint_tokens_nest(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        outer = checker.checkpoint()
        event = Event(0, checker.n_events_of(0))
        checker.add_event(event)
        inner = checker.checkpoint()
        reply = Event(1, checker.n_events_of(1))
        checker.add_event(reply)
        checker.add_message(event, reply)
        checker.rollback(inner)
        assert checker.n_events_of(1) == reply.index
        checker.rollback(outer)
        assert fingerprint(checker) == fingerprint(
            AdmissibilityChecker(fig3_like_graph)
        )

    def test_rollback_to_future_checkpoint_rejected(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        with checker.speculate():
            checker.add_event(Event(0, checker.n_events_of(0)))
            token = checker.checkpoint()
        with pytest.raises(ValueError):
            checker.rollback(token)

    def test_rollback_across_remove_prefix_rejected(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        token = checker.checkpoint()
        checker.remove_prefix([Event(0, 0)])
        with pytest.raises(ValueError):
            checker.rollback(token)

    def test_remove_prefix_inside_speculation_rejected(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        with checker.speculate():
            with pytest.raises(RuntimeError):
                checker.remove_prefix([Event(0, 0)])


class TestSeededDetection:
    def test_seeded_search_climbs_through_forward_edges(self):
        """Regression: seeded detection must do genuine Bellman-Ford
        from the source set (non-sources at +infinity).

        Five-process counterexample: the base graph is violation-free at
        Xi = 3/2; adding receive event e1 with message a0 -> e1 closes
        the violating cycle

            e1 -> e0 (local) -> b0 (against b0->e0) -> c1 (along b0->c1)
               -> c0 (local) -> d1 (against d1->c0) -> d0 (local)
               -> a0 (against a0->d0) -> e1 (along a0->e1)

        with |Z-| = 3, |Z+| = 2, ratio 3/2.  Walked from the seed e1,
        the prefix weight turns nonnegative at the forward edge
        b0 -> c1, so a zero-initialized seeded search stalls there and
        misses the cycle even though it passes through the seed.
        """
        xi = Fraction(3, 2)
        a0, b0 = Event(0, 0), Event(1, 0)
        c0, c1 = Event(2, 0), Event(2, 1)
        d0, d1 = Event(3, 0), Event(3, 1)
        e0, e1 = Event(4, 0), Event(4, 1)
        base = ExecutionGraph(
            {0: [a0], 1: [b0], 2: [c0, c1], 3: [d0, d1], 4: [e0]},
            [
                MessageEdge(b0, e0),
                MessageEdge(b0, c1),
                MessageEdge(d1, c0),
                MessageEdge(a0, d0),
            ],
        )
        checker = AdmissibilityChecker(base)
        assert not checker.has_ratio_at_least(xi)
        checker.add_event(e1)
        checker.add_message(a0, e1)
        assert checker.has_ratio_at_least(xi)
        assert checker.has_ratio_at_least(xi, sources=(e1,))

    @pytest.mark.parametrize("seed", range(15))
    def test_seeded_matches_full_for_frontier_extensions(self, seed):
        """A violation-free graph extended by one message: seeding the
        search from the new receive event decides exactly like the full
        sweep (the enforcer's situation)."""
        rng = random.Random(seed)
        graph = random_execution_graph(rng, 3, rng.randint(3, 10))
        checker = AdmissibilityChecker(graph)
        worst = checker.worst_relevant_ratio()
        # Pick ratios the base graph cannot reach: any hit after the
        # extension must come through the new edge.
        ratios = [r for r in RATIO_GRID if worst is None or r > worst]
        src = rng.choice(list(graph.events()))
        process = rng.randrange(3)
        dst = Event(process, checker.n_events_of(process))
        checker.add_event(dst)
        if src != dst:
            checker.add_message(src, dst)
        for ratio in ratios:
            assert checker.has_ratio_at_least(
                ratio, sources=(dst,)
            ) == checker.has_ratio_at_least(ratio), (seed, ratio)


class TestTombstoning:
    @pytest.mark.parametrize("seed", range(20))
    def test_remove_prefix_is_the_suffix_graph_oracle(self, seed):
        rng = random.Random(seed)
        graph = random_execution_graph(rng, 3, rng.randint(3, 12))
        cut_seed = rng.choice(list(graph.events()))
        cut = graph.causal_past([cut_seed])
        checker = AdmissibilityChecker(graph)
        removed = checker.remove_prefix(cut)
        assert removed == len(cut)
        assert checker.n_tombstoned == removed
        suffix = suffix_graph(graph, Cut(frozenset(cut)))
        reference = AdmissibilityChecker(suffix)
        assert checker.n_events == reference.n_events
        assert checker.n_messages == reference.n_messages
        assert checker.n_local_edges == reference.n_local_edges
        for ratio in RATIO_GRID:
            assert checker.has_ratio_at_least(ratio) == reference.has_ratio_at_least(
                ratio
            )
        assert checker.worst_relevant_ratio() == reference.worst_relevant_ratio()

    def test_remove_prefix_is_idempotent_and_contiguous(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        cut = fig3_like_graph.causal_past([Event(0, 1)])
        assert checker.remove_prefix(cut) == len(cut)
        # Passing the cumulative cut again is a no-op.
        assert checker.remove_prefix(cut) == 0
        with pytest.raises(ValueError):
            # Skipping an index is not a left-closed prefix extension.
            checker.remove_prefix([Event(0, 3)])
        with pytest.raises(KeyError):
            checker.remove_prefix([Event(0, 2), Event(0, 3), Event(0, 99)])

    @pytest.mark.parametrize("seed", range(20))
    def test_removable_prefix_splits_worst_ratio(self, seed):
        """No message crosses a removable prefix, so the full worst
        ratio is exactly max(worst of prefix, worst of suffix)."""
        rng = random.Random(seed)
        graph = random_execution_graph(rng, 3, rng.randint(4, 14))
        checker = AdmissibilityChecker(graph)
        full_worst = checker.worst_relevant_ratio()
        pinned = rng.sample(list(graph.events()), rng.randint(0, 3))
        removable = checker.removable_prefix(pinned)
        for event in pinned:
            assert event not in removable
        dead = set(removable)
        for message in graph.messages:
            assert (message.src in dead) == (message.dst in dead)
        if not removable:
            return
        # The removed prefix is itself a valid execution graph.
        by_process: dict[int, list[Event]] = {}
        for event in sorted(dead):
            by_process.setdefault(event.process, []).append(event)
        prefix = ExecutionGraph(
            by_process,
            [m for m in graph.messages if m.src in dead and m.dst in dead],
        )
        prefix_worst = AdmissibilityChecker(prefix).worst_relevant_ratio()
        checker.remove_prefix(removable)
        suffix_worst = checker.worst_relevant_ratio()
        candidates = [w for w in (prefix_worst, suffix_worst) if w is not None]
        assert full_worst == (max(candidates) if candidates else None)

    def test_grow_after_tombstoning(self, fig3_like_graph):
        """New events keep arriving at their historical indices; a
        tombstoned predecessor simply leaves no local edge, as in the
        suffix graph."""
        checker = AdmissibilityChecker(fig3_like_graph)
        checker.remove_prefix(fig3_like_graph.causal_past([Event(2, 0)]))
        next_event = Event(2, checker.n_events_of(2))
        checker.add_event(next_event)
        assert checker.n_events_of(2) == next_event.index + 1
        peer = Event(0, checker.n_events_of(0))
        checker.add_event(peer)
        assert checker.add_message(next_event, peer)

"""Tests for consistent cuts and cut intervals (Definitions 5-6)."""

from repro.core.cuts import (
    Cut,
    clock_values_at_cut,
    cut_interval,
    is_consistent_cut,
    left_closure,
    real_time_cut,
)
from repro.core.events import Event
from repro.core.execution_graph import GraphBuilder


def diamond_graph():
    """p0 broadcasts to p1 and p2; both reply to p0."""
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((0, 0), (2, 0))
    b.message((1, 0), (0, 1))
    b.message((2, 0), (0, 2))
    return b.build()


class TestClosure:
    def test_left_closure_adds_causal_past(self):
        g = diamond_graph()
        cut = left_closure(g, [Event(0, 1)])
        assert cut.events == {Event(0, 0), Event(1, 0), Event(0, 1)}

    def test_closure_is_idempotent(self):
        g = diamond_graph()
        once = left_closure(g, [Event(0, 2)])
        twice = once.left_closure(g)
        assert once.events == twice.events

    def test_empty_closure(self):
        g = diamond_graph()
        assert left_closure(g, []).events == frozenset()

    def test_is_left_closed(self):
        g = diamond_graph()
        assert Cut(frozenset({Event(0, 0)})).is_left_closed(g)
        assert not Cut(frozenset({Event(0, 1)})).is_left_closed(g)


class TestConsistency:
    def test_consistent_cut_needs_coverage(self):
        g = diamond_graph()
        closed_but_partial = {Event(0, 0), Event(1, 0)}
        assert is_consistent_cut(g, closed_but_partial, correct=[0, 1])
        assert not is_consistent_cut(g, closed_but_partial, correct=[0, 1, 2])

    def test_consistent_cut_needs_left_closure(self):
        g = diamond_graph()
        not_closed = {Event(0, 0), Event(1, 0), Event(2, 0), Event(0, 2)}
        assert not is_consistent_cut(g, not_closed, correct=[0, 1, 2])
        closed = g.causal_past(not_closed)
        assert is_consistent_cut(g, closed, correct=[0, 1, 2])


class TestFrontier:
    def test_frontier_is_last_event_per_process(self):
        g = diamond_graph()
        cut = left_closure(g, [Event(0, 2)])
        frontier = cut.frontier()
        assert frontier[0] == Event(0, 2)
        assert frontier[2] == Event(2, 0)

    def test_restricted_to(self):
        g = diamond_graph()
        cut = left_closure(g, [Event(0, 2)])
        assert cut.restricted_to(2) == (Event(2, 0),)


class TestCutInterval:
    def test_interval_is_difference_of_closures(self):
        g = diamond_graph()
        interval = cut_interval(g, Event(0, 1), Event(0, 2))
        assert Event(0, 2) in interval
        assert Event(2, 0) in interval
        assert Event(0, 0) not in interval

    def test_interval_of_same_event_empty(self):
        g = diamond_graph()
        assert len(cut_interval(g, Event(0, 1), Event(0, 1))) == 0


class TestClockValues:
    def test_clock_values_take_maximum(self):
        g = diamond_graph()
        cut = left_closure(g, [Event(0, 2)])
        clocks = {Event(0, 0): 0, Event(0, 1): 1, Event(0, 2): 2,
                  Event(1, 0): 1, Event(2, 0): 1}
        values = clock_values_at_cut(cut, clocks.get, [0, 1, 2])
        assert values == {0: 2, 1: 1, 2: 1}

    def test_none_values_skipped(self):
        g = diamond_graph()
        cut = left_closure(g, [Event(0, 1)])
        values = clock_values_at_cut(cut, lambda ev: None, [0, 1])
        assert values == {}


class TestRealTimeCut:
    def test_cut_at_time(self):
        times = {Event(0, 0): 0.0, Event(1, 0): 1.5, Event(0, 1): 3.0}
        cut = real_time_cut(times, 1.5)
        assert cut.events == {Event(0, 0), Event(1, 0)}

    def test_realtime_cuts_are_left_closed_with_nonnegative_delays(self):
        g = diamond_graph()
        # Times consistent with the happens-before relation.
        times = {Event(0, 0): 0.0, Event(1, 0): 1.0, Event(2, 0): 2.0,
                 Event(0, 1): 2.0, Event(0, 2): 3.0}
        for t in [0.0, 1.0, 2.0, 2.5, 3.0]:
            cut = real_time_cut(times, t)
            assert cut.is_left_closed(g)

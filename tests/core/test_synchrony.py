"""Tests for the ABC synchrony condition decision procedures.

The polynomial Bellman-Ford checker is cross-validated against exhaustive
cycle enumeration on hand-crafted and random graphs (the central
correctness property of the whole library).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.synchrony import (
    check_abc,
    check_abc_exhaustive,
    find_violating_cycle,
    has_relevant_cycle_with_ratio_at_least,
    worst_relevant_ratio,
    worst_relevant_ratio_exhaustive,
)
from repro.scenarios.generators import random_execution_graph

XIS = [Fraction(3, 2), Fraction(2), Fraction(5, 2), Fraction(4)]


class TestKnownGraphs:
    def test_fig3_rejected_at_xi_2(self, fig3_like_graph):
        assert not check_abc(fig3_like_graph, 2).admissible

    def test_fig3_accepted_above_2(self, fig3_like_graph):
        assert check_abc(fig3_like_graph, Fraction(5, 2)).admissible

    def test_broadcast_always_admissible(self, broadcast_graph):
        for xi in XIS:
            assert check_abc(broadcast_graph, xi).admissible

    def test_chain_has_no_relevant_cycle(self, chain_only_graph):
        assert worst_relevant_ratio(chain_only_graph) is None

    def test_worst_ratio_exact(self, fig3_like_graph, broadcast_graph):
        assert worst_relevant_ratio(fig3_like_graph) == 2
        assert worst_relevant_ratio(broadcast_graph) == 1

    def test_witness_is_a_violation(self, fig3_like_graph):
        info = find_violating_cycle(fig3_like_graph, 2)
        assert info is not None
        assert info.relevant
        assert info.ratio >= 2

    def test_no_witness_when_admissible(self, fig3_like_graph):
        assert find_violating_cycle(fig3_like_graph, 3) is None

    def test_xi_must_exceed_one(self, broadcast_graph):
        with pytest.raises(ValueError):
            check_abc(broadcast_graph, 1)
        with pytest.raises(ValueError):
            check_abc(broadcast_graph, Fraction(1, 2))

    def test_result_is_truthy_on_admissible(self, broadcast_graph):
        assert check_abc(broadcast_graph, 2)
        assert not check_abc(broadcast_graph, 2).witness


class TestOracle:
    def test_ratio_one_detects_any_relevant_cycle(
        self, broadcast_graph, chain_only_graph
    ):
        assert has_relevant_cycle_with_ratio_at_least(broadcast_graph, 1)
        assert not has_relevant_cycle_with_ratio_at_least(chain_only_graph, 1)

    def test_oracle_monotone(self, fig3_like_graph):
        results = [
            has_relevant_cycle_with_ratio_at_least(fig3_like_graph, x)
            for x in [1, Fraction(3, 2), 2, Fraction(5, 2), 3]
        ]
        # True prefix then False suffix.
        assert results == sorted(results, reverse=True)

    def test_degenerate_pair_not_a_witness(self):
        # A self-message next to its local edge must never register as a
        # relevant cycle, even at ratio exactly 1.
        from repro.core.execution_graph import GraphBuilder

        b = GraphBuilder()
        b.message((0, 0), (0, 1))
        g = b.build()
        assert not has_relevant_cycle_with_ratio_at_least(g, 1)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_checker_matches_exhaustive_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(
        rng, n_processes=rng.randint(2, 4), n_messages=rng.randint(2, 9)
    )
    for xi in (Fraction(3, 2), Fraction(2), Fraction(3)):
        fast = check_abc(graph, xi).admissible
        slow = check_abc_exhaustive(graph, xi).admissible
        assert fast == slow, f"seed={seed} xi={xi}"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_worst_ratio_matches_exhaustive_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(
        rng, n_processes=rng.randint(2, 4), n_messages=rng.randint(2, 9)
    )
    assert worst_relevant_ratio(graph) == worst_relevant_ratio_exhaustive(graph)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_admissible_iff_xi_above_worst_ratio(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(3, 10))
    worst = worst_relevant_ratio(graph)
    if worst is None:
        assert check_abc(graph, Fraction(11, 10)).admissible
        return
    above = worst + Fraction(1, 7)
    assert check_abc(graph, above).admissible
    if worst > 1:
        assert not check_abc(graph, worst).admissible

"""Tests for the ABC synchrony condition decision procedures.

The polynomial Bellman-Ford checker is cross-validated against exhaustive
cycle enumeration on hand-crafted and random graphs (the central
correctness property of the whole library).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.execution_graph import GraphBuilder
from repro.core.synchrony import (
    AdmissibilityChecker,
    as_xi,
    check_abc,
    check_abc_exhaustive,
    find_violating_cycle,
    has_relevant_cycle_with_ratio_at_least,
    worst_relevant_ratio,
    worst_relevant_ratio_exhaustive,
)
from repro.scenarios.generators import random_execution_graph

XIS = [Fraction(3, 2), Fraction(2), Fraction(5, 2), Fraction(4)]


class TestKnownGraphs:
    def test_fig3_rejected_at_xi_2(self, fig3_like_graph):
        assert not check_abc(fig3_like_graph, 2).admissible

    def test_fig3_accepted_above_2(self, fig3_like_graph):
        assert check_abc(fig3_like_graph, Fraction(5, 2)).admissible

    def test_broadcast_always_admissible(self, broadcast_graph):
        for xi in XIS:
            assert check_abc(broadcast_graph, xi).admissible

    def test_chain_has_no_relevant_cycle(self, chain_only_graph):
        assert worst_relevant_ratio(chain_only_graph) is None

    def test_worst_ratio_exact(self, fig3_like_graph, broadcast_graph):
        assert worst_relevant_ratio(fig3_like_graph) == 2
        assert worst_relevant_ratio(broadcast_graph) == 1

    def test_witness_is_a_violation(self, fig3_like_graph):
        info = find_violating_cycle(fig3_like_graph, 2)
        assert info is not None
        assert info.relevant
        assert info.ratio >= 2

    def test_no_witness_when_admissible(self, fig3_like_graph):
        assert find_violating_cycle(fig3_like_graph, 3) is None

    def test_xi_must_exceed_one(self, broadcast_graph):
        with pytest.raises(ValueError):
            check_abc(broadcast_graph, 1)
        with pytest.raises(ValueError):
            check_abc(broadcast_graph, Fraction(1, 2))

    def test_result_is_truthy_on_admissible(self, broadcast_graph):
        assert check_abc(broadcast_graph, 2)
        assert not check_abc(broadcast_graph, 2).witness


class TestOracle:
    def test_ratio_one_detects_any_relevant_cycle(
        self, broadcast_graph, chain_only_graph
    ):
        assert has_relevant_cycle_with_ratio_at_least(broadcast_graph, 1)
        assert not has_relevant_cycle_with_ratio_at_least(chain_only_graph, 1)

    def test_oracle_monotone(self, fig3_like_graph):
        results = [
            has_relevant_cycle_with_ratio_at_least(fig3_like_graph, x)
            for x in [1, Fraction(3, 2), 2, Fraction(5, 2), 3]
        ]
        # True prefix then False suffix.
        assert results == sorted(results, reverse=True)

    def test_degenerate_pair_not_a_witness(self):
        # A self-message next to its local edge must never register as a
        # relevant cycle, even at ratio exactly 1.
        from repro.core.execution_graph import GraphBuilder

        b = GraphBuilder()
        b.message((0, 0), (0, 1))
        g = b.build()
        assert not has_relevant_cycle_with_ratio_at_least(g, 1)


class TestAsXi:
    def test_normalizes(self):
        assert as_xi("3/2") == Fraction(3, 2)
        assert as_xi(2) == Fraction(2)
        assert as_xi(2.5) == Fraction(5, 2)

    @pytest.mark.parametrize("bad", [1, Fraction(1), 0.5, "2/3", 0, -3])
    def test_rejects_xi_at_most_one(self, bad):
        with pytest.raises(ValueError, match="requires Xi > 1"):
            as_xi(bad)

    def test_used_by_every_xi_entry_point(self, broadcast_graph):
        from repro.core.variants import (
            check_abc_forward_bounded,
            check_abc_length_restricted,
            check_eventual_abc,
        )
        from repro.core.cuts import Cut

        for call in [
            lambda: check_abc(broadcast_graph, 1),
            lambda: check_abc_exhaustive(broadcast_graph, 1),
            lambda: find_violating_cycle(broadcast_graph, 1),
            lambda: check_abc_forward_bounded(broadcast_graph, 1, 2),
            lambda: check_abc_length_restricted(broadcast_graph, 1, 5),
            lambda: check_eventual_abc(broadcast_graph, 1, Cut(frozenset())),
            lambda: AdmissibilityChecker(broadcast_graph).check(1),
        ]:
            with pytest.raises(ValueError, match="requires Xi > 1"):
                call()


class TestAdmissibilityChecker:
    def test_many_queries_one_construction(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        assert not checker.check(2).admissible
        assert checker.check(Fraction(5, 2)).admissible
        assert checker.worst_relevant_ratio() == 2
        assert checker.has_ratio_at_least(1)
        assert not checker.has_ratio_at_least(3)

    def test_incremental_equals_batch_construction(self, fig3_like_graph):
        incremental = AdmissibilityChecker()
        for p in fig3_like_graph.processes:
            for ev in fig3_like_graph.events_of(p):
                incremental.add_event(ev)
        for m in fig3_like_graph.messages:
            incremental.add_message(m.src, m.dst)
        batch = AdmissibilityChecker(fig3_like_graph)
        assert incremental.worst_relevant_ratio() == batch.worst_relevant_ratio()
        assert incremental.n_messages == batch.n_messages
        assert incremental.n_local_edges == batch.n_local_edges

    def test_out_of_order_events_rejected(self):
        checker = AdmissibilityChecker()
        checker.add_event(Event(0, 0))
        with pytest.raises(ValueError, match="local order"):
            checker.add_event(Event(0, 2))

    def test_message_endpoints_must_exist(self):
        checker = AdmissibilityChecker()
        checker.add_event(Event(0, 0))
        with pytest.raises(KeyError):
            checker.add_message(Event(0, 0), Event(1, 0))

    def test_duplicate_messages_deduplicated(self, broadcast_graph):
        checker = AdmissibilityChecker(broadcast_graph)
        message = broadcast_graph.messages[0]
        assert not checker.add_message(message.src, message.dst)
        assert checker.n_messages == len(broadcast_graph.messages)
        assert checker.worst_relevant_ratio() == worst_relevant_ratio(
            broadcast_graph
        )

    def test_warm_start_hint_gives_same_answer(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        cold = checker.worst_relevant_ratio()
        assert checker.worst_relevant_ratio(at_least=Fraction(3, 2)) == cold
        assert checker.worst_relevant_ratio(at_least=cold) == cold

    def test_oracle_call_counter(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        assert checker.oracle_calls == 0
        checker.has_ratio_at_least(2)
        assert checker.oracle_calls == 1


class TestGallopClamp:
    def test_search_never_probes_beyond_denominator_bound(self, fig3_like_graph):
        """Satellite regression: the Stern-Brocot gallop used to probe
        mediants with denominators beyond the message count -- wasted
        oracle calls whose answer is forced."""
        checker = AdmissibilityChecker(fig3_like_graph)
        max_den = len(fig3_like_graph.messages)
        seen: list[Fraction] = []
        original = AdmissibilityChecker.has_ratio_at_least

        def recording(self, ratio):
            seen.append(Fraction(ratio))
            return original(self, ratio)

        AdmissibilityChecker.has_ratio_at_least = recording
        try:
            checker.worst_relevant_ratio()
        finally:
            AdmissibilityChecker.has_ratio_at_least = original
        assert seen, "search made no oracle calls"
        assert all(r.denominator <= max_den for r in seen)

    def test_search_never_repeats_a_query(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        seen: list[Fraction] = []
        original = AdmissibilityChecker.has_ratio_at_least

        def recording(self, ratio):
            seen.append(Fraction(ratio))
            return original(self, ratio)

        AdmissibilityChecker.has_ratio_at_least = recording
        try:
            checker.worst_relevant_ratio()
        finally:
            AdmissibilityChecker.has_ratio_at_least = original
        assert len(seen) == len(set(seen))


class TestWitnessOnMultigraphs:
    def multigraph_with_parallel_self_messages(self):
        """Self-messages run in parallel with the local edges of their
        process in the shadow multigraph; the violating cycle must pick
        exactly one of each parallel pair."""
        b = GraphBuilder()
        for i in range(4):
            b.message((0, i), (0, i + 1))  # self-messages, 4 fast hops
        b.message((0, 0), (1, 0))  # a 2-message chain they span
        b.message((1, 0), (0, 5))
        return b.build()

    def test_witness_is_simple_and_relevant(self):
        """Regression: negative-cycle witness extraction must return a
        simple relevant cycle even when parallel H-edges exist."""
        graph = self.multigraph_with_parallel_self_messages()
        info = find_violating_cycle(graph, 2)
        assert info is not None
        assert info.relevant
        assert info.ratio is not None and info.ratio >= 2
        assert info.cycle.is_simple()

    def test_worst_ratio_matches_exhaustive(self):
        graph = self.multigraph_with_parallel_self_messages()
        assert worst_relevant_ratio(graph) == worst_relevant_ratio_exhaustive(
            graph
        )

    def test_degenerate_two_cycle_never_reported(self):
        # A single self-message next to its local edge: the H 2-cycle
        # through both traversal directions must not register.
        b = GraphBuilder()
        b.message((0, 0), (0, 1))
        g = b.build()
        assert worst_relevant_ratio(g) is None


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_checker_matches_exhaustive_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(
        rng, n_processes=rng.randint(2, 4), n_messages=rng.randint(2, 9)
    )
    for xi in (Fraction(3, 2), Fraction(2), Fraction(3)):
        fast = check_abc(graph, xi).admissible
        slow = check_abc_exhaustive(graph, xi).admissible
        assert fast == slow, f"seed={seed} xi={xi}"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_worst_ratio_matches_exhaustive_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(
        rng, n_processes=rng.randint(2, 4), n_messages=rng.randint(2, 9)
    )
    assert worst_relevant_ratio(graph) == worst_relevant_ratio_exhaustive(graph)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_admissible_iff_xi_above_worst_ratio(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(3, 10))
    worst = worst_relevant_ratio(graph)
    if worst is None:
        assert check_abc(graph, Fraction(11, 10)).admissible
        return
    above = worst + Fraction(1, 7)
    assert check_abc(graph, above).admissible
    if worst > 1:
        assert not check_abc(graph, worst).admissible


class TestAbsorbBatch:
    """The bulk twin of add_event/add_message: bit-identical behavior,
    batch-atomic event validation, per-record message errors."""

    @staticmethod
    def columns_from(records, faulty=frozenset()):
        """Transpose records into absorb_batch columns, applying the
        monitor's message filter (faulty senders, forgotten prefixes
        are irrelevant here: nothing is tombstoned)."""
        processes = [r.event.process for r in records]
        indexes = [r.event.index for r in records]
        messages = [
            None
            if r.send_event is None or r.sender in faulty
            else (r.send_event.process, r.send_event.index)
            for r in records
        ]
        return processes, indexes, messages

    @staticmethod
    def absorb_per_record(checker, records, faulty=frozenset()):
        added = 0
        for r in records:
            checker.add_event(r.event)
            if r.send_event is None or r.sender in faulty:
                continue
            if checker.add_message(r.send_event, r.event):
                added += 1
        return added

    @pytest.mark.parametrize("profile", ("storm", "burst", "firehose"))
    @pytest.mark.parametrize("batch", (1, 5, 32))
    def test_matches_per_record_loop(self, profile, batch):
        """Every observable -- event/message counts, worst-ratio
        refresh sequence, oracle-call counts -- must match the
        per-record loop at every batch boundary.  In-batch message
        sources (the firehose norm) exercise the batch-local id cache."""
        from repro.scenarios.generators import profiled_trace_records

        records = profiled_trace_records(random.Random(13), profile, 70)
        loop = AdmissibilityChecker()
        bulk = AdmissibilityChecker()
        loop_worst = bulk_worst = None
        for i in range(0, len(records), batch):
            chunk = records[i : i + batch]
            n_loop = self.absorb_per_record(loop, chunk)
            n_bulk = bulk.absorb_batch(*_split_cols(self.columns_from(chunk)))
            assert n_bulk == n_loop
            assert bulk.n_events == loop.n_events
            assert bulk.n_messages == loop.n_messages
            loop_worst = loop.updated_worst_ratio(loop_worst)
            bulk_worst = bulk.updated_worst_ratio(bulk_worst)
            assert bulk_worst == loop_worst
            assert bulk.oracle_calls == loop.oracle_calls

    def test_witness_identical_to_per_record(self):
        """H-edge insertion order is part of the contract: the witness
        cycle the kernels report depends on it, so the violating cycle
        must be step-for-step identical."""
        from repro.scenarios.generators import profiled_trace_records

        records = profiled_trace_records(random.Random(1), "storm", 80)
        loop = AdmissibilityChecker()
        bulk = AdmissibilityChecker()
        self.absorb_per_record(loop, records)
        bulk.absorb_batch(*_split_cols(self.columns_from(records)))
        xi = Fraction(2)
        loop_cycle = loop.violating_cycle(xi)
        bulk_cycle = bulk.violating_cycle(xi)
        assert loop_cycle is not None, "storm workloads must violate Xi=2"
        assert bulk_cycle.cycle.steps == loop_cycle.cycle.steps
        assert bulk_cycle.ratio == loop_cycle.ratio

    def test_returns_message_edge_count(self):
        ch = AdmissibilityChecker()
        added = ch.absorb_batch(
            ([0, 1, 1], [0, 0, 1]), [None, (0, 0), None]
        )
        assert added == 1
        assert (ch.n_events, ch.n_messages) == (3, 1)

    def test_out_of_order_event_leaves_checker_untouched(self):
        """Validation is a pre-pass: a bad event column must reject the
        whole batch before any mutation, unlike message errors."""
        ch = AdmissibilityChecker()
        ch.add_event(Event(0, 0))
        with pytest.raises(ValueError, match="local order"):
            ch.absorb_batch(([0, 0], [1, 3]), None)  # gap after index 1
        assert ch.n_events == 1
        assert ch.n_events_of(0) == 1
        # The checker is still usable and order still enforced.
        ch.absorb_batch(([0], [1]), None)
        assert ch.n_events == 2

    def test_ragged_columns_rejected(self):
        ch = AdmissibilityChecker()
        with pytest.raises(ValueError, match="equal lengths"):
            ch.absorb_batch(([0, 0], [0]), None)
        with pytest.raises(ValueError, match="equal lengths"):
            ch.absorb_batch(([0], [0]), [None, None])

    def test_unknown_message_source_raises(self):
        ch = AdmissibilityChecker()
        with pytest.raises(KeyError, match="not in the checker"):
            ch.absorb_batch(([0], [0]), [(7, 0)])

    def test_self_loop_raises(self):
        ch = AdmissibilityChecker()
        with pytest.raises(ValueError, match="self loop"):
            ch.absorb_batch(([0], [0]), [(0, 0)])

    def test_tombstoned_predecessor_skips_local_edge(self):
        """After an exact compaction, the next event of a process whose
        frontier was removed must attach without a local edge --
        exactly as add_event handles it."""
        loop = AdmissibilityChecker()
        bulk = AdmissibilityChecker()
        prefix = [Event(0, 0), Event(0, 1), Event(1, 0)]
        for ch in (loop, bulk):
            for event in prefix:
                ch.add_event(event)
            ch.compact_prefix([Event(0, 0), Event(0, 1)], mode="exact")
        loop.add_event(Event(0, 2))
        bulk.absorb_batch(([0], [2]), None)
        assert bulk.n_events == loop.n_events
        assert bulk.first_live_index(0) == loop.first_live_index(0) == 2
        assert bulk.updated_worst_ratio(None) == loop.updated_worst_ratio(
            None
        )


def _split_cols(cols):
    processes, indexes, messages = cols
    return (processes, indexes), messages

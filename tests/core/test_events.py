"""Unit tests for receive events."""

import pytest

from repro.core.events import Event


def test_event_ordering_is_process_then_index():
    assert Event(0, 5) < Event(1, 0)
    assert Event(1, 0) < Event(1, 1)


def test_event_equality_and_hash():
    assert Event(2, 3) == Event(2, 3)
    assert len({Event(0, 0), Event(0, 0), Event(0, 1)}) == 2


def test_local_predecessor_and_successor():
    ev = Event(1, 2)
    assert ev.local_predecessor() == Event(1, 1)
    assert ev.local_successor() == Event(1, 3)
    assert Event(1, 0).local_predecessor() is None


def test_negative_process_rejected():
    with pytest.raises(ValueError):
        Event(-1, 0)


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        Event(0, -1)

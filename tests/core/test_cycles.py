"""Tests for cycle enumeration and Definition-3 classification."""

from fractions import Fraction

import pytest

from repro.core.cycles import (
    AGAINST,
    ALONG,
    Cycle,
    Step,
    classify,
    enumerate_cycles,
    relevant_cycles,
)
from repro.core.execution_graph import GraphBuilder


class TestEnumeration:
    def test_broadcast_pair_has_one_cycle(self, broadcast_graph):
        cycles = list(enumerate_cycles(broadcast_graph))
        assert len(cycles) == 1
        assert cycles[0].length == 2  # two messages

    def test_relay_chain_has_no_cycles(self):
        # A one-way chain through distinct processes has no shadow cycle.
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (2, 0))
        assert list(enumerate_cycles(b.build())) == []

    def test_pingpong_cycles_are_all_non_relevant(self, chain_only_graph):
        infos = [classify(c) for c in enumerate_cycles(chain_only_graph)]
        assert infos  # ping-pong does close (non-relevant) shadow cycles
        assert all(not i.relevant for i in infos)

    def test_self_message_parallel_cycle(self):
        b = GraphBuilder()
        b.message((0, 0), (0, 1))
        g = b.build()
        cycles = list(enumerate_cycles(g))
        assert len(cycles) == 1
        assert len(cycles[0]) == 2  # message + local edge

    def test_each_cycle_reported_once(self, fig3_like_graph):
        cycles = list(enumerate_cycles(fig3_like_graph))
        keys = [c.canonical_key() for c in cycles]
        assert len(keys) == len(set(keys))

    def test_max_length_filters(self, fig3_like_graph):
        short = list(enumerate_cycles(fig3_like_graph, max_length=4))
        all_cycles = list(enumerate_cycles(fig3_like_graph))
        assert len(short) < len(all_cycles)
        assert all(len(c) <= 4 for c in short)

    def test_cycles_are_simple(self, fig3_like_graph):
        for cycle in enumerate_cycles(fig3_like_graph):
            assert cycle.is_simple()


class TestClassification:
    def test_broadcast_cycle_is_relevant_ratio_one(self, broadcast_graph):
        infos = [classify(c) for c in enumerate_cycles(broadcast_graph)]
        assert len(infos) == 1
        info = infos[0]
        assert info.relevant
        assert info.ratio == 1

    def test_self_message_cycle_is_non_relevant(self):
        b = GraphBuilder()
        b.message((0, 0), (0, 1))
        g = b.build()
        info = classify(next(enumerate_cycles(g)))
        assert not info.relevant

    def test_crossing_pattern_is_non_relevant(self):
        # p sends to q, q's earlier event sends to p's later event: the
        # closing local edges point with the orientation -> non-relevant.
        b = GraphBuilder()
        b.message((0, 0), (1, 1))
        b.message((1, 0), (0, 1))
        g = b.build()
        infos = [classify(c) for c in enumerate_cycles(g)]
        assert infos and all(not i.relevant for i in infos)

    def test_fig3_violating_cycle(self, fig3_like_graph):
        ratios = [i.ratio for i in relevant_cycles(fig3_like_graph)]
        assert max(ratios) == Fraction(2)

    def test_violates_threshold_semantics(self, fig3_like_graph):
        worst = max(relevant_cycles(fig3_like_graph), key=lambda i: i.ratio)
        assert worst.violates(2)          # ratio == Xi violates (strict <)
        assert not worst.violates(Fraction(5, 2))

    def test_classification_is_direction_invariant(self, fig3_like_graph):
        for cycle in enumerate_cycles(fig3_like_graph):
            a = classify(cycle)
            b = classify(cycle.reversed())
            assert a.relevant == b.relevant
            assert a.forward_messages == b.forward_messages
            assert a.backward_messages == b.backward_messages

    def test_relevant_cycle_oriented_with_locals_backward(self, fig3_like_graph):
        for info in relevant_cycles(fig3_like_graph):
            assert all(
                s.direction == AGAINST for s in info.cycle.local_steps()
            )


class TestCycleDataStructure:
    def test_cycle_requires_closure(self):
        b = GraphBuilder()
        m1 = b.message((0, 0), (1, 0))
        m2 = b.message((1, 0), (0, 1))
        b.build()
        with pytest.raises(ValueError, match="closed walk"):
            Cycle((Step(m1, ALONG), Step(m2, AGAINST)))

    def test_cycle_requires_two_steps(self):
        b = GraphBuilder()
        m1 = b.message((0, 0), (1, 0))
        b.build()
        with pytest.raises(ValueError, match="at least two"):
            Cycle((Step(m1, ALONG),))

    def test_reversed_roundtrip(self, broadcast_graph):
        cycle = next(enumerate_cycles(broadcast_graph))
        assert cycle.reversed().reversed().steps == cycle.steps

    def test_step_endpoints(self):
        b = GraphBuilder()
        m = b.message((0, 0), (1, 0))
        b.build()
        along = Step(m, ALONG)
        against = Step(m, AGAINST)
        assert along.start == m.src and along.end == m.dst
        assert against.start == m.dst and against.end == m.src

"""Tests for Theorem 7 / Theorem 12: delay assignments and Farkas."""

import random
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delay_assignment import (
    assignment_exists,
    build_farkas_system,
    canonical_solution,
    certificate_from_cycle_coefficients,
    farkas_certificate_value,
    max_margin,
    normalized_assignment,
    solve_farkas_lp,
    verify_normalized,
)
from repro.core.synchrony import check_abc, worst_relevant_ratio
from repro.scenarios.generators import random_execution_graph


class TestNormalizedAssignment:
    def test_exists_above_worst_ratio(self, fig3_like_graph):
        a = normalized_assignment(fig3_like_graph, Fraction(5, 2))
        assert a is not None
        assert verify_normalized(fig3_like_graph, a, check_cycle_sums=True)

    def test_absent_at_or_below_worst_ratio(self, fig3_like_graph):
        assert normalized_assignment(fig3_like_graph, 2) is None

    def test_delays_strictly_inside_bounds(self, fig3_like_graph):
        xi = Fraction(5, 2)
        a = normalized_assignment(fig3_like_graph, xi)
        for m in fig3_like_graph.messages:
            assert 1 < a.delay(m) < xi
        for loc in fig3_like_graph.local_edges:
            assert a.delay(loc) > 0

    def test_effective_theta_below_xi(self, fig3_like_graph):
        xi = Fraction(5, 2)
        a = normalized_assignment(fig3_like_graph, xi)
        assert a.message_delay_ratio(fig3_like_graph) < xi

    def test_assignment_is_exact_rational(self, broadcast_graph):
        a = normalized_assignment(broadcast_graph, 2)
        assert all(isinstance(t, Fraction) for t in a.times.values())

    def test_invalid_xi_rejected(self, broadcast_graph):
        with pytest.raises(ValueError):
            normalized_assignment(broadcast_graph, 1)

    def test_max_margin_positive_iff_admissible(self, fig3_like_graph):
        assert max_margin(fig3_like_graph, Fraction(5, 2)) > 0
        assert max_margin(fig3_like_graph, 2) <= 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_theorem7_equivalence_on_random_graphs(seed):
    """Theorem 7 (and its converse): a normalized assignment exists iff
    the graph is ABC-admissible."""
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(2, 8))
    for xi in (Fraction(3, 2), Fraction(2), Fraction(3)):
        admissible = check_abc(graph, xi).admissible
        assert assignment_exists(graph, xi) == admissible, f"xi={xi}"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_assignment_verifies_when_it_exists(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(2, 7))
    worst = worst_relevant_ratio(graph)
    xi = (worst + Fraction(1, 2)) if worst is not None else Fraction(2)
    a = normalized_assignment(graph, xi)
    assert a is not None
    assert verify_normalized(graph, a, check_cycle_sums=True)


class TestFarkasSystem:
    def test_shape_matches_figure6(self, fig3_like_graph):
        system = build_farkas_system(fig3_like_graph, Fraction(5, 2))
        k = system.n_messages
        assert system.matrix.shape == (
            2 * k + system.n_relevant + system.n_nonrelevant,
            k,
        )
        # Upper part: -I over I.
        assert np.allclose(system.matrix[:k], -np.eye(k))
        assert np.allclose(system.matrix[k : 2 * k], np.eye(k))
        # Right-hand side: -1s, then Xi, then zeros.
        assert np.allclose(system.rhs[:k], -1)
        assert np.allclose(system.rhs[k : 2 * k], 2.5)
        assert np.allclose(system.rhs[2 * k :], 0)

    def test_solvable_iff_admissible(self, fig3_like_graph):
        good = build_farkas_system(fig3_like_graph, Fraction(5, 2))
        x = solve_farkas_lp(good)
        assert x is not None
        assert np.all(good.matrix @ x < good.rhs)
        bad = build_farkas_system(fig3_like_graph, 2)
        assert solve_farkas_lp(bad) is None

    def test_cycle_rows_have_unit_coefficients(self, fig3_like_graph):
        system = build_farkas_system(fig3_like_graph, 2)
        rows = system.cycle_rows()
        assert rows.size > 0
        assert set(np.unique(rows)) <= {-1.0, 0.0, 1.0}

    def test_certificates_positive_when_admissible(self, fig3_like_graph):
        """Theorem 12's core: every y >= 0 with yTA = 0 built from cycle
        coefficients has yTb > 0 when Xi exceeds the worst ratio."""
        system = build_farkas_system(fig3_like_graph, Fraction(5, 2))
        rng = random.Random(7)
        n_cycles = system.n_relevant + system.n_nonrelevant
        for _ in range(25):
            coeffs = [rng.randint(0, 3) for _ in range(n_cycles)]
            if not any(coeffs):
                continue
            y = certificate_from_cycle_coefficients(system, coeffs)
            assert np.allclose(y @ system.matrix, 0, atol=1e-9)
            assert y.min() >= 0
            value = farkas_certificate_value(system, y)
            combined = np.array(coeffs) @ system.cycle_rows()
            if np.any(combined != 0):
                assert value > 0

    def test_certificate_can_be_nonpositive_when_inadmissible(
        self, fig3_like_graph
    ):
        system = build_farkas_system(fig3_like_graph, Fraction(3, 2))
        n_cycles = system.n_relevant + system.n_nonrelevant
        values = []
        for i in range(n_cycles):
            coeffs = [0] * n_cycles
            coeffs[i] = 1
            y = certificate_from_cycle_coefficients(system, coeffs)
            values.append(farkas_certificate_value(system, y))
        assert min(values) <= 0  # Farkas blocks the infeasible system

    def test_canonical_solution_complementary(self, fig3_like_graph):
        system = build_farkas_system(fig3_like_graph, 2)
        k = system.n_messages
        n_cycles = system.n_relevant + system.n_nonrelevant
        y = np.concatenate([np.full(2 * k, 0.5), np.zeros(n_cycles)])
        ybar = canonical_solution(system, y)
        for j in range(k):
            assert ybar[j] == 0 or ybar[k + j] == 0

    def test_coefficient_validation(self, fig3_like_graph):
        system = build_farkas_system(fig3_like_graph, 2)
        with pytest.raises(ValueError):
            certificate_from_cycle_coefficients(system, [1])
        n_cycles = system.n_relevant + system.n_nonrelevant
        with pytest.raises(ValueError):
            certificate_from_cycle_coefficients(system, [-1] * n_cycles)

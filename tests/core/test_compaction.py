"""Summary compaction: the two-mode engine's ratio-equivalence contract.

``compact_prefix(cut)`` in summary mode replaces the region below a cut
-- messages crossing it and all -- by boundary-to-boundary summary
edges whose ``(forward, backward, local)`` profiles re-weight exactly
per ``(p, q)`` query.  The contract under test:

* **static identity** -- for any left-closed cut and every ratio,
  ``full(r) == compacted(r) or interior_worst >= r`` where
  ``interior_worst`` is the worst ratio of the removed region alone;
  equivalently ``worst(full) == max(worst(compacted), interior_worst)``;
* **extension identity** -- a monitor that summary-compacts at
  arbitrary points (pinning future senders) reports, at every
  subsequent record, the exact same running worst ratio as an
  uncompacted monitor -- bit-identical, including with a floored
  compaction;
* **interoperation** -- checkpoint/rollback round trips across a
  compacted digraph stay bit-identical, compaction is rejected inside
  ``speculate()``, stale checkpoints are epoch-rejected, and exact-mode
  removal after a summary compaction respects summary-edge crossings;
* **witnesses** -- violation witnesses extracted from a compacted
  digraph expand into genuine steps of the original execution graph.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.analysis.online import OnlineAbcMonitor
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, GraphBuilder
from repro.core.synchrony import (
    AdmissibilityChecker,
    SummaryEdge,
    farey_predecessor,
    worst_relevant_ratio,
)
from repro.scenarios.generators import (
    random_execution_graph,
    relay_chain_workload,
    streaming_records,
)

RATIOS = [
    Fraction(1),
    Fraction(5, 4),
    Fraction(4, 3),
    Fraction(3, 2),
    Fraction(2),
    Fraction(5, 2),
    Fraction(3),
    Fraction(5),
]


def random_cut(rng: random.Random, graph: ExecutionGraph) -> list[Event]:
    """A random left-closed per-process prefix of ``graph``."""
    cut: list[Event] = []
    for process in graph.processes:
        events = graph.events_of(process)
        cut.extend(events[: rng.randint(0, len(events))])
    return cut


def interior_worst(
    graph: ExecutionGraph, checker: AdmissibilityChecker
) -> Fraction | None:
    """Worst ratio of the subgraph the compaction actually removed."""
    by_process = {
        p: [Event(p, i) for i in range(checker.first_live_index(p))]
        for p in graph.processes
    }
    removed = {ev for events in by_process.values() for ev in events}
    messages = [
        m for m in graph.messages if m.src in removed and m.dst in removed
    ]
    if not removed:
        return None
    return worst_relevant_ratio(ExecutionGraph(by_process, messages))


class TestStaticIdentity:
    def test_random_cuts_random_ratios(self):
        rng = random.Random(11)
        for _ in range(150):
            graph = random_execution_graph(
                rng,
                n_processes=rng.randint(2, 4),
                n_messages=rng.randint(4, 14),
            )
            full = AdmissibilityChecker(graph)
            compacted = AdmissibilityChecker(graph)
            compacted.compact_prefix(random_cut(rng, graph))
            inner = interior_worst(graph, compacted)
            worsts = [
                w
                for w in (compacted.worst_relevant_ratio(), inner)
                if w is not None
            ]
            assert (
                max(worsts, default=None) == full.worst_relevant_ratio()
            )
            for ratio in RATIOS:
                expect = full.has_ratio_at_least(ratio)
                got = compacted.has_ratio_at_least(ratio) or (
                    inner is not None and inner >= ratio
                )
                assert got == expect, (graph, ratio)

    def test_repeated_compaction_absorbs_summaries(self):
        """A second compaction swallowing the first one's boundary must
        fold the old summary edges into the new ones losslessly."""
        rng = random.Random(5)
        for _ in range(60):
            graph = random_execution_graph(
                rng, n_processes=3, n_messages=rng.randint(6, 16)
            )
            full = AdmissibilityChecker(graph)
            compacted = AdmissibilityChecker(graph)
            first = random_cut(rng, graph)
            second = random_cut(rng, graph)
            compacted.compact_prefix(first)
            compacted.compact_prefix(first + second)
            inner = interior_worst(graph, compacted)
            for ratio in RATIOS:
                expect = full.has_ratio_at_least(ratio)
                got = compacted.has_ratio_at_least(ratio) or (
                    inner is not None and inner >= ratio
                )
                assert got == expect

    def test_summary_edges_reweight_per_query(self, fig3_like_graph):
        """One compacted digraph must answer differently-weighted
        queries from the same summary profiles (no per-ratio state)."""
        checker = AdmissibilityChecker(fig3_like_graph)
        cut = [Event(0, 0), Event(1, 0), Event(1, 1)]
        checker.compact_prefix(cut)
        assert checker.n_summary_edges > 0
        assert checker.has_ratio_at_least(2)  # the ratio-2 cycle survives
        assert not checker.has_ratio_at_least(Fraction(5, 2))
        assert checker.worst_relevant_ratio() == 2

    def test_frontier_events_stay_live(self):
        """Summary mode implicitly pins each process's last live event."""
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (0, 1))
        graph = b.build()
        checker = AdmissibilityChecker(graph)
        removed = checker.compact_prefix(list(graph.events()))
        assert removed == 1  # only p0's first event; frontiers pinned
        assert checker.n_events == 2


class TestExtensionIdentity:
    def run_stream(self, seed: int, floored: bool) -> None:
        rng = random.Random(seed)
        for _ in range(25):
            records = list(
                streaming_records(
                    rng,
                    n_processes=rng.randint(2, 4),
                    n_records=rng.randint(20, 50),
                )
            )
            plain = OnlineAbcMonitor()
            compacting = OnlineAbcMonitor()
            # The inclusive default keeps exactness at every ratio >= 1,
            # paying for it with loop-staircase labels on cycle-rich
            # regions; it is the one-shot conservative mode, so give it
            # one compaction point.  The floored path (what every
            # monitoring layer uses) is cheap enough to repeat.
            splits = set(
                rng.sample(range(5, len(records)), k=3 if floored else 1)
            )
            for i, record in enumerate(records):
                plain.observe(record)
                compacting.observe(record)
                assert compacting.worst_ratio == plain.worst_ratio, (
                    seed,
                    i,
                )
                if i in splits:
                    # Future senders are in-flight from the monitor's
                    # point of view: pin them, as the fleet does from
                    # ``record.sends`` metadata.
                    pinned = [
                        r.send_event
                        for r in records[i + 1 :]
                        if r.send_event is not None
                    ]
                    cut = compacting.compactable_prefix(pinned)
                    if floored:
                        compacting.forget_prefix(cut, summarize=True)
                    else:
                        # Checker-level inclusive default (floor=None).
                        compacting._checker.compact_prefix(cut)
            assert compacting.forgotten_message_edges == 0

    def test_monitor_bit_identity_with_floored_compaction(self):
        self.run_stream(23, floored=True)

    def test_monitor_bit_identity_with_inclusive_default(self):
        self.run_stream(29, floored=False)

    def test_relay_chain_bit_identity(self):
        """The adversarial chain shape: nothing is exactly settleable,
        yet periodic summary compaction stays bit-identical."""
        records = relay_chain_workload(random.Random(17), 240)
        plain = OnlineAbcMonitor()
        compacting = OnlineAbcMonitor()
        in_flight: dict[Event, int] = {}  # send event -> undelivered count
        for i, record in enumerate(records):
            plain.observe(record)
            compacting.observe(record)
            src = record.send_event
            if src is not None and in_flight.get(src, 0) > 0:
                in_flight[src] -= 1
                if not in_flight[src]:
                    del in_flight[src]
            if record.sends:
                in_flight[record.event] = (
                    in_flight.get(record.event, 0) + len(record.sends)
                )
            assert compacting.worst_ratio == plain.worst_ratio, i
            if in_flight:
                # While anything is in flight the chain pins cascade:
                # no prefix is exactly removable.  (At fully quiescent
                # instants with no pins at all, exact removal could
                # take everything -- not the shape under test.)
                assert len(compacting.settled_prefix(in_flight)) == 0
            if i % 40 == 39:
                cut = compacting.compactable_prefix(in_flight)
                assert cut  # summary mode reclaims what exact cannot
                compacting.forget_prefix(cut, summarize=True)
                assert compacting.n_events <= 16
        assert compacting.forgotten_message_edges == 0
        assert plain.worst_ratio is not None and plain.worst_ratio > 1
        assert plain.n_events == len(records)  # the contrast


class TestInteroperation:
    def build_compacted(self, seed: int = 3):
        rng = random.Random(seed)
        graph = random_execution_graph(rng, n_processes=3, n_messages=12)
        checker = AdmissibilityChecker(graph)
        checker.compact_prefix(random_cut(rng, graph))
        return rng, graph, checker

    def test_checkpoint_rollback_across_summaries(self):
        rng, graph, checker = self.build_compacted()
        answers = {r: checker.has_ratio_at_least(r) for r in RATIOS}
        worst = checker.worst_relevant_ratio()
        token = checker.checkpoint()
        with checker.speculate():
            # Grow past the checkpoint: new events and messages on top
            # of the summarized digraph.
            frontier = {
                p: checker.n_events_of(p) for p in checker.processes
            }
            fresh = []
            for p, index in frontier.items():
                event = Event(p, index)
                checker.add_event(event)
                fresh.append(event)
            checker.add_message(fresh[0], fresh[1])
            checker.add_message(fresh[2], fresh[1])
            checker.has_ratio_at_least(2)
        checker.rollback(token)  # nested rollback must also be clean
        assert {r: checker.has_ratio_at_least(r) for r in RATIOS} == answers
        assert checker.worst_relevant_ratio() == worst

    def test_compaction_rejected_inside_speculation(self):
        _rng, _graph, checker = self.build_compacted()
        with checker.speculate():
            with pytest.raises(RuntimeError):
                checker.compact_prefix([], mode="summary")

    def test_stale_checkpoints_are_epoch_rejected(self):
        rng, graph, checker = self.build_compacted(seed=9)
        token = checker.checkpoint()
        if not checker.compact_prefix(checker.summarizable_prefix()):
            pytest.skip("nothing left to compact for this seed")
        with pytest.raises(ValueError):
            checker.rollback(token)

    def test_exact_removal_respects_summary_crossings(self):
        """removable_prefix must treat summary edges like messages: a
        boundary a summary edge spans is not exactly removable."""
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (0, 1))
        b.event(1, 1)  # a trailing wake-up with no messages at all
        graph = b.build()
        checker = AdmissibilityChecker(graph)
        checker.compact_prefix([Event(0, 0), Event(1, 0)])
        assert checker.n_summary_edges > 0
        assert checker.n_messages == 0  # both messages folded away
        # A cross-process summary (p1:1 -> p0:1, via the region) is the
        # only edge left between the processes; with p0:1 pinned, the
        # message-free p1 timeline would be removable were the summary
        # not honored as a crossing constraint.
        assert checker.removable_prefix(pinned=[Event(0, 1)]) == ()

    def test_summarizable_prefix_respects_pins(self):
        _rng, _graph, checker = self.build_compacted(seed=13)
        pinned = [
            Event(p, checker.first_live_index(p))
            for p in checker.processes
            if checker.first_live_index(p) < checker.n_events_of(p)
        ]
        assert checker.summarizable_prefix(pinned) == ()


class TestWitnesses:
    def test_witness_expands_to_genuine_steps(self, fig3_like_graph):
        checker = AdmissibilityChecker(fig3_like_graph)
        checker.compact_prefix([Event(0, 0), Event(1, 0), Event(1, 1)])
        witness = checker.violating_cycle(2)
        assert witness is not None
        assert witness.relevant
        assert witness.ratio is not None and witness.ratio >= 2
        edges = set(fig3_like_graph.edges())
        for step in witness.cycle.steps:
            assert step.edge in edges

    def test_monitor_witness_survives_compaction_cycles(self):
        """The monitor extracts its witness the moment the ratio first
        reaches Xi -- before any later compaction can absorb it."""
        records = relay_chain_workload(random.Random(2), 200)
        monitor = OnlineAbcMonitor(xi=3)
        for i, record in enumerate(records):
            monitor.observe(record)
            if i % 25 == 24 and monitor.violation is None:
                monitor.forget_prefix(
                    monitor.compactable_prefix(), summarize=True
                )
        assert monitor.violation is not None
        assert monitor.violation.ratio >= 3
        assert not monitor.is_admissible()
        assert monitor.would_violate()  # answered from the running max


class TestSummaryInternals:
    def test_profiles_are_genuine_walks(self):
        """Every stored summary profile must be realized by its stored
        walk: hop counts and endpoints must match exactly (the
        no-false-positive argument rests on this)."""
        rng = random.Random(31)
        for _ in range(40):
            graph = random_execution_graph(
                rng, n_processes=3, n_messages=rng.randint(5, 14)
            )
            checker = AdmissibilityChecker(graph)
            checker.compact_prefix(random_cut(rng, graph))
            for summary in checker._live_summaries():
                assert isinstance(summary, SummaryEdge)
                forward = backward = local = 0
                cursor = summary.tail
                for step in summary.steps:
                    assert step.start == cursor
                    cursor = step.end
                    if step.edge.is_message:
                        if step.direction > 0:
                            forward += 1
                        else:
                            backward += 1
                    else:
                        local += 1
                assert cursor == summary.head
                assert (forward, backward, local) == summary.profile

    def test_floor_prunes_loop_staircases(self):
        """With the floor at the running worst, compacting a region
        full of relevant cycles stays region-bounded (the unfloored
        frontier would keep loop-improved labels)."""
        records = relay_chain_workload(random.Random(41), 160)
        monitor = OnlineAbcMonitor()
        for record in records:
            monitor.observe(record)
        worst = monitor.worst_ratio
        assert worst is not None and worst > 1
        monitor.forget_prefix(monitor.compactable_prefix(), summarize=True)
        assert monitor.summary_edges <= 40
        assert monitor._checker.ratio_bound < 4 * len(records)

    def test_farey_predecessor_brackets_xi(self):
        for num, den, bound in [(3, 2, 7), (2, 1, 1), (7, 3, 40), (9, 8, 4)]:
            xi = Fraction(num, den)
            below = farey_predecessor(xi, bound)
            assert below < xi
            assert below.denominator <= bound


class TestReviewRegressions:
    def test_profile_table_stays_bounded_by_live_summaries(self):
        """The per-query weight table carries one entry per summary
        profile; _compact must drop profiles no live edge references,
        or long-running compacting monitors degrade to O(history) per
        oracle call (review finding on this PR)."""
        records = relay_chain_workload(random.Random(0), 800)
        monitor = OnlineAbcMonitor()
        in_flight: dict[Event, int] = {}
        for i, record in enumerate(records):
            monitor.observe(record)
            src = record.send_event
            if src is not None and in_flight.get(src, 0) > 0:
                in_flight[src] -= 1
                if not in_flight[src]:
                    del in_flight[src]
            if record.sends:
                in_flight[record.event] = in_flight.get(
                    record.event, 0
                ) + len(record.sends)
            if (i + 1) % 15 == 0:
                monitor.forget_prefix(
                    monitor.compactable_prefix(in_flight), summarize=True
                )
        checker = monitor._checker
        live = {s.profile for s in checker._live_summaries()}
        assert set(checker._summary_profiles) == live
        assert len(checker._summary_profiles) <= 2 * checker.n_summary_edges

    def test_observe_skips_and_counts_forgotten_sends(self):
        """observe() must tolerate a record whose triggering send lies
        in a summarized prefix exactly like observe_batch does: skip
        the edge, count it, degrade -- never raise (review finding on
        this PR)."""
        from repro.sim.trace import ReceiveRecord

        def wake(process, index, time):
            return ReceiveRecord(
                event=Event(process, index), time=time, sender=None,
                send_event=None, send_time=None, payload=None,
                processed=True, sends=(),
            )

        monitor = OnlineAbcMonitor()
        monitor.observe(wake(0, 0, 0.0))
        monitor.observe(wake(0, 1, 1.0))
        monitor.observe(wake(1, 0, 2.0))
        # No pins: p0:0 is compacted away (the documented degradation).
        assert monitor.forget_prefix(
            monitor.compactable_prefix(), summarize=True
        ) == 1
        late = ReceiveRecord(
            event=Event(1, 1), time=3.0, sender=0,
            send_event=Event(0, 0), send_time=0.5, payload=None,
            processed=True, sends=(),
        )
        assert monitor.observe(late) is None  # no raise
        assert monitor.forgotten_message_edges == 1
        assert monitor.n_events == 3  # p0:1, p1:0, p1:1 (p0:0 compacted)


class TestPickleSafety:
    """Summary state must survive serialization (the parallel runtime
    forks/ships monitors and their compacted digraphs)."""

    def test_deeply_nested_summary_edge_pickles_flat(self):
        """One nesting level per compaction round: default dataclass
        pickling would recurse past the interpreter limit on a
        long-compacted monitor.  __reduce__ flattens iteratively."""
        import pickle
        import sys

        from repro.core.cycles import AGAINST, Step
        from repro.core.execution_graph import LocalEdge

        step = Step(LocalEdge(Event(0, 0), Event(0, 1)), AGAINST)
        edge = SummaryEdge(
            tail=Event(0, 1), head=Event(0, 0),
            forward=0, backward=0, local=1, parts=(step,),
        )
        depth = sys.getrecursionlimit() * 2
        for _ in range(depth):
            edge = SummaryEdge(
                tail=edge.tail, head=edge.head,
                forward=edge.forward, backward=edge.backward,
                local=edge.local, parts=(edge,),
            )
        wire = pickle.dumps(edge)
        copy = pickle.loads(wire)
        assert copy.profile == edge.profile
        assert copy.tail == edge.tail and copy.head == edge.head
        assert copy.steps == (step,)
        # The copy is flat: its parts ARE its steps.
        assert copy.parts == copy.steps

    def test_repeatedly_compacted_monitor_round_trips(self):
        """A monitor carrying hundreds of compaction rounds (nested
        summaries, profile tables, tombstone state) pickles and keeps
        answering bit-identically, including under further extension."""
        import pickle

        from repro.scenarios.generators import relay_chain_workload

        records = relay_chain_workload(random.Random(5), 400)
        monitor = OnlineAbcMonitor(compact_threshold=1.5)
        for record in records[:300]:
            monitor.observe(record)
        assert monitor.auto_compactions > 50  # genuinely deep nesting
        copy = pickle.loads(pickle.dumps(monitor))
        assert copy.worst_ratio == monitor.worst_ratio
        assert copy.n_events == monitor.n_events
        for record in records[300:]:
            assert copy.observe(record) == monitor.observe(record)

    def test_checkpoint_pickles(self):
        import pickle

        checker = AdmissibilityChecker()
        checker.add_event(Event(0, 0))
        token = checker.checkpoint()
        assert pickle.loads(pickle.dumps(token)) == token

"""Unit tests for execution graphs (Definition 1)."""

import pytest

from repro.core.events import Event
from repro.core.execution_graph import (
    ExecutionGraph,
    GraphBuilder,
    LocalEdge,
    MessageEdge,
)


def build_pingpong() -> ExecutionGraph:
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((1, 0), (0, 1))
    return b.build()


class TestConstruction:
    def test_counts(self):
        g = build_pingpong()
        assert g.n_events == 3
        assert len(g.messages) == 2
        assert len(g.local_edges) == 1  # only p0 has two events

    def test_local_edges_connect_consecutive_events(self):
        g = build_pingpong()
        assert g.local_edges == (LocalEdge(Event(0, 0), Event(0, 1)),)

    def test_events_of(self):
        g = build_pingpong()
        assert g.events_of(0) == (Event(0, 0), Event(0, 1))
        assert g.events_of(1) == (Event(1, 0),)
        assert g.events_of(99) == ()

    def test_contains(self):
        g = build_pingpong()
        assert Event(0, 1) in g
        assert Event(0, 2) not in g

    def test_trigger_of(self):
        g = build_pingpong()
        assert g.trigger_of(Event(1, 0)) == MessageEdge(Event(0, 0), Event(1, 0))
        assert g.trigger_of(Event(0, 0)) is None  # wake-up


class TestValidation:
    def test_two_incoming_messages_rejected(self):
        b = GraphBuilder()
        b.message((0, 0), (2, 0))
        b.message((1, 0), (2, 0))
        with pytest.raises(ValueError, match="more than one incoming"):
            b.build()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            ExecutionGraph(
                {0: [Event(0, 0)]}, [MessageEdge(Event(0, 0), Event(0, 0))]
            )

    def test_directed_cycle_rejected(self):
        # 0:0 -> 1:0 (msg), 1:0 -> 1:1 (local), 1:1 -> 0:0 would need the
        # message to point backwards into an earlier event: build events
        # so a message creates a directed cycle through local edges.
        events = {0: [Event(0, 0), Event(0, 1)], 1: [Event(1, 0)]}
        messages = [
            MessageEdge(Event(0, 1), Event(1, 0)),
            MessageEdge(Event(1, 0), Event(0, 0)),
        ]
        with pytest.raises(ValueError, match="directed cycle"):
            ExecutionGraph(events, messages)

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            ExecutionGraph(
                {0: [Event(0, 0)]}, [MessageEdge(Event(0, 0), Event(5, 0))]
            )

    def test_non_contiguous_events_rejected(self):
        with pytest.raises(ValueError, match="must be"):
            ExecutionGraph({0: [Event(0, 1)]}, [])


class TestCausality:
    def test_causal_past_includes_trigger_chain(self):
        g = build_pingpong()
        past = g.causal_past([Event(0, 1)])
        assert past == {Event(0, 0), Event(1, 0), Event(0, 1)}

    def test_causal_past_is_reflexive(self):
        g = build_pingpong()
        assert Event(0, 0) in g.causal_past([Event(0, 0)])

    def test_causal_future(self):
        g = build_pingpong()
        future = g.causal_future([Event(1, 0)])
        assert future == {Event(1, 0), Event(0, 1)}

    def test_happens_before(self):
        g = build_pingpong()
        assert g.happens_before(Event(0, 0), Event(0, 1))
        assert not g.happens_before(Event(0, 1), Event(1, 0))

    def test_unknown_event_raises(self):
        g = build_pingpong()
        with pytest.raises(KeyError):
            g.causal_past([Event(7, 7)])

    def test_topological_order_respects_edges(self):
        g = build_pingpong()
        order = g.topological_order()
        pos = {ev: i for i, ev in enumerate(order)}
        for edge in g.edges():
            assert pos[edge.src] < pos[edge.dst]


class TestPrefixAndRestriction:
    def test_prefix_is_left_closed_subgraph(self):
        g = build_pingpong()
        prefix = g.prefix([Event(1, 0)])
        assert prefix.n_events == 2
        assert len(prefix.messages) == 1

    def test_restricted_to_messages_keeps_events(self):
        g = build_pingpong()
        restricted = g.restricted_to_messages([g.messages[0]])
        assert restricted.n_events == g.n_events
        assert len(restricted.messages) == 1

    def test_restricted_rejects_foreign_edges(self):
        g = build_pingpong()
        foreign = MessageEdge(Event(0, 0), Event(0, 1))
        with pytest.raises(KeyError):
            g.restricted_to_messages([foreign])


class TestBuilder:
    def test_event_declaration_is_idempotent(self):
        b = GraphBuilder()
        b.event(0, 3)
        b.event(0, 1)
        g = b.build()
        assert g.events_of(0) == tuple(Event(0, i) for i in range(4))

    def test_chain_helper(self):
        b = GraphBuilder()
        edges = b.chain([(0, 0), (1, 0), (2, 0)])
        assert len(edges) == 2
        g = b.build()
        assert len(g.messages) == 2

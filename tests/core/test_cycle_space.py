"""Tests for the Section-4.1 cycle space: vectors, (+), decomposition."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycle_space import (
    CycleVector,
    combine,
    consistency,
    farkas_sum_property,
    mixed_free_decomposition,
    relevant_sum_property,
    vector_of,
    walk_vector,
)
from repro.core.cycles import classify, enumerate_cycles, relevant_cycles
from repro.core.synchrony import worst_relevant_ratio
from repro.scenarios.figures import fig2_graph
from repro.scenarios.generators import random_execution_graph


class TestCycleVector:
    def test_vector_of_relevant_cycle_signs(self, fig3_like_graph):
        worst = max(
            relevant_cycles(fig3_like_graph), key=lambda i: i.ratio
        )
        vec = vector_of(worst)
        assert vec.s_minus == worst.backward_messages
        assert -vec.s_plus == worst.forward_messages

    def test_addition_and_scaling(self, broadcast_graph):
        info = next(iter(relevant_cycles(broadcast_graph)))
        vec = vector_of(info)
        doubled = vec + vec
        assert doubled == 2 * vec
        assert (vec + (-vec)) == CycleVector({})

    def test_zero_coefficients_dropped(self):
        from repro.core.execution_graph import GraphBuilder

        b = GraphBuilder()
        m = b.message((0, 0), (1, 0))
        b.build()
        assert CycleVector({m: 0}) == CycleVector({})

    def test_mixed_free_check(self, fig3_like_graph):
        infos = list(relevant_cycles(fig3_like_graph))
        v = vector_of(infos[0])
        assert v.is_mixed_free_with(v)
        assert not v.is_mixed_free_with(-v)


class TestConsistency:
    def test_fig2_cycles_o_consistent(self):
        graph, e = fig2_graph()
        infos = [i for i in relevant_cycles(graph) if vector_of(i)[e] != 0]
        with_plus = [i for i in infos if vector_of(i)[e] == 1]
        with_minus = [i for i in infos if vector_of(i)[e] == -1]
        assert with_plus and with_minus
        x, y = with_minus[0], with_plus[0]
        assert consistency(x, y) == "o"

    def test_disjoint_cycles(self, broadcast_graph, fig3_like_graph):
        a = next(iter(relevant_cycles(broadcast_graph)))
        b = next(iter(relevant_cycles(fig3_like_graph)))
        # Different graphs -> no shared message edges.
        assert consistency(a, b) == "disjoint"

    def test_i_consistency_with_self(self, fig3_like_graph):
        info = next(iter(relevant_cycles(fig3_like_graph)))
        assert consistency(info, info) == "i"


class TestDecomposition:
    def test_fig2_combination_cancels_shared_edge(self):
        graph, e = fig2_graph()
        infos = [i for i in relevant_cycles(graph) if vector_of(i)[e] != 0]
        x = next(i for i in infos if vector_of(i)[e] == -1)
        y = next(i for i in infos if vector_of(i)[e] == 1)
        combined = combine([x, y])
        assert combined[e] == 0
        pieces = mixed_free_decomposition([x, y])
        assert sum((walk_vector(p) for p in pieces), CycleVector({})) == combined
        for piece in pieces:
            assert all(s.edge != e for s in piece.steps)

    def test_decomposition_of_single_cycle_is_identity_vector(
        self, fig3_like_graph
    ):
        info = next(iter(relevant_cycles(fig3_like_graph)))
        pieces = mixed_free_decomposition([info])
        total = sum((walk_vector(p) for p in pieces), CycleVector({}))
        assert total == vector_of(info)

    def test_decomposition_outputs_are_pairwise_mixed_free(self):
        graph, _e = fig2_graph()
        infos = list(relevant_cycles(graph))
        pieces = mixed_free_decomposition(infos)
        vectors = [walk_vector(p) for p in pieces]
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                assert vectors[i].is_mixed_free_with(vectors[j])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_decomposition_preserves_vector_sum_on_random_graphs(seed):
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(3, 9))
    infos = list(relevant_cycles(graph))[:6]
    if not infos:
        return
    pieces = mixed_free_decomposition(infos)
    total = sum((walk_vector(p) for p in pieces), CycleVector({}))
    assert total == combine(infos)
    vectors = [walk_vector(p) for p in pieces]
    for i in range(len(vectors)):
        for j in range(i + 1, len(vectors)):
            assert vectors[i].is_mixed_free_with(vectors[j])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), coeff_seed=st.integers(0, 999))
def test_corollary1_on_admissible_graphs(seed, coeff_seed):
    """Lemma 11 / Corollary 1: non-negative integer combinations of
    relevant cycles of an ABC-admissible graph satisfy condition (9)."""
    rng = random.Random(seed)
    graph = random_execution_graph(rng, 3, rng.randint(3, 9))
    worst = worst_relevant_ratio(graph)
    if worst is None:
        return
    xi = worst + Fraction(1, 3)  # graph admissible for this Xi
    infos = list(relevant_cycles(graph))[:5]
    crng = random.Random(coeff_seed)
    coeffs = [crng.randint(0, 3) for _ in infos]
    if not any(coeffs):
        coeffs[0] = 1
    combined = combine(infos, coeffs)
    if combined == CycleVector({}):
        return  # empty combination: nothing to assert
    assert relevant_sum_property(combined, xi)


def test_farkas_sum_property_reversal(fig3_like_graph):
    info = max(relevant_cycles(fig3_like_graph), key=lambda i: i.ratio)
    vec = vector_of(info)
    assert farkas_sum_property(vec, Fraction(5, 2))   # ratio 2 < 5/2
    assert not farkas_sum_property(vec, Fraction(3, 2))

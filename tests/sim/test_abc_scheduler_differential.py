"""Differential test: incremental enforcer vs. frozen seed enforcer.

The speculative rework of :class:`~repro.sim.abc_scheduler.AbcEnforcingSimulator`
(one shared checker, checkpoint/rollback speculation, source-seeded
detection, settled-prefix tombstoning) must make *exactly* the decisions
of the seed implementation, which rebuilt the execution graph and a
fresh checker for every (tentative delivery, pending message) pair.  The
frozen copy of the seed enforcer lives in
``benchmarks/seed_abc_enforcer.py`` (shared with the enforcer benchmark
so the two baselines cannot diverge); both enforcers are run over many
seeded random enforcer-stressing workloads: delivery orders, full
traces, and ``pulled_forward`` counts must be identical.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

from repro.scenarios.generators import random_enforcer_setup
from repro.sim.abc_scheduler import AbcEnforcingSimulator
from repro.sim.engine import SimulationLimits

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from seed_abc_enforcer import SeedAbcEnforcingSimulator  # noqa: E402


# ----------------------------------------------------------------------
# The differential sweep
# ----------------------------------------------------------------------

N_WORKLOADS = 50
MAX_EVENTS = 50


def _run_pair(seed: int, tombstone_every):
    rng = random.Random(seed)
    processes, network, xi = random_enforcer_setup(rng)
    baseline = SeedAbcEnforcingSimulator(processes, network, seed=seed, xi=xi)
    baseline_trace = baseline.run(SimulationLimits(max_events=MAX_EVENTS))

    processes, network, _ = random_enforcer_setup(random.Random(seed))
    incremental = AbcEnforcingSimulator(
        processes, network, seed=seed, xi=xi, tombstone_every=tombstone_every
    )
    incremental_trace = incremental.run(SimulationLimits(max_events=MAX_EVENTS))
    return baseline, baseline_trace, incremental, incremental_trace


@pytest.mark.parametrize("seed", range(N_WORKLOADS))
def test_identical_to_seed_enforcer(seed):
    """Delivery order, full trace, and pulled_forward identical on
    randomized storms/bursts/silences (aggressive tombstoning on)."""
    baseline, baseline_trace, incremental, incremental_trace = _run_pair(
        seed, tombstone_every=8
    )
    assert [r.event for r in baseline_trace.records] == [
        r.event for r in incremental_trace.records
    ]
    assert baseline_trace.records == incremental_trace.records
    assert repr(baseline_trace.records) == repr(incremental_trace.records)
    assert baseline.pulled_forward == incremental.pulled_forward


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_tombstoning_disabled_matches_too(seed):
    """The digraph-bounding machinery is behavior-neutral either way."""
    baseline, baseline_trace, incremental, incremental_trace = _run_pair(
        seed, tombstone_every=None
    )
    assert baseline_trace.records == incremental_trace.records
    assert baseline.pulled_forward == incremental.pulled_forward
    assert incremental.tombstoned_events == 0

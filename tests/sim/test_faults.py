"""Tests for the fault-injection behaviours."""

import random
from typing import Any

from repro.sim.delays import FixedDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import (
    BabblingProcess,
    CrashAfter,
    MirrorProcess,
    SilentProcess,
    TwoFacedProcess,
)
from repro.sim.network import Network, Topology
from repro.sim.process import Process, StepContext


class Talker(Process):
    def __init__(self) -> None:
        self.received: list[Any] = []

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.broadcast("hi", include_self=False)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self.received.append((sender, payload))


def run(procs, faulty=frozenset(), max_events=200):
    net = Network(Topology.fully_connected(len(procs)), FixedDelay(1.0))
    sim = Simulator(procs, net, faulty=faulty, seed=1)
    return sim.run(SimulationLimits(max_events=max_events))


class TestCrashAfter:
    def test_crash_on_start_takes_no_step(self):
        crashed = CrashAfter(Talker(), steps=0)
        trace = run([Talker(), crashed], faulty={1})
        assert all(not r.sends for r in trace.records if r.event.process == 1)

    def test_crash_after_one_step_completes_wakeup(self):
        crashed = CrashAfter(Talker(), steps=1)
        trace = run([Talker(), crashed], faulty={1})
        steps_with_sends = [
            r for r in trace.records if r.event.process == 1 and r.sends
        ]
        assert len(steps_with_sends) == 1  # exactly the wake-up broadcast

    def test_crashed_flag(self):
        c = CrashAfter(Talker(), steps=1)
        assert not c.crashed
        c.on_wakeup(StepContext(0, 2, (1,)))
        assert c.crashed

    def test_negative_steps_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CrashAfter(Talker(), steps=-1)


class TestByzantineBehaviours:
    def test_silent_never_sends(self):
        trace = run([Talker(), SilentProcess()], faulty={1})
        assert all(not r.sends for r in trace.records if r.event.process == 1)

    def test_babbler_sends_garbage(self):
        babbler = BabblingProcess(lambda rng: rng.random(), fanout=2, seed=3)
        talker = Talker()
        run([talker, babbler], faulty={1})
        assert any(isinstance(p, float) for (_s, p) in talker.received)

    def test_mirror_echoes(self):
        talker = Talker()
        trace = run([talker, MirrorProcess()], faulty={1})
        assert any(s == 1 and p == "hi" for (s, p) in talker.received)

    def test_two_faced_sends_both_stories(self):
        listeners = [Talker(), Talker()]
        two_faced = TwoFacedProcess("a", "b")
        run(listeners + [two_faced], faulty={2}, max_events=50)
        got_0 = {p for (s, p) in listeners[0].received if s == 2}
        got_1 = {p for (s, p) in listeners[1].received if s == 2}
        assert got_0 == {"a"} and got_1 == {"b"}

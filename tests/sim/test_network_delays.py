"""Tests for topologies, networks and delay models."""

import random

import pytest

from repro.sim.delays import (
    ClusterDelay,
    FixedDelay,
    GrowingDelay,
    LognormalDelay,
    PerLinkDelay,
    ScaledDelay,
    ThetaBandDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.sim.network import Network, Topology

RNG = random.Random(0)


class TestTopology:
    def test_fully_connected(self):
        t = Topology.fully_connected(3)
        assert len(t.links) == 6
        assert t.has_link(0, 1) and t.has_link(2, 0)
        assert t.has_link(1, 1)  # self-links implicit

    def test_ring(self):
        t = Topology.ring(4, bidirectional=False)
        assert t.has_link(0, 1) and not t.has_link(1, 0)
        assert len(t.links) == 4

    def test_star(self):
        t = Topology.star(4, center=1)
        assert t.has_link(1, 3) and t.has_link(3, 1)
        assert not t.has_link(0, 2)
        assert t.neighbors(1) == (0, 2, 3)

    def test_out_of_range_link(self):
        with pytest.raises(ValueError):
            Topology.from_links(2, [(0, 5)])


class TestNetwork:
    def test_missing_link_rejected(self):
        net = Network(Topology.ring(4, bidirectional=False), FixedDelay(1.0))
        with pytest.raises(ValueError, match="no link"):
            net.delay(1, 0, 0.0, RNG)

    def test_self_link_allowed(self):
        net = Network(Topology.fully_connected(2), FixedDelay(1.0))
        assert net.delay(0, 0, 0.0, RNG) == 1.0


class TestDelayModels:
    def test_fixed(self):
        assert FixedDelay(2.5).sample(0, 1, 0.0, RNG) == 2.5
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_uniform_range(self):
        model = UniformDelay(1.0, 2.0)
        samples = [model.sample(0, 1, 0.0, RNG) for _ in range(200)]
        assert all(1.0 <= s <= 2.0 for s in samples)
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)

    def test_theta_band_ratio(self):
        model = ThetaBandDelay(2.0, 1.5)
        samples = [model.sample(0, 1, 0.0, RNG) for _ in range(200)]
        assert max(samples) / min(samples) <= 1.5
        assert model.tau_plus == 3.0
        with pytest.raises(ValueError):
            ThetaBandDelay(0.0, 1.5)
        with pytest.raises(ValueError):
            ThetaBandDelay(1.0, 0.9)

    def test_lognormal_clipping(self):
        model = LognormalDelay(1.0, 2.0, clip_low=0.5, clip_high=2.0)
        samples = [model.sample(0, 1, 0.0, RNG) for _ in range(200)]
        assert all(0.5 <= s <= 2.0 for s in samples)

    def test_growing_delay_scales_with_time(self):
        model = GrowingDelay(FixedDelay(1.0), rate=0.1)
        assert model.sample(0, 1, 0.0, RNG) == pytest.approx(1.0)
        assert model.sample(0, 1, 100.0, RNG) == pytest.approx(11.0)
        with pytest.raises(ValueError):
            GrowingDelay(FixedDelay(1.0), rate=-1.0)

    def test_scaled(self):
        model = ScaledDelay(FixedDelay(2.0), 3.0)
        assert model.sample(0, 1, 0.0, RNG) == 6.0

    def test_zero(self):
        assert ZeroDelay().sample(0, 1, 5.0, RNG) == 0.0

    def test_per_link(self):
        model = PerLinkDelay({(0, 1): FixedDelay(9.0)}, FixedDelay(1.0))
        assert model.sample(0, 1, 0.0, RNG) == 9.0
        assert model.sample(1, 0, 0.0, RNG) == 1.0

    def test_cluster(self):
        model = ClusterDelay(
            {0: 0, 1: 0, 2: 1}, intra=FixedDelay(1.0), inter=FixedDelay(50.0)
        )
        assert model.sample(0, 1, 0.0, RNG) == 1.0
        assert model.sample(0, 2, 0.0, RNG) == 50.0

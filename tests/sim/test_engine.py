"""Tests for the discrete-event simulation kernel."""

from typing import Any

import pytest

from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.network import Network, Topology
from repro.sim.process import Process, StepContext


class Echo(Process):
    """Replies to every message ``('m', i)`` with ``('m', i+1)`` up to a cap."""

    def __init__(self, peer: int, cap: int) -> None:
        self.peer = peer
        self.cap = cap
        self.seen: list[Any] = []

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.send(self.peer, ("m", 0))

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self.seen.append(payload)
        _tag, i = payload
        if i + 1 <= self.cap:
            ctx.send(sender, ("m", i + 1))


def two_process_sim(seed: int = 0, cap: int = 5) -> Simulator:
    procs = [Echo(1, cap), Echo(0, cap)]
    net = Network(Topology.fully_connected(2), UniformDelay(0.5, 2.0))
    return Simulator(procs, net, seed=seed)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        t1 = two_process_sim(seed=3).run()
        t2 = two_process_sim(seed=3).run()
        assert [(r.event, r.time, r.payload) for r in t1.records] == [
            (r.event, r.time, r.payload) for r in t2.records
        ]

    def test_different_seed_different_times(self):
        t1 = two_process_sim(seed=1).run()
        t2 = two_process_sim(seed=2).run()
        assert [r.time for r in t1.records] != [r.time for r in t2.records]


class TestExecutionModel:
    def test_wakeups_are_first_events(self):
        trace = two_process_sim().run()
        for pid in (0, 1):
            first = trace.events_of(pid)[0]
            assert first.sender is None
            assert first.event.index == 0

    def test_event_indices_contiguous_per_process(self):
        trace = two_process_sim().run()
        for pid in (0, 1):
            indices = [r.event.index for r in trace.events_of(pid)]
            assert indices == list(range(len(indices)))

    def test_send_records_match_deliveries(self):
        trace = two_process_sim().run()
        sent = sum(len(r.sends) for r in trace.records)
        delivered = sum(1 for r in trace.records if r.sender is not None)
        assert sent == delivered  # quiescent run: everything arrived

    def test_zero_time_steps(self):
        # A step's sends depart at exactly the receive time.
        trace = two_process_sim().run()
        for r in trace.records:
            for s in r.sends:
                assert s.deliver_time == pytest.approx(r.time + s.delay)

    def test_times_monotone_in_delivery_order(self):
        trace = two_process_sim().run()
        times = [r.time for r in trace.records]
        assert times == sorted(times)


class TestCrash:
    def test_crashed_process_receives_but_does_not_step(self):
        procs = [Echo(1, 10), Echo(0, 10)]
        net = Network(Topology.fully_connected(2), FixedDelay(1.0))
        sim = Simulator(procs, net, seed=0)
        sim.crash(1)
        trace = sim.run()
        events_at_1 = trace.events_of(1)
        assert events_at_1  # receive events still recorded
        assert all(not r.processed for r in events_at_1)
        assert all(not r.sends for r in events_at_1)

    def test_is_crashed(self):
        sim = two_process_sim()
        assert not sim.is_crashed(0)
        sim.crash(0)
        assert sim.is_crashed(0)


class TestLimits:
    def test_max_events(self):
        sim = two_process_sim(cap=10_000)
        trace = sim.run(SimulationLimits(max_events=10))
        assert len(trace.records) == 10

    def test_max_time(self):
        sim = two_process_sim(cap=10_000)
        trace = sim.run(SimulationLimits(max_time=5.0))
        assert all(r.time <= 5.0 for r in trace.records)

    def test_stop_predicate(self):
        sim = two_process_sim(cap=10_000)
        trace = sim.run(SimulationLimits(stop=lambda s: len(s.trace.records) >= 7))
        assert len(trace.records) == 7


class TestValidation:
    def test_topology_size_mismatch(self):
        with pytest.raises(ValueError):
            Simulator([Process()], Network(Topology.fully_connected(2)))

    def test_faulty_pid_out_of_range(self):
        with pytest.raises(ValueError):
            Simulator(
                [Process()], Network(Topology.fully_connected(1)), faulty={3}
            )

    def test_start_times_length(self):
        with pytest.raises(ValueError):
            Simulator(
                [Process()],
                Network(Topology.fully_connected(1)),
                start_times=[0.0, 1.0],
            )

    def test_staggered_start_times(self):
        procs = [Echo(1, 0), Echo(0, 0)]
        net = Network(Topology.fully_connected(2), FixedDelay(1.0))
        sim = Simulator(procs, net, start_times=[0.0, 10.0])
        trace = sim.run()
        assert trace.events_of(1)[0].time >= 10.0 or \
            trace.events_of(1)[0].sender is not None

"""Tests for the ABC-enforcing simulator.

The enforcer must keep executions admissible even when raw delays would
break them -- e.g. a monitor ping-ponging quickly with a fast peer while
a slow peer's reply is massively delayed (the Figure-3 situation where a
plain scheduler WOULD violate).
"""

from fractions import Fraction

import pytest

from repro.algorithms import PingPongMonitor, PongResponder
from repro.core import check_abc, worst_relevant_ratio
from repro.sim import (
    FixedDelay,
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    Topology,
    build_execution_graph,
)
from repro.sim.abc_scheduler import AbcEnforcingSimulator

XI = Fraction(2)


def fd_setup(slow: float):
    """A monitor, a fast responder, and a responder behind a slow link."""
    monitor = PingPongMonitor(targets=[1, 2], xi=XI, max_probes=3)
    procs = [monitor, PongResponder(), PongResponder()]
    delays = PerLinkDelay(
        {
            (0, 2): FixedDelay(slow),
            (2, 0): FixedDelay(slow),
        },
        default=FixedDelay(1.0),
    )
    net = Network(Topology.fully_connected(3), delays)
    return monitor, procs, net


class TestEnforcement:
    def test_plain_scheduler_violates_with_skewed_delays(self):
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = Simulator(procs, net, seed=0)
        trace = sim.run(SimulationLimits(max_events=2_000))
        graph = build_execution_graph(trace)
        assert not check_abc(graph, XI).admissible

    def test_enforcer_keeps_admissibility(self):
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        graph = build_execution_graph(trace)
        assert check_abc(graph, XI).admissible
        assert sim.pulled_forward > 0  # it actually had to intervene

    def test_enforcer_is_noop_on_safe_delays(self):
        _monitor, procs, net = fd_setup(slow=1.2)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        assert sim.pulled_forward == 0
        assert check_abc(build_execution_graph(trace), XI).admissible

    def test_no_false_suspicions_under_enforcement(self):
        """With the enforcer, the slow-but-correct peer's replies arrive
        before the timeout chains complete: perfect accuracy."""
        monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        sim.run(SimulationLimits(max_events=2_000))
        assert monitor.suspected == set()

    def test_xi_validation(self):
        _monitor, procs, net = fd_setup(slow=2.0)
        with pytest.raises(ValueError):
            AbcEnforcingSimulator(procs, net, seed=0, xi=1)


class TestWorstRatioUnderEnforcement:
    @pytest.mark.parametrize("slow", [5.0, 15.0, 60.0])
    def test_ratio_stays_below_xi(self, slow):
        _monitor, procs, net = fd_setup(slow=slow)
        sim = AbcEnforcingSimulator(procs, net, seed=1, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        worst = worst_relevant_ratio(build_execution_graph(trace))
        assert worst is None or worst < XI

"""Tests for the ABC-enforcing simulator.

The enforcer must keep executions admissible even when raw delays would
break them -- e.g. a monitor ping-ponging quickly with a fast peer while
a slow peer's reply is massively delayed (the Figure-3 situation where a
plain scheduler WOULD violate).
"""

from fractions import Fraction

import pytest

from repro.algorithms import PingPongMonitor, PongResponder
from repro.core import check_abc, worst_relevant_ratio
from repro.scenarios.generators import (
    long_silence,
    ping_pong_storm,
    zero_delay_burst,
)
from repro.sim import (
    FixedDelay,
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    Topology,
    build_execution_graph,
)
from repro.sim.abc_scheduler import AbcEnforcingSimulator, _rescue_key
from repro.sim.engine import _Delivery

XI = Fraction(2)


def fd_setup(slow: float):
    """A monitor, a fast responder, and a responder behind a slow link."""
    monitor = PingPongMonitor(targets=[1, 2], xi=XI, max_probes=3)
    procs = [monitor, PongResponder(), PongResponder()]
    delays = PerLinkDelay(
        {
            (0, 2): FixedDelay(slow),
            (2, 0): FixedDelay(slow),
        },
        default=FixedDelay(1.0),
    )
    net = Network(Topology.fully_connected(3), delays)
    return monitor, procs, net


class TestEnforcement:
    def test_plain_scheduler_violates_with_skewed_delays(self):
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = Simulator(procs, net, seed=0)
        trace = sim.run(SimulationLimits(max_events=2_000))
        graph = build_execution_graph(trace)
        assert not check_abc(graph, XI).admissible

    def test_enforcer_keeps_admissibility(self):
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        graph = build_execution_graph(trace)
        assert check_abc(graph, XI).admissible
        assert sim.pulled_forward > 0  # it actually had to intervene

    def test_enforcer_is_noop_on_safe_delays(self):
        _monitor, procs, net = fd_setup(slow=1.2)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        assert sim.pulled_forward == 0
        assert check_abc(build_execution_graph(trace), XI).admissible

    def test_no_false_suspicions_under_enforcement(self):
        """With the enforcer, the slow-but-correct peer's replies arrive
        before the timeout chains complete: perfect accuracy."""
        monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        sim.run(SimulationLimits(max_events=2_000))
        assert monitor.suspected == set()

    def test_xi_validation(self):
        _monitor, procs, net = fd_setup(slow=2.0)
        with pytest.raises(ValueError):
            AbcEnforcingSimulator(procs, net, seed=0, xi=1)


class TestWorstRatioUnderEnforcement:
    @pytest.mark.parametrize("slow", [5.0, 15.0, 60.0])
    def test_ratio_stays_below_xi(self, slow):
        _monitor, procs, net = fd_setup(slow=slow)
        sim = AbcEnforcingSimulator(procs, net, seed=1, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        worst = worst_relevant_ratio(build_execution_graph(trace))
        assert worst is None or worst < XI


SCENARIOS = {
    "ping_pong_storm": ping_pong_storm,
    "zero_delay_burst": zero_delay_burst,
    "long_silence": long_silence,
}


class TestEnforcedTracesAreAdmissible:
    """The property satellite: every enforced trace passes batch
    check_abc, across the stress scenario families and several Xi."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("xi", [Fraction(3, 2), Fraction(2), Fraction(3)])
    def test_trace_passes_batch_check(self, scenario, xi):
        procs, net = SCENARIOS[scenario](n_responders=2, xi=xi)
        sim = AbcEnforcingSimulator(procs, net, seed=5, xi=xi, tombstone_every=16)
        trace = sim.run(SimulationLimits(max_events=150))
        assert len(trace.records) > 10
        assert check_abc(build_execution_graph(trace), xi).admissible
        assert not sim.violation_detected

    def test_tombstoning_keeps_digraph_smaller_than_history(self):
        procs, net = SCENARIOS["zero_delay_burst"](n_responders=2, xi=XI)
        sim = AbcEnforcingSimulator(procs, net, seed=5, xi=XI, tombstone_every=8)
        trace = sim.run(SimulationLimits(max_events=300))
        assert sim.tombstoned_events > 0
        # The digraph mirrors every realized record minus everything
        # tombstoned.
        assert sim.live_digraph_events == len(trace.records) - sim.tombstoned_events
        assert sim.live_digraph_events < len(trace.records)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_summary_compaction_keeps_decisions_byte_identical(
        self, scenario
    ):
        """Compaction is keyed on delivery progress and answers every
        Xi-oracle exactly (floor = Farey predecessor of Xi): the
        realized trace and the pull-forward count must be byte-identical
        to an uncompacted run -- even on ping-pong chains, where the
        old no-crossing criterion could remove nothing at all."""
        runs = []
        for tombstone_every in (None, 4):
            procs, net = SCENARIOS[scenario](n_responders=2, xi=XI)
            sim = AbcEnforcingSimulator(
                procs, net, seed=7, xi=XI, tombstone_every=tombstone_every
            )
            trace = sim.run(SimulationLimits(max_events=200))
            runs.append((sim, trace))
        (plain, plain_trace), (compacting, compact_trace) = runs
        assert compact_trace.records == plain_trace.records
        assert compacting.pulled_forward == plain.pulled_forward
        assert compacting.tombstoned_events > 0
        assert compacting.live_digraph_events < plain.live_digraph_events

    def test_final_record_is_absorbed_and_checked(self):
        """Regression: ``_step`` syncs the checker after the delivery,
        so the record produced by the run's final delivery is absorbed
        and verified before ``violation_detected`` is read -- it used to
        stay unmirrored (and unchecked) until a next step that never
        came."""
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        trace = sim.run(SimulationLimits(max_events=2_000))
        assert trace.records
        assert sim._mirrored == len(trace.records)
        assert not sim.violation_detected


class TestRescuePath:
    """Regression coverage for the rescue path: lazy heap deletion and
    the explicit None-last send-time ordering."""

    def test_rescue_key_orders_none_last(self):
        real = _Delivery(5.0, 2, 0, 1, None, 0.0, "m")  # sent at exactly 0.0
        late = _Delivery(5.0, 1, 0, 1, None, 3.0, "m")
        wakeup_like = _Delivery(5.0, 0, 0, None, None, None, "w")
        ranked = sorted([wakeup_like, late, real], key=_rescue_key)
        assert ranked == [real, late, wakeup_like]

    def test_rescue_key_breaks_ties_by_seq(self):
        a = _Delivery(5.0, 3, 0, 1, None, 1.0, "m")
        b = _Delivery(9.0, 7, 0, 1, None, 1.0, "m")
        assert min([b, a], key=_rescue_key) is a

    def test_lazy_deletion_skips_cancelled_entries(self):
        _monitor, procs, net = fd_setup(slow=2.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        sim._queue.clear()
        import heapq

        d1 = _Delivery(1.0, 100, 0, 1, None, 0.5, "a")
        d2 = _Delivery(2.0, 101, 1, 0, None, 0.5, "b")
        for d in (d1, d2):
            heapq.heappush(sim._queue, d)
        sim._cancelled.add(d1.seq)
        assert sim.pending_messages == 1
        assert sim._pop_live() is d2
        assert not sim._cancelled  # consumed when the stale entry popped
        assert sim._pop_live() is None

    def test_purge_keeps_heap_head_live(self):
        _monitor, procs, net = fd_setup(slow=2.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        sim._queue.clear()
        import heapq

        d1 = _Delivery(1.0, 100, 0, 1, None, 0.5, "a")
        d2 = _Delivery(2.0, 101, 1, 0, None, 0.5, "b")
        for d in (d1, d2):
            heapq.heappush(sim._queue, d)
        sim._cancelled.add(d1.seq)
        sim._purge_cancelled_head()
        assert sim._queue[0] is d2
        assert not sim._cancelled

    def test_no_cancelled_leftovers_after_run(self):
        _monitor, procs, net = fd_setup(slow=30.0)
        sim = AbcEnforcingSimulator(procs, net, seed=0, xi=XI)
        sim.run(SimulationLimits(max_events=2_000))
        assert sim.pulled_forward > 0
        assert sim._cancelled == set()
        assert sim._queue == []

"""Tests for traces and execution-graph extraction."""

from typing import Any

import pytest

from repro.core.events import Event
from repro.sim.delays import FixedDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import SilentProcess
from repro.sim.network import Network, Topology
from repro.sim.process import Process, StepContext
from repro.sim.trace import (
    ReceiveRecord,
    Trace,
    build_execution_graph,
)


class Chatter(Process):
    """Broadcasts one message on wake-up and echoes the first reply."""

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.broadcast("hello", include_self=False)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if payload == "hello":
            ctx.send(sender, "ack")


def run_chatter(faulty=frozenset()) -> Trace:
    procs = [Chatter(), Chatter(), Chatter()]
    net = Network(Topology.fully_connected(3), FixedDelay(1.0))
    sim = Simulator(procs, net, faulty=faulty, seed=0)
    return sim.run(SimulationLimits(max_events=100))


class TestTraceQueries:
    def test_correct_set(self):
        trace = run_chatter(faulty=frozenset({2}))
        assert trace.correct == frozenset({0, 1})

    def test_events_of_and_record_of(self):
        trace = run_chatter()
        ev = trace.events_of(1)[0].event
        assert trace.record_of(ev).event == ev
        with pytest.raises(KeyError):
            trace.record_of(Event(9, 9))

    def test_times_map(self):
        trace = run_chatter()
        times = trace.times()
        assert len(times) == len(trace.records)

    def test_messages_between(self):
        trace = run_chatter()
        msgs = trace.messages_between(0, 1)
        assert msgs and all(r.sender == 0 for r in msgs)

    def test_delays(self):
        trace = run_chatter()
        for _send, _recv, delay in trace.delays():
            assert delay == pytest.approx(1.0)


class TestLazyIndexes:
    """The per-event / per-process lookups are indexed lazily and must
    stay correct as the simulator appends records (satellite regression
    for the O(n) scans that made analysis loops quadratic)."""

    def make_record(self, process, index, time):
        return ReceiveRecord(
            Event(process, index), time, None, None, None, None, True, ()
        )

    def test_index_follows_appends(self):
        trace = Trace(2, frozenset())
        trace.records.append(self.make_record(0, 0, 0.0))
        assert trace.record_of(Event(0, 0)).time == 0.0
        assert trace.final_record(1) is None
        # Appends after a lookup must be visible to later lookups.
        trace.records.append(self.make_record(1, 0, 1.0))
        trace.records.append(self.make_record(0, 1, 2.0))
        assert trace.record_of(Event(1, 0)).time == 1.0
        assert [r.event.index for r in trace.events_of(0)] == [0, 1]
        assert trace.final_record(0).time == 2.0

    def test_index_rebuilds_after_truncation(self):
        trace = Trace(1, frozenset())
        for i in range(4):
            trace.records.append(self.make_record(0, i, float(i)))
        assert trace.final_record(0).event.index == 3
        del trace.records[2:]
        assert trace.final_record(0).event.index == 1
        assert len(trace.events_of(0)) == 2
        with pytest.raises(KeyError):
            trace.record_of(Event(0, 3))

    def test_index_rebuilds_after_truncate_then_regrow(self):
        """Regression: truncation followed by regrowth to the old length
        (before any lookup) must not serve the stale index."""
        trace = Trace(2, frozenset())
        for i in range(4):
            trace.records.append(self.make_record(0, i, float(i)))
        assert trace.final_record(0).event.index == 3
        del trace.records[2:]
        trace.records.append(self.make_record(1, 0, 10.0))
        trace.records.append(self.make_record(1, 1, 11.0))
        assert len(trace.records) == 4  # same length, different tail
        assert trace.final_record(0).event.index == 1
        assert trace.final_record(1).event.index == 1
        with pytest.raises(KeyError):
            trace.record_of(Event(0, 3))
        assert trace.record_of(Event(1, 0)).time == 10.0

    def test_events_of_returns_independent_list(self):
        trace = run_chatter()
        first = trace.events_of(0)
        first.clear()
        assert trace.events_of(0)

    def test_matches_linear_scan_on_simulated_trace(self):
        trace = run_chatter()
        for r in trace.records:
            assert trace.record_of(r.event) is r
        for p in range(trace.n):
            scan = [r for r in trace.records if r.event.process == p]
            assert trace.events_of(p) == scan
            assert trace.final_record(p) == (scan[-1] if scan else None)


class TestGraphBuilding:
    def test_graph_matches_trace_shape(self):
        trace = run_chatter()
        g = build_execution_graph(trace)
        assert g.n_events == len(trace.records)
        n_messages = sum(1 for r in trace.records if r.sender is not None)
        assert len(g.messages) == n_messages

    def test_faulty_senders_dropped(self):
        trace = run_chatter(faulty=frozenset({2}))
        g = build_execution_graph(trace)
        for m in g.messages:
            assert m.src.process != 2
        # Receive-event nodes of dropped messages remain in the timeline.
        assert g.n_events == len(trace.records)

    def test_drop_faulty_can_be_disabled(self):
        trace = run_chatter(faulty=frozenset({2}))
        g_all = build_execution_graph(trace, drop_faulty=False)
        g_dropped = build_execution_graph(trace, drop_faulty=True)
        assert len(g_all.messages) > len(g_dropped.messages)

    def test_keep_message_filter(self):
        trace = run_chatter()
        g = build_execution_graph(
            trace, keep_message=lambda r: r.payload != "ack"
        )
        assert all(
            trace.record_of(m.dst).payload != "ack" for m in g.messages
        )

    def test_non_contiguous_records_rejected(self):
        bad = Trace(1, frozenset())
        bad.records.append(
            ReceiveRecord(Event(0, 1), 0.0, None, None, None, "x", True, ())
        )
        with pytest.raises(ValueError, match="not contiguous"):
            build_execution_graph(bad)


class TestFaultBehaviours:
    def test_silent_process_never_sends(self):
        procs = [Chatter(), SilentProcess(), Chatter()]
        net = Network(Topology.fully_connected(3), FixedDelay(1.0))
        trace = Simulator(procs, net, faulty={1}, seed=0).run()
        assert all(
            not r.sends for r in trace.records if r.event.process == 1
        )

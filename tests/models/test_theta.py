"""Tests for the Theta-Model trace checkers."""

import pytest

from repro.core.events import Event
from repro.models.theta import (
    check_theta_dynamic,
    check_theta_static,
    measure_theta_dynamic,
    measure_theta_static,
)
from repro.sim.trace import ReceiveRecord, Trace


def make_trace(deliveries, n=3, faulty=frozenset()):
    """deliveries: list of (dest, time, sender, send_event, send_time)."""
    trace = Trace(n, frozenset(faulty))
    counters = {p: 0 for p in range(n)}
    for dest, time, sender, send_event, send_time in deliveries:
        ev = Event(dest, counters[dest])
        counters[dest] += 1
        trace.records.append(
            ReceiveRecord(ev, time, sender, send_event, send_time, "m", True, ())
        )
    return trace


def wakeups(n, t=0.0):
    return [(p, t, None, None, None) for p in range(n)]


class TestStatic:
    def test_ratio_measured(self):
        trace = make_trace(
            wakeups(3)
            + [
                (1, 1.0, 0, Event(0, 0), 0.0),   # delay 1
                (2, 3.0, 0, Event(0, 0), 0.0),   # delay 3
            ]
        )
        report = measure_theta_static(trace)
        assert report.tau_minus == 1.0 and report.tau_plus == 3.0
        assert report.ratio == pytest.approx(3.0)
        assert check_theta_static(trace, 3.0)
        assert not check_theta_static(trace, 2.9)

    def test_zero_delay_breaks_every_theta(self):
        trace = make_trace(
            wakeups(2) + [(1, 0.0, 0, Event(0, 0), 0.0)]
        )
        report = measure_theta_static(trace)
        assert report.has_zero_delay
        assert not report.admissible(10**9)

    def test_faulty_messages_ignored(self):
        trace = make_trace(
            wakeups(3)
            + [
                (2, 1.0, 0, Event(0, 0), 0.0),   # correct -> correct
                (0, 50.0, 1, Event(1, 0), 0.0),  # sender 1 will be faulty
            ],
            faulty={1},
        )
        report = measure_theta_static(trace)
        assert report.n_messages == 1  # only the correct-correct message

    def test_empty_trace(self):
        report = measure_theta_static(make_trace(wakeups(2)))
        assert report.admissible(1.0)


class TestDynamic:
    def test_disjoint_transits_do_not_constrain(self):
        # Delay 1 and delay 10, but never simultaneously in transit.
        trace = make_trace(
            wakeups(2)
            + [
                (1, 1.0, 0, Event(0, 0), 0.0),     # transit [0, 1]
                (1, 15.0, 0, Event(0, 0), 5.0),    # transit [5, 15]
            ]
        )
        dynamic = measure_theta_dynamic(trace)
        static = measure_theta_static(trace)
        assert static.ratio == pytest.approx(10.0)
        assert dynamic.ratio == pytest.approx(1.0)  # never overlap

    def test_overlapping_transits_constrain(self):
        trace = make_trace(
            wakeups(2)
            + [
                (1, 4.0, 0, Event(0, 0), 0.0),   # transit [0, 4], delay 4
                (1, 1.0, 0, Event(0, 0), 0.5),   # transit [0.5, 1], delay .5
            ]
        )
        dynamic = measure_theta_dynamic(trace)
        assert dynamic.ratio == pytest.approx(8.0)
        assert check_theta_dynamic(trace, 8.0)
        assert not check_theta_dynamic(trace, 7.9)

    def test_dynamic_never_exceeds_static(self):
        from repro.scenarios.generators import theta_band_trace

        trace = theta_band_trace(n=3, f=0, theta=2.0, max_tick=5, seed=3)
        static = measure_theta_static(trace)
        dynamic = measure_theta_dynamic(trace)
        assert dynamic.ratio <= static.ratio + 1e-9
        assert static.ratio <= 2.0 + 1e-9

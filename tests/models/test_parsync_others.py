"""Tests for the ParSync/DLS measurement and the Section-5 model family."""

import pytest

from repro.core.events import Event
from repro.models.others import (
    measure_archimedean,
    measure_far,
    measure_mcm,
    measure_wtl,
    mmr_holds,
)
from repro.models.parsync import measure_parsync, parsync_admissible
from repro.sim.trace import ReceiveRecord, Trace


def make_trace(deliveries, n=3, faulty=frozenset()):
    trace = Trace(n, frozenset(faulty))
    counters = {p: 0 for p in range(n)}
    for dest, time, sender, send_event, send_time in deliveries:
        ev = Event(dest, counters[dest])
        counters[dest] += 1
        trace.records.append(
            ReceiveRecord(ev, time, sender, send_event, send_time, "m", True, ())
        )
    return trace


def wakeups(n, t=0.0):
    return [(p, float(t), None, None, None) for p in range(n)]


class TestParSync:
    def test_phi_measures_step_gaps(self):
        # p2 takes its only step at the end: large gap.
        trace = make_trace(
            wakeups(2)
            + [
                (0, 1.0, 1, Event(1, 0), 0.0),
                (0, 2.0, 1, Event(1, 0), 0.0),
                (1, 3.0, 0, Event(0, 0), 0.0),
            ],
            n=2,
        )
        report = measure_parsync(trace)
        # Global ticks: 5 events; p1's consecutive steps are ticks 2, 5.
        assert report.ticks == 5
        assert report.phi == 3
        assert parsync_admissible(trace, phi=3, delta=5)
        assert not parsync_admissible(trace, phi=2, delta=5)

    def test_delta_measures_transit_ticks(self):
        trace = make_trace(
            wakeups(2)
            + [
                (0, 1.0, 1, Event(1, 0), 0.0),   # sent at tick 2
                (0, 2.0, 1, Event(1, 0), 0.0),
                (1, 3.0, 0, Event(0, 0), 0.0),   # sent at tick 1, recv tick 5
            ],
            n=2,
        )
        report = measure_parsync(trace)
        assert report.delta == 4

    def test_silent_correct_process_blows_phi(self):
        trace = make_trace(wakeups(2) + [(0, float(i), 1, Event(1, 0), 0.0) for i in range(1, 8)], n=3)
        report = measure_parsync(trace)
        assert report.phi >= 9  # process 2 never steps


class TestArchimedean:
    def test_ratio(self):
        trace = make_trace(
            wakeups(2)
            + [
                (1, 1.0, 0, Event(0, 0), 0.0),
                (1, 2.0, 0, Event(0, 0), 0.5),
            ]
        )
        report = measure_archimedean(trace)
        # p1 steps at 0, 1, 2 -> min step 1; max step 1 + max delay 1.5.
        assert report.min_step == pytest.approx(1.0)
        assert report.ratio == pytest.approx(2.5)
        assert report.admissible(2.5)
        assert not report.admissible(2.0)

    def test_simultaneous_steps_unbounded(self):
        trace = make_trace(
            wakeups(2)
            + [
                (1, 1.0, 0, Event(0, 0), 0.0),
                (1, 1.0, 0, Event(0, 0), 0.0),
            ]
        )
        report = measure_archimedean(trace)
        assert report.ratio is None


class TestFAR:
    def test_growing_delays_grow_average(self):
        deliveries = wakeups(2)
        t = 0.0
        for i in range(10):
            delay = 2.0 ** i
            deliveries.append((1, t + delay, 0, Event(0, 0), t))
            t += 1.0
        trace = make_trace(deliveries)
        report = measure_far(trace)
        averages = report.prefix_averages
        assert averages[-1] > averages[0]
        assert not report.bounded_by(10.0)

    def test_bounded_delays_bounded_average(self):
        deliveries = wakeups(2) + [
            (1, float(i) + 1.5, 0, Event(0, 0), float(i)) for i in range(10)
        ]
        report = measure_far(make_trace(deliveries))
        assert report.bounded_by(1.5)


class TestMCM:
    def test_classifiable_with_gap(self):
        deliveries = wakeups(2) + [
            (1, 1.0, 0, Event(0, 0), 0.0),    # fast: 1
            (1, 11.1, 0, Event(0, 0), 1.0),   # slow: 10.1 > 2 * 1
        ]
        report = measure_mcm(make_trace(deliveries))
        assert report.classifiable
        assert report.best_gap == pytest.approx(10.1)

    def test_not_classifiable_without_gap(self):
        deliveries = wakeups(2) + [
            (1, 1.0, 0, Event(0, 0), 0.0),
            (1, 2.5, 0, Event(0, 0), 1.0),    # 1.5 < 2 * 1
        ]
        report = measure_mcm(make_trace(deliveries))
        assert not report.classifiable


class TestMMR:
    def test_fixed_quorum_detected(self):
        orderings = [
            [0, 1, 2, 3],
            [1, 0, 3, 2],
            [0, 1, 3, 2],
        ]
        holds, quorum = mmr_holds(orderings, n=4, f=1)
        assert holds
        assert {0, 1} <= quorum

    def test_rotating_laggards_break_mmr(self):
        orderings = [
            [0, 1, 2, 3],
            [2, 3, 0, 1],
            [1, 3, 2, 0],
        ]
        holds, quorum = mmr_holds(orderings, n=4, f=2)
        assert not holds

    def test_empty_rounds(self):
        assert mmr_holds([], 4, 1) == (False, frozenset())


class TestWTL:
    def test_timely_source_found(self):
        deliveries = wakeups(3) + [
            (1, 1.0, 0, Event(0, 0), 0.0),
            (2, 1.5, 0, Event(0, 0), 0.0),
            (0, 90.0, 1, Event(1, 0), 0.0),   # link 1 -> 0 is slow
        ]
        report = measure_wtl(make_trace(deliveries, n=3), f=2, delta=2.0)
        assert 0 in report.sources
        assert (1, 0) not in report.timely_links

    def test_suffix_restriction(self):
        deliveries = wakeups(2) + [
            (1, 50.0, 0, Event(0, 0), 0.0),    # slow early message
            (1, 11.0, 0, Event(0, 0), 10.0),   # timely after t=5
        ]
        trace = make_trace(deliveries, n=2)
        assert (0, 1) not in measure_wtl(trace, f=1, delta=2.0).timely_links
        assert (0, 1) in measure_wtl(trace, f=1, delta=2.0, after=5.0).timely_links

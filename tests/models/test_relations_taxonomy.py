"""Tests for the model-relation theorems and the DDS taxonomy."""

from fractions import Fraction

import pytest

from repro.models.relations import (
    abc_strictly_weaker_witness,
    play_fig8_game,
    verify_theorem6,
    verify_theorem7_on_graph,
)
from repro.models.taxonomy import (
    ABC_TAXONOMY_CASE,
    TaxonomyCase,
    consensus_solvable,
)
from repro.scenarios.figures import fig8_trace
from repro.scenarios.generators import theta_band_trace


class TestTheorem6:
    @pytest.mark.parametrize("seed", range(5))
    def test_theta_band_runs_are_abc_admissible(self, seed):
        trace = theta_band_trace(n=4, f=1, theta=1.5, max_tick=8, seed=seed)
        report = verify_theorem6(trace, theta=1.5, xi=2)
        assert report.theta_admissible
        assert report.abc_admissible
        assert report.consistent_with_theorem6

    def test_xi_must_exceed_theta(self):
        trace = theta_band_trace(max_tick=3)
        with pytest.raises(ValueError):
            verify_theorem6(trace, theta=2.0, xi=2)


class TestTheorem7:
    def test_assignment_and_effective_theta(self, fig3_like_graph):
        exists, ratio = verify_theorem7_on_graph(fig3_like_graph, Fraction(5, 2))
        assert exists
        assert ratio is not None and ratio < Fraction(5, 2)

    def test_no_assignment_when_inadmissible(self, fig3_like_graph):
        exists, ratio = verify_theorem7_on_graph(fig3_like_graph, 2)
        assert not exists and ratio is None


class TestStrictness:
    def test_zero_delay_witness(self):
        """M_ABC is strictly larger than M_Theta: a zero-delay execution."""
        from repro.sim.delays import PerLinkDelay, FixedDelay, ZeroDelay
        from repro.sim.engine import SimulationLimits, Simulator
        from repro.sim.network import Network, Topology
        from repro.sim.process import Process, StepContext

        class OneShot(Process):
            def on_wakeup(self, ctx: StepContext) -> None:
                if ctx.pid == 0:
                    ctx.send(1, "x")
                    ctx.send(1, "y")

        delays = PerLinkDelay({(0, 1): ZeroDelay()}, FixedDelay(1.0))
        net = Network(Topology.fully_connected(2), delays)
        sim = Simulator([OneShot(), OneShot()], net, seed=0)
        trace = sim.run(SimulationLimits(max_events=10))
        is_witness, report = abc_strictly_weaker_witness(trace)
        assert is_witness
        assert report.has_zero_delay


class TestFig8Game:
    @pytest.mark.parametrize("phi,delta", [(3, 3), (5, 10), (20, 4)])
    def test_prover_beats_any_adversary(self, phi, delta):
        trace = fig8_trace(phi, delta)
        outcome = play_fig8_game(trace, phi, delta)
        assert outcome.prover_wins
        assert outcome.parsync.phi > phi
        assert outcome.parsync.delta > delta
        assert outcome.abc_admissible_for_any_xi


class TestTaxonomy:
    def test_abc_maps_to_impossible_cell(self):
        assert ABC_TAXONOMY_CASE == TaxonomyCase(0, 0, 1, 1, 0)
        assert consensus_solvable(ABC_TAXONOMY_CASE) is False

    def test_all_async_unordered_cells_impossible(self):
        for s in (0, 1):
            for b in (0, 1):
                case = TaxonomyCase(c=0, p=0, s=s, b=b, m=0)
                assert consensus_solvable(case) is False

    def test_synchronous_solvable(self):
        assert consensus_solvable(TaxonomyCase(1, 1, 0, 0, 0)) is True

    def test_dds_minimal_case(self):
        assert consensus_solvable(TaxonomyCase(0, 0, 1, 1, 1)) is True

    def test_unencoded_raises(self):
        with pytest.raises(KeyError):
            consensus_solvable(TaxonomyCase(0, 1, 0, 0, 0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TaxonomyCase(2, 0, 0, 0, 0)

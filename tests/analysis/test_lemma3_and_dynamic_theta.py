"""Tests for the Lemma 3 checker and the drifting-band delay model."""

import pytest

from repro.analysis import ClockAnalysis, verify_causal_chain_length
from repro.models import measure_theta_dynamic, measure_theta_static
from repro.scenarios.generators import clock_sync_run
from repro.sim import (
    DriftingBandDelay,
    Network,
    SimulationLimits,
    Simulator,
    Topology,
)
from repro.algorithms import ClockSyncProcess


class TestLemma3:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chain_length_holds_on_real_runs(self, seed):
        trace, procs = clock_sync_run(
            n=4, f=1, theta=1.5, max_tick=10, seed=seed
        )
        analysis = ClockAnalysis.from_run(trace, procs)
        assert verify_causal_chain_length(analysis)

    def test_detects_fabricated_violation(self):
        """A clock value exceeding every incoming chain length violates
        Lemma 3 -- fabricate one and the checker must flag it."""
        from repro.analysis.properties import ClockAnalysis
        from repro.core.events import Event
        from repro.sim.trace import ReceiveRecord, Trace
        from repro.sim.trace import build_execution_graph

        trace = Trace(2, frozenset())
        trace.records.append(
            ReceiveRecord(Event(0, 0), 0.0, None, None, None, "w", True, ())
        )
        trace.records.append(
            ReceiveRecord(Event(1, 0), 0.0, None, None, None, "w", True, ())
        )

        class Fake:
            clock_after_step = [7]  # clock 7 with zero incoming messages

        analysis = ClockAnalysis(
            trace, {0: [7], 1: [0]}, build_execution_graph(trace)
        )
        assert not verify_causal_chain_length(analysis)


class TestDriftingBand:
    def run_drifting(self, amplitude):
        procs = [ClockSyncProcess(1, max_tick=30) for _ in range(4)]
        model = DriftingBandDelay(
            1.0, theta=1.3, amplitude=amplitude, period=20.0
        )
        net = Network(Topology.fully_connected(4), model)
        sim = Simulator(procs, net, seed=5)
        return sim.run(SimulationLimits(max_events=30_000))

    def test_static_ratio_exceeds_dynamic(self):
        trace = self.run_drifting(amplitude=0.6)
        static = measure_theta_static(trace).ratio
        dynamic = measure_theta_dynamic(trace).ratio
        # The band drifts by +-60%, so whole-run extremes are far apart
        # while simultaneously-in-transit delays stay near theta.
        assert static > dynamic
        assert static > 1.8
        assert dynamic < static

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftingBandDelay(1.0, theta=1.3, amplitude=1.5)
        with pytest.raises(ValueError):
            DriftingBandDelay(1.0, theta=0.5)
        with pytest.raises(ValueError):
            DriftingBandDelay(-1.0, theta=1.3)

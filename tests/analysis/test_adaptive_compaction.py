"""Adaptive compaction cadence: live/boundary-triggered, not every-k.

The ROADMAP follow-on to PR 4's summary compaction: instead of
compacting on a fixed record cadence -- which pays a full Pareto
label-correcting pass every k records no matter how little it would
reclaim -- the monitor triggers when the live digraph outgrows
``threshold`` times the boundary it must keep (frontier + in-flight
send pins).  The contract under test, on the adversarial
relay-chain shape:

* reported ratios stay bit-identical to an uncompacted monitor at
  every record (the summary-mode ratio-equivalence invariant);
* the adaptive trigger runs *fewer* compaction passes than the fixed
  every-k cadence, because its spacing scales with the reclaimable
  volume instead of the record count;
* memory stays bounded by the threshold times the boundary, not by
  the trace length;
* a fully pinned trace (every send still in flight) is never
  compacted at all -- the degenerate case where a fixed cadence pays
  passes that can reclaim nothing;
* the fleet wiring (``MonitorFleet(compact_threshold=...)``) surfaces
  the behavior per shard and in the report.
"""

import random
from fractions import Fraction

import pytest

from repro.analysis.fleet import MonitorFleet
from repro.analysis.online import OnlineAbcMonitor
from repro.core.events import Event
from repro.scenarios.generators import relay_chain_workload
from repro.sim.trace import ReceiveRecord, SendRecord

SEED = 13
N_RECORDS = 800
FIXED_EVERY = 8
THRESHOLD = 3.0


def run_fixed_cadence(records, every=FIXED_EVERY):
    """The pre-satellite baseline (bench_compaction's shape): compact
    on a fixed record cadence, tracking in-flight pins by hand."""
    monitor = OnlineAbcMonitor()
    in_flight: dict = {}
    peak = 0
    compactions = 0
    for i, record in enumerate(records):
        monitor.observe(record)
        src = record.send_event
        if src is not None and in_flight.get(src, 0) > 0:
            in_flight[src] -= 1
            if not in_flight[src]:
                del in_flight[src]
        if record.sends:
            in_flight[record.event] = in_flight.get(record.event, 0) + len(
                record.sends
            )
        peak = max(peak, monitor.n_events)
        if (i + 1) % every == 0:
            if monitor.forget_prefix(
                monitor.compactable_prefix(in_flight), summarize=True
            ):
                compactions += 1
    return monitor, peak, compactions


def run_adaptive(records, threshold=THRESHOLD):
    monitor = OnlineAbcMonitor(compact_threshold=threshold)
    peak = 0
    for record in records:
        monitor.observe(record)
        peak = max(peak, monitor.n_events)
    return monitor, peak


class TestAdaptiveMonitor:
    def test_running_ratios_bit_identical_to_uncompacted(self):
        records = relay_chain_workload(random.Random(SEED), 300)
        adaptive = OnlineAbcMonitor(compact_threshold=2.0)
        reference = OnlineAbcMonitor()
        for record in records:
            assert adaptive.observe(record) == reference.observe(record)
        assert adaptive.auto_compactions > 0
        assert adaptive.forgotten_message_edges == 0
        assert adaptive.n_events < reference.n_events

    def test_fewer_compactions_than_fixed_cadence_at_identical_ratios(self):
        """The satellite's acceptance assertion: on the relay chain,
        the threshold trigger compacts when (threshold - 1) boundaries'
        worth of history has accumulated -- so its pass count scales
        with the reclaimable volume, while the fixed cadence pays
        ``n / k`` passes regardless.  Ratios must agree bit-for-bit
        throughout."""
        records = relay_chain_workload(random.Random(SEED), N_RECORDS)
        fixed_monitor, _fixed_peak, fixed_compactions = run_fixed_cadence(
            records
        )
        adaptive_monitor, adaptive_peak = run_adaptive(records)
        assert adaptive_monitor.worst_ratio == fixed_monitor.worst_ratio
        assert adaptive_monitor.worst_ratio is not None  # nontrivial
        assert 0 < adaptive_monitor.auto_compactions < fixed_compactions
        # The memory stays boundary-bounded (t x boundary), nowhere
        # near the unbounded trace length.
        assert adaptive_peak <= 60 < N_RECORDS

    def test_fully_pinned_trace_is_never_compacted(self):
        """Every record announces a send that never arrives: every
        event is pinned, nothing is reclaimable, and the adaptive
        trigger -- unlike a fixed cadence -- never pays a pass."""
        records = []
        for i in range(60):
            process = i % 2
            records.append(
                ReceiveRecord(
                    event=Event(process, i // 2),
                    time=float(i),
                    sender=None,
                    send_event=None,
                    send_time=None,
                    payload=None,
                    processed=True,
                    sends=(
                        SendRecord(
                            dest=1 - process,
                            payload=None,
                            delay=1e9,
                            deliver_time=1e9,
                        ),
                    ),
                )
            )
        monitor = OnlineAbcMonitor(compact_threshold=1.5)
        for record in records:
            monitor.observe(record)
        assert monitor.auto_compactions == 0
        assert monitor.n_events == len(records)

    def test_batch_observation_also_triggers(self):
        records = relay_chain_workload(random.Random(SEED), 300)
        monitor = OnlineAbcMonitor(compact_threshold=2.0)
        reference = OnlineAbcMonitor()
        for start in range(0, len(records), 25):
            batch = records[start : start + 25]
            assert monitor.observe_batch(batch) == reference.observe_batch(
                batch
            )
        assert monitor.auto_compactions > 0
        assert monitor.n_events < reference.n_events

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OnlineAbcMonitor(compact_threshold=1.0)
        with pytest.raises(ValueError):
            OnlineAbcMonitor(compact_threshold=0.5)


class TestFleetWiring:
    def test_fleet_monitors_self_compact_without_budget(self):
        """compact_threshold bounds per-trace memory with no global
        budget configured at all, surfaced in the report counters."""
        records = relay_chain_workload(random.Random(3), 400)
        fleet = MonitorFleet(batch_size=16, compact_threshold=2.0)
        reference = OnlineAbcMonitor()
        for record in records:
            fleet.ingest("chain", record)
            reference.observe(record)
        fleet.flush()
        report = fleet.report()
        assert report.auto_compactions > 0
        assert report.auto_compactions == sum(
            s.auto_compactions for s in report.shards
        )
        assert fleet.worst_ratio("chain") == reference.worst_ratio
        assert not fleet.is_degraded("chain")
        assert fleet.live_events < reference.n_events // 4

    def test_adaptive_cadence_reduces_eviction_pressure(self):
        """With self-compacting monitors, budget enforcement has far
        less to do: the budget holds with at most a handful of
        eviction passes (vs. the eviction-driven fleet doing all the
        compaction work itself)."""
        rng = random.Random(7)
        traces = {f"relay-{k}": relay_chain_workload(rng, 200) for k in range(4)}
        budget = 300
        plain = MonitorFleet(batch_size=16, event_budget=budget)
        adaptive = MonitorFleet(
            batch_size=16, event_budget=budget, compact_threshold=2.0
        )
        for fleet in (plain, adaptive):
            iters = {tid: iter(recs) for tid, recs in traces.items()}
            alive = dict(iters)
            while alive:
                for tid in list(alive):
                    record = next(alive[tid], None)
                    if record is None:
                        del alive[tid]
                    else:
                        fleet.ingest(tid, record)
            fleet.flush()
        plain_report = plain.report()
        adaptive_report = adaptive.report()
        assert adaptive_report.peak_live_events <= budget
        assert adaptive_report.budget_overruns == 0
        assert adaptive_report.evictions < max(plain_report.evictions, 1)
        for tid, records in traces.items():
            standalone = OnlineAbcMonitor()
            for record in records:
                standalone.observe(record)
            assert adaptive.worst_ratio(tid) == standalone.worst_ratio
            assert not adaptive.is_degraded(tid)

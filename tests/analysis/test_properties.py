"""Tests for the theorem checkers, including negative cases.

A verifier that cannot fail is no verifier: each checker is also fed a
violating input and must flag it.
"""

from fractions import Fraction

from repro.analysis.properties import (
    ClockAnalysis,
    first_lockstep_round,
    verify_bounded_progress,
    verify_causal_cone,
    verify_cut_synchrony,
    verify_lockstep,
    verify_progress,
    verify_realtime_precision,
)
from repro.algorithms.clock_sync import Tick
from repro.core.events import Event
from repro.sim.trace import ReceiveRecord, Trace


def synthetic_clock_trace(clock_histories, tick_deliveries=(), n=None):
    """Build a trace + fake process objects with given clock histories.

    clock_histories: dict pid -> list of clock values (one per step).
    tick_deliveries: (dest, step_index, sender, value) extra tick payload
    annotations; by default every step carries no tick.
    """
    n = n or len(clock_histories)
    trace = Trace(n, frozenset())
    ticks = {
        (dest, idx): (sender, value)
        for dest, idx, sender, value in tick_deliveries
    }
    t = 0.0
    max_len = max(len(h) for h in clock_histories.values())
    for idx in range(max_len):
        for pid in sorted(clock_histories):
            if idx >= len(clock_histories[pid]):
                continue
            sender, value = ticks.get((pid, idx), (None, None))
            payload = Tick(value) if value is not None else "wakeup"
            send_event = Event(sender, 0) if sender is not None else None
            send_time = t - 0.5 if sender is not None else None
            trace.records.append(
                ReceiveRecord(
                    Event(pid, idx), t, sender, send_event, send_time,
                    payload, True, (),
                )
            )
            t += 1.0

    class FakeProc:
        def __init__(self, history):
            self.clock_after_step = history

    procs = [FakeProc(clock_histories.get(p, [])) for p in range(n)]
    return trace, procs


class TestProgress:
    def test_progress_holds(self):
        trace, procs = synthetic_clock_trace({0: [0, 1, 2], 1: [0, 2, 3]})
        analysis = ClockAnalysis.from_run(trace, procs)
        assert verify_progress(analysis, target=2)

    def test_progress_fails_below_target(self):
        trace, procs = synthetic_clock_trace({0: [0, 1], 1: [0, 5]})
        analysis = ClockAnalysis.from_run(trace, procs)
        assert not verify_progress(analysis, target=3)


class TestSynchrony:
    def test_detects_spread_violation(self):
        # Clocks drift apart by 10 with no communication: the checker
        # must catch |C_p - C_q| > 2 Xi on some cut.
        trace, procs = synthetic_clock_trace({0: [0, 10], 1: [0, 0]})
        analysis = ClockAnalysis.from_run(trace, procs)
        report = verify_cut_synchrony(analysis, Fraction(2), extra_samples=5)
        assert not report.holds
        assert report.worst_spread == 10

    def test_accepts_tight_clocks(self):
        trace, procs = synthetic_clock_trace({0: [0, 1, 2], 1: [0, 1, 2]})
        analysis = ClockAnalysis.from_run(trace, procs)
        assert verify_cut_synchrony(analysis, Fraction(2)).holds


class TestRealtimePrecision:
    def test_detects_realtime_violation(self):
        trace, procs = synthetic_clock_trace({0: [8], 1: [0, 0, 0]})
        analysis = ClockAnalysis.from_run(trace, procs)
        report = verify_realtime_precision(analysis, Fraction(2))
        assert not report.holds

    def test_accepts_synchronized(self):
        trace, procs = synthetic_clock_trace({0: [0, 1], 1: [1, 2]})
        analysis = ClockAnalysis.from_run(trace, procs)
        assert verify_realtime_precision(analysis, Fraction(2)).holds


class TestBoundedProgress:
    def test_flags_stalled_process(self):
        # p0 performs many distinguished events; p1 none after its start.
        history0 = list(range(30))
        trace, procs = synthetic_clock_trace({0: history0, 1: [0] * 30})
        analysis = ClockAnalysis.from_run(trace, procs)
        report = verify_bounded_progress(
            analysis,
            Fraction(2),
            {0: list(range(30)), 1: [0]},
        )
        assert report.rho == 9  # 4 * 2 + 1
        assert not report.holds

    def test_quiet_when_too_few_events(self):
        trace, procs = synthetic_clock_trace({0: [0, 1], 1: [0, 1]})
        analysis = ClockAnalysis.from_run(trace, procs)
        report = verify_bounded_progress(
            analysis, Fraction(2), {0: [0, 1], 1: [0, 1]}
        )
        assert report.n_windows == 0 and report.holds


class TestCausalCone:
    def test_detects_missing_tick(self):
        # p0 reaches clock 4 = 0 + 2*2 without any tick from p1.
        trace, procs = synthetic_clock_trace({0: [0, 4], 1: [0, 0]})
        analysis = ClockAnalysis.from_run(trace, procs)
        assert not verify_causal_cone(analysis, Fraction(2))

    def test_accepts_complete_cone(self):
        # p0 reaches 4 having received (tick 0) from both p0 and p1.
        trace, procs = synthetic_clock_trace(
            {0: [0, 0, 0, 4], 1: [0, 0]},
            tick_deliveries=[(0, 1, 0, 0), (0, 2, 1, 0)],
        )
        analysis = ClockAnalysis.from_run(trace, procs)
        assert verify_causal_cone(analysis, Fraction(2))


class TestLockstepChecker:
    class FakeLockstep:
        def __init__(self, inputs):
            self.round_inputs = inputs

    def test_complete_inputs_pass(self):
        trace = Trace(2, frozenset())
        procs = [
            self.FakeLockstep({1: {0: "a", 1: "b"}}),
            self.FakeLockstep({1: {0: "a", 1: "b"}}),
        ]
        holds, checked = verify_lockstep(trace, procs)
        assert holds and checked == 2

    def test_missing_input_fails(self):
        trace = Trace(2, frozenset())
        procs = [
            self.FakeLockstep({1: {0: "a"}}),  # missing sender 1
            self.FakeLockstep({1: {0: "a", 1: "b"}}),
        ]
        holds, _ = verify_lockstep(trace, procs)
        assert not holds

    def test_faulty_senders_excused(self):
        trace = Trace(2, frozenset({1}))
        procs = [self.FakeLockstep({1: {0: "a"}}), None]
        procs = [procs[0], self.FakeLockstep({})]
        holds, _ = verify_lockstep(trace, procs)
        assert holds

    def test_first_lockstep_round(self):
        trace = Trace(2, frozenset())
        procs = [
            self.FakeLockstep({1: {0: "a"}, 2: {0: "a", 1: "b"},
                               3: {0: "a", 1: "b"}}),
            self.FakeLockstep({1: {0: "a", 1: "b"}, 2: {0: "a", 1: "b"},
                               3: {0: "a", 1: "b"}}),
        ]
        assert first_lockstep_round(trace, procs) == 2

    def test_never_lockstep_returns_none(self):
        trace = Trace(2, frozenset())
        procs = [
            self.FakeLockstep({1: {0: "a", 1: "b"}, 2: {0: "a"}}),
            self.FakeLockstep({1: {0: "a", 1: "b"}, 2: {0: "a", 1: "b"}}),
        ]
        assert first_lockstep_round(trace, procs) is None

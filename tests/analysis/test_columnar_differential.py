"""Columnar vs per-record ingestion: lockstep differential tests.

The columnar hot path (``decode_records_columnar`` ->
``observe_batch_columnar`` -> ``absorb_batch``) promises **bit
identity** with the per-record object path -- not just equal final
answers, but the same observable at every batch boundary: per-batch
worst ratios, oracle-call counts, ratio-change logs, forgotten-edge
counters, violation witnesses and callback order.  These tests drive
both paths in lockstep over every generator profile (the firehose
profile is the message-dense shape the columnar path was built for),
both detection kernels, degraded metadata-free streams, adaptive
compaction, and snapshot round trips -- and compare after *every*
batch, so a divergence pinpoints the batch that introduced it.
"""

import random
from fractions import Fraction

import pytest

from repro.analysis.online import OnlineAbcMonitor
from repro.runtime import codec
from repro.scenarios.generators import (
    profiled_trace_records,
    strip_sends_metadata,
)
from repro.sim.trace import RecordColumns

PROFILES = ("storm", "burst", "idler", "relay", "firehose")
KERNELS = ("py_object", "flat_int")


def batches_of(records, size):
    for i in range(0, len(records), size):
        yield records[i : i + size]


def assert_lockstep(obj_mon, col_mon, records, batch, *, via_wire=False):
    """Feed both monitors the same stream and compare every observable
    at every batch boundary.  ``via_wire`` routes the columnar side
    through the codec (encode -> ``decode_records_columnar``), the
    exact worker path; otherwise columns are built straight from the
    records."""
    for n_batch, chunk in enumerate(batches_of(records, batch)):
        if via_wire:
            wire = [
                (k, "t", codec.encode_record(r))
                for k, r in enumerate(chunk)
            ]
            _ticks, _ids, cols = codec.decode_records_columnar(wire)
        else:
            cols = RecordColumns.from_records(chunk)
        obj_ratio = obj_mon.observe_batch(chunk)
        col_ratio = col_mon.observe_batch_columnar(cols)
        at = f"batch {n_batch}"
        assert col_ratio == obj_ratio, at
        assert col_mon.n_events == obj_mon.n_events, at
        assert col_mon.n_messages == obj_mon.n_messages, at
        assert col_mon.oracle_calls == obj_mon.oracle_calls, at
        assert (
            col_mon.forgotten_message_edges
            == obj_mon.forgotten_message_edges
        ), at
        assert [c.worst for c in col_mon.changes] == [
            c.worst for c in obj_mon.changes
        ], at
        assert [c.n_events for c in col_mon.changes] == [
            c.n_events for c in obj_mon.changes
        ], at
        assert col_mon.auto_compactions == obj_mon.auto_compactions, at
        assert (col_mon.violation is None) == (obj_mon.violation is None), at
    if obj_mon.violation is not None:
        assert col_mon.violation.ratio == obj_mon.violation.ratio
        assert (
            col_mon.violation.cycle.steps == obj_mon.violation.cycle.steps
        )


class TestMonitorLockstep:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("profile", PROFILES)
    def test_every_profile_every_kernel(self, profile, kernel):
        records = profiled_trace_records(random.Random(5), profile, 90)
        assert_lockstep(
            OnlineAbcMonitor(kernel=kernel),
            OnlineAbcMonitor(kernel=kernel),
            records,
            batch=16,
        )

    @pytest.mark.parametrize("batch", (1, 7, 64, 1000))
    def test_batch_size_is_invisible(self, batch):
        """Batch boundaries are a transport artifact: any cut of the
        same stream must produce the same per-record observables."""
        records = profiled_trace_records(random.Random(9), "firehose", 80)
        assert_lockstep(
            OnlineAbcMonitor(),
            OnlineAbcMonitor(),
            records,
            batch=batch,
        )

    @pytest.mark.parametrize("profile", ("storm", "firehose"))
    def test_through_the_wire(self, profile):
        """The worker path proper: records encoded to wire rows and
        transposed by the codec, not built from live objects."""
        records = profiled_trace_records(random.Random(2), profile, 90)
        assert_lockstep(
            OnlineAbcMonitor(),
            OnlineAbcMonitor(),
            records,
            batch=16,
            via_wire=True,
        )

    @pytest.mark.parametrize("profile", ("storm", "burst", "firehose"))
    def test_degraded_metadata_free_streams(self, profile):
        """Stripped sends metadata: the forgotten-edge counters and
        ratios must degrade identically on both paths."""
        records = strip_sends_metadata(
            profiled_trace_records(random.Random(4), profile, 70)
        )
        assert_lockstep(
            OnlineAbcMonitor(),
            OnlineAbcMonitor(),
            records,
            batch=16,
        )

    def test_faulty_sender_filter(self):
        """The faulty-process message filter runs per row on the
        columnar path; dropped edges must match exactly."""
        records = profiled_trace_records(random.Random(6), "storm", 80)
        senders = {r.sender for r in records if r.sender is not None}
        assert senders & {0, 1}, "workload must exercise the filter"
        faulty = frozenset({0, 1})
        assert_lockstep(
            OnlineAbcMonitor(faulty=faulty),
            OnlineAbcMonitor(faulty=faulty),
            records,
            batch=16,
        )

    def test_violation_fires_once_at_the_same_batch(self):
        """xi violations: the callback must fire at the same batch
        index, once, with an equal-ratio witness."""
        records = profiled_trace_records(random.Random(1), "storm", 90)
        obj_hits, col_hits = [], []
        obj_mon = OnlineAbcMonitor(
            xi=Fraction(2), on_violation=lambda w: obj_hits.append(w)
        )
        col_mon = OnlineAbcMonitor(
            xi=Fraction(2), on_violation=lambda w: col_hits.append(w)
        )
        assert_lockstep(obj_mon, col_mon, records, batch=16)
        assert obj_hits and len(obj_hits) == len(col_hits) == 1
        assert col_hits[0].ratio == obj_hits[0].ratio

    @pytest.mark.parametrize("profile", ("relay", "firehose"))
    def test_under_adaptive_compaction(self, profile):
        """compact_threshold mode: in-flight tracking feeds off the
        sends column; compaction cadence and ratios must agree."""
        records = profiled_trace_records(random.Random(11), profile, 120)
        obj_mon = OnlineAbcMonitor(compact_threshold=2.0)
        col_mon = OnlineAbcMonitor(compact_threshold=2.0)
        assert_lockstep(obj_mon, col_mon, records, batch=16)
        assert obj_mon.auto_compactions > 0, (
            "workload too small to exercise compaction"
        )

    def test_snapshot_mid_stream_then_columnar(self):
        """A columnar-fed monitor snapshotted mid-stream must resume --
        on either path -- exactly where an unsnapshotted object-path
        twin is."""
        records = profiled_trace_records(random.Random(8), "firehose", 80)
        cut = len(records) // 2
        obj_mon = OnlineAbcMonitor()
        col_mon = OnlineAbcMonitor()
        assert_lockstep(obj_mon, col_mon, records[:cut], batch=16)
        col_mon = codec.decode_monitor(codec.encode_monitor(col_mon))
        assert_lockstep(obj_mon, col_mon, records[cut:], batch=16)

    def test_mixed_surface_interleave(self):
        """One monitor may see columnar and object batches alternately
        (degraded traces fall back mid-stream); the blend must stay in
        lockstep with a pure object-path twin."""
        records = profiled_trace_records(random.Random(3), "firehose", 96)
        obj_mon = OnlineAbcMonitor()
        mix_mon = OnlineAbcMonitor()
        for n_batch, chunk in enumerate(batches_of(records, 12)):
            obj_ratio = obj_mon.observe_batch(chunk)
            if n_batch % 2:
                mix_ratio = mix_mon.observe_batch(chunk)
            else:
                mix_ratio = mix_mon.observe_batch_columnar(
                    RecordColumns.from_records(chunk)
                )
            assert mix_ratio == obj_ratio, f"batch {n_batch}"
            assert mix_mon.oracle_calls == obj_mon.oracle_calls
        assert mix_mon.worst_ratio == obj_mon.worst_ratio
        assert mix_mon.n_messages == obj_mon.n_messages

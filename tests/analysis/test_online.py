"""Tests for the incremental ?ABC/<>ABC monitor.

The central property: after every observation, the monitor's worst ratio
equals the batch ``worst_relevant_ratio`` of the execution graph built
from the records observed so far -- cross-validated on synthetic streams,
simulator traces, and hand-crafted graphs, including the checker's rare
path (ratio increases) and its callbacks.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.online import (
    OnlineAbcMonitor,
    RatioChange,
    running_worst_ratio_of_trace,
)
from repro.core.events import Event
from repro.core.execution_graph import GraphBuilder
from repro.core.synchrony import (
    check_abc,
    check_abc_exhaustive,
    farey_successor,
    worst_relevant_ratio,
)
from repro.core.variants import running_worst_ratio
from repro.scenarios.generators import (
    random_execution_graph,
    streaming_trace,
    theta_band_trace,
)
from repro.sim.trace import ReceiveRecord, Trace, build_execution_graph


def prefix_graphs(trace: Trace) -> list:
    return [
        build_execution_graph(Trace(trace.n, trace.faulty, trace.records[:k]))
        for k in range(1, len(trace.records) + 1)
    ]


class TestFareySuccessor:
    @pytest.mark.parametrize(
        "value,max_den,expected",
        [
            (Fraction(1), 7, Fraction(8, 7)),
            (Fraction(3, 2), 10, Fraction(14, 9)),
            (Fraction(2), 5, Fraction(11, 5)),
            (Fraction(5, 3), 3, Fraction(2, 1)),
            (Fraction(1), 1, Fraction(2, 1)),
        ],
    )
    def test_known_values(self, value, max_den, expected):
        assert farey_successor(value, max_den) == expected

    @given(
        num=st.integers(1, 40), den=st.integers(1, 40), max_den=st.integers(1, 60)
    )
    @settings(max_examples=200, deadline=None)
    def test_is_the_smallest_fraction_above(self, num, den, max_den):
        value = Fraction(num, den)
        if value.denominator > max_den:
            with pytest.raises(ValueError):
                farey_successor(value, max_den)
            return
        successor = farey_successor(value, max_den)
        assert successor > value
        assert successor.denominator <= max_den
        # Exhaustively: nothing with a small denominator lies between.
        for d in range(1, max_den + 1):
            # smallest numerator with n/d > value
            n = value.numerator * d // value.denominator + 1
            assert Fraction(n, d) >= successor


class TestCrossValidation:
    def test_matches_batch_on_every_prefix_of_streams(self):
        for seed in range(8):
            rng = random.Random(seed)
            trace = streaming_trace(rng, n_processes=3, n_records=28)
            running = running_worst_ratio_of_trace(trace)
            batch = [worst_relevant_ratio(g) for g in prefix_graphs(trace)]
            assert running == batch, f"seed={seed}"

    def test_matches_batch_on_simulator_trace(self):
        trace = theta_band_trace(n=3, f=0, theta=1.5, max_tick=4, seed=1)
        running = running_worst_ratio_of_trace(trace)
        batch = [worst_relevant_ratio(g) for g in prefix_graphs(trace)]
        assert running == batch

    def test_matches_exhaustive_admissibility_on_final_graph(self):
        for seed in range(6):
            rng = random.Random(seed)
            trace = streaming_trace(rng, n_processes=3, n_records=14)
            monitor = OnlineAbcMonitor.from_trace(trace)
            graph = build_execution_graph(trace)
            for xi in (Fraction(3, 2), Fraction(2), Fraction(3)):
                online = monitor.check(xi).admissible
                assert online == check_abc_exhaustive(graph, xi).admissible
                assert online == check_abc(graph, xi).admissible

    def test_ratio_is_monotone_and_change_log_consistent(self):
        rng = random.Random(3)
        trace = streaming_trace(rng, n_processes=3, n_records=40)
        monitor = OnlineAbcMonitor(faulty=trace.faulty)
        previous = Fraction(0)
        for record in trace.records:
            worst = monitor.observe(record)
            if worst is not None:
                assert worst >= previous
                previous = worst
        assert [c.worst for c in monitor.changes] == sorted(
            {c.worst for c in monitor.changes}
        )
        assert monitor.changes, "workload never produced a relevant cycle"


class TestIncrementality:
    def test_single_oracle_call_per_steady_message(self):
        """Once the worst ratio is stable, each new message costs exactly
        one negative-cycle run (the Farey-successor query)."""
        rng = random.Random(5)
        trace = streaming_trace(rng, n_processes=3, n_records=60)
        monitor = OnlineAbcMonitor(faulty=trace.faulty)
        calls_per_record = []
        for record in trace.records:
            before = monitor.oracle_calls
            changed_at = len(monitor.changes)
            monitor.observe(record)
            if (
                len(monitor.changes) == changed_at
                and monitor.worst_ratio is not None
            ):
                calls_per_record.append(monitor.oracle_calls - before)
        assert calls_per_record, "no steady-state records in workload"
        had_message = [c for c in calls_per_record if c > 0]
        assert all(c == 1 for c in had_message)

    def test_events_without_messages_are_free(self):
        monitor = OnlineAbcMonitor()
        for i in range(10):
            monitor.observe_event(Event(0, i))
        assert monitor.oracle_calls == 0
        assert monitor.worst_ratio is None


class TestViolationCallbacks:
    def fig3_events(self):
        """The Figure-3 pattern as an event/message stream."""
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (0, 1))
        b.message((0, 1), (1, 1))
        b.message((1, 1), (0, 2))
        b.message((0, 0), (2, 0))
        b.message((2, 0), (0, 3))
        return b.build()

    def test_violation_fires_once_with_witness(self):
        graph = self.fig3_events()
        witnesses = []
        monitor = OnlineAbcMonitor(xi=2, on_violation=witnesses.append)
        monitor.extend_to(graph)
        assert not monitor.is_admissible()
        assert len(witnesses) == 1
        assert witnesses[0].relevant
        assert witnesses[0].ratio >= 2
        assert monitor.violation is witnesses[0]
        # Feeding more admissible growth does not re-fire.
        monitor.observe_event(Event(3, 0))
        assert len(witnesses) == 1

    def test_violation_at_the_right_prefix(self):
        rng = random.Random(11)
        trace = streaming_trace(rng, n_processes=3, n_records=40)
        batch = [worst_relevant_ratio(g) for g in prefix_graphs(trace)]
        xi = Fraction(2)
        expected = next(
            (i for i, w in enumerate(batch) if w is not None and w >= xi), None
        )
        assert expected is not None, "workload never violates Xi=2"
        monitor = OnlineAbcMonitor(xi=xi, faulty=trace.faulty)
        fired_at = None
        for i, record in enumerate(trace.records):
            monitor.observe(record)
            if monitor.violation is not None:
                fired_at = i
                break
        assert fired_at == expected

    def test_ratio_increase_callback(self):
        changes: list[RatioChange] = []
        graph = self.fig3_events()
        monitor = OnlineAbcMonitor(on_ratio_increase=changes.append)
        monitor.extend_to(graph)
        assert changes
        assert changes[-1].worst == 2
        assert changes[0].previous is None
        assert monitor.changes == changes

    def test_is_admissible_requires_xi(self):
        with pytest.raises(ValueError):
            OnlineAbcMonitor().is_admissible()

    def test_xi_validated_at_construction(self):
        with pytest.raises(ValueError):
            OnlineAbcMonitor(xi=1)


class TestFaultyAndFilters:
    def test_faulty_senders_dropped_like_batch(self):
        trace = theta_band_trace(n=4, f=1, theta=2.0, max_tick=3, seed=2)
        trace = Trace(trace.n, frozenset({3}), trace.records)
        monitor = OnlineAbcMonitor.from_trace(trace)
        graph = build_execution_graph(trace)
        assert monitor.n_messages == len(graph.messages)
        assert monitor.worst_ratio == worst_relevant_ratio(graph)

    def test_keep_message_filter(self):
        rng = random.Random(7)
        trace = streaming_trace(rng, n_processes=3, n_records=25)
        keep = lambda r: r.event.index % 2 == 0
        monitor = OnlineAbcMonitor(keep_message=keep)
        monitor.observe_trace(trace.records)
        graph = build_execution_graph(trace, keep_message=keep)
        assert monitor.n_messages == len(graph.messages)
        assert monitor.worst_ratio == worst_relevant_ratio(graph)


class TestSpeculativeQueries:
    def _fed_monitor(self, seed=4, n_records=30, xi=None):
        trace = streaming_trace(random.Random(seed), 3, n_records)
        monitor = OnlineAbcMonitor(xi=xi, faulty=trace.faulty)
        monitor.observe_trace(trace.records)
        return monitor

    @pytest.mark.parametrize("seed", range(8))
    def test_speculative_worst_ratio_matches_observing(self, seed):
        """Speculating an extension answers exactly what observing it
        would, and leaves the monitor's state untouched."""
        monitor = self._fed_monitor(seed)
        worst_before = monitor.worst_ratio
        n_events, n_messages = monitor.n_events, monitor.n_messages
        rng = random.Random(seed + 77)
        process = rng.randrange(3)
        src = Event(rng.randrange(3), 0)
        dst = Event(process, monitor._checker.n_events_of(process))
        messages = [(src, dst)] if src != dst else []
        speculated = monitor.speculative_worst_ratio(
            events=[dst], messages=messages
        )
        assert monitor.worst_ratio == worst_before
        assert (monitor.n_events, monitor.n_messages) == (n_events, n_messages)
        monitor.observe_event(dst)
        for s, d in messages:
            monitor.observe_message(s, d)
        assert monitor.worst_ratio == speculated

    def test_would_violate_agrees_with_admissibility(self):
        monitor = OnlineAbcMonitor(xi=2)
        # Build the Figure-3 violation speculatively: monitor untouched.
        events = [
            Event(0, 0), Event(1, 0), Event(0, 1), Event(1, 1),
            Event(0, 2), Event(2, 0), Event(0, 3),
        ]
        messages = [
            (Event(0, 0), Event(1, 0)),
            (Event(1, 0), Event(0, 1)),
            (Event(0, 1), Event(1, 1)),
            (Event(1, 1), Event(0, 2)),
            (Event(0, 0), Event(2, 0)),
            (Event(2, 0), Event(0, 3)),
        ]
        ordered = [events[i] for i in (0, 1, 2, 3, 4, 5, 6)]
        # Events must respect local order: p0 indexes 0..3, p1 0..1, p2 0.
        assert monitor.would_violate(ordered, messages)
        assert monitor.n_events == 0 and monitor.n_messages == 0
        assert monitor.worst_ratio is None
        # Without the closing slow-chain message there is no violation.
        assert not monitor.would_violate(ordered, messages[:-1])

    def test_would_violate_requires_xi(self):
        monitor = OnlineAbcMonitor()
        with pytest.raises(ValueError):
            monitor.would_violate([Event(0, 0)])

    @pytest.mark.parametrize("seed", range(6))
    def test_forget_prefix_keeps_running_maximum(self, seed):
        """Forgetting the settled past preserves the historical worst
        ratio and stays exact as the execution keeps growing."""
        monitor = self._fed_monitor(seed=seed, n_records=40)
        worst_before = monitor.worst_ratio
        checker = monitor._checker
        pinned = [
            Event(p, checker.n_events_of(p) - 1) for p in checker.processes
        ]
        settled = monitor.settled_prefix(pinned)
        forgotten = monitor.forget_prefix(settled)
        assert forgotten == len(settled)
        assert monitor.worst_ratio == worst_before
        # Keep growing: a fresh ping-pong burst between two processes.
        base0 = checker.n_events_of(0)
        base1 = checker.n_events_of(1)
        last = Event(0, base0 - 1)
        for k in range(3):
            hop = Event(1, base1 + k)
            monitor.observe_event(hop)
            monitor.observe_message(last, hop)
            back = Event(0, base0 + k)
            monitor.observe_event(back)
            monitor.observe_message(hop, back)
            last = back
        # The running worst never decreases and stays exact wrt history.
        assert monitor.worst_ratio is not None or worst_before is None
        if worst_before is not None:
            assert monitor.worst_ratio >= worst_before

    def test_extend_to_after_forget_prefix(self):
        """Regression: absorb() must not re-add messages whose endpoints
        were tombstoned away (extend_to crashed with KeyError)."""
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.event(0, 1)
        b.event(1, 1)
        small = b.build()
        monitor = OnlineAbcMonitor()
        monitor.extend_to(small)
        # Pinning only the frontiers leaves the first round -- message
        # included -- entirely removable.
        forgot = monitor.forget_prefix(
            monitor.settled_prefix([Event(0, 1), Event(1, 1)])
        )
        assert forgot == 2
        assert monitor.n_messages == 0
        b.message((0, 1), (1, 1))
        grown = b.build()
        assert monitor._checker.extends(grown)
        monitor.extend_to(grown)  # must not raise
        assert monitor.n_messages == 1


class TestExtendTo:
    def test_running_worst_ratio_matches_per_prefix_batch(self):
        rng = random.Random(9)
        trace = streaming_trace(rng, n_processes=3, n_records=30)
        prefixes = prefix_graphs(trace)
        assert running_worst_ratio(prefixes) == [
            worst_relevant_ratio(g) for g in prefixes
        ]

    def test_non_extension_falls_back_to_batch(self):
        rng = random.Random(1)
        graphs = [
            random_execution_graph(random.Random(s), 3, 8) for s in range(5)
        ]
        # Unrelated graphs: every entry resets the monitor.
        assert running_worst_ratio(graphs) == [
            worst_relevant_ratio(g) for g in graphs
        ]

    def test_reset_clears_violation_and_change_history(self):
        """Regression: a non-extension reset must drop the violation and
        ratio-change log of the abandoned execution, so callbacks fire
        afresh for the new one."""
        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (0, 1))
        b.message((0, 1), (1, 1))
        b.message((1, 1), (0, 2))
        b.message((0, 0), (2, 0))
        b.message((2, 0), (0, 3))
        violating = b.build()
        witnesses = []
        monitor = OnlineAbcMonitor(xi=2, on_violation=witnesses.append)
        monitor.extend_to(violating)
        assert monitor.violation is not None and len(witnesses) == 1
        # An unrelated admissible graph: not an extension -> reset.
        b2 = GraphBuilder()
        b2.message((0, 0), (1, 0))
        b2.message((1, 0), (0, 1))
        chain = b2.build()
        monitor.extend_to(chain)
        assert monitor.violation is None
        assert monitor.changes == []
        assert monitor.is_admissible()
        # A third graph that violates again must re-fire the callback.
        monitor.extend_to(violating)
        assert monitor.violation is not None
        assert len(witnesses) == 2

    def test_mixed_extension_and_reset(self):
        rng = random.Random(13)
        trace = streaming_trace(rng, n_processes=3, n_records=20)
        grown = prefix_graphs(trace)
        other = random_execution_graph(random.Random(99), 3, 9)
        sequence = grown[:10] + [other] + grown[10:]
        assert running_worst_ratio(sequence) == [
            worst_relevant_ratio(g) for g in sequence
        ]


class TestObserveBatch:
    """Deferred-batch absorption: the fleet's monitor hook."""

    @pytest.mark.parametrize("seed,batch", [(0, 1), (1, 4), (2, 9), (3, 50)])
    def test_batch_boundaries_match_per_record_observation(self, seed, batch):
        trace = streaming_trace(random.Random(seed), 3, 48)
        batched = OnlineAbcMonitor()
        reference = OnlineAbcMonitor()
        for start in range(0, len(trace.records), batch):
            chunk = trace.records[start : start + batch]
            got = batched.observe_batch(chunk)
            for record in chunk:
                reference.observe(record)
            assert got == reference.worst_ratio
        assert batched.oracle_calls <= reference.oracle_calls
        assert batched.forgotten_message_edges == 0

    def test_batched_violation_fires_at_the_boundary(self):
        trace = streaming_trace(random.Random(7), 3, 40)
        reference = OnlineAbcMonitor()
        for record in trace.records:
            reference.observe(record)
        xi = reference.worst_ratio  # reached by this trace, so violated
        witnesses = []
        monitor = OnlineAbcMonitor(xi=xi, on_violation=witnesses.append)
        monitor.observe_batch(trace.records)
        assert len(witnesses) == 1
        assert monitor.violation is not None
        assert monitor.violation.ratio >= xi
        # One coalesced change per batch at most.
        assert len(monitor.changes) == 1
        assert monitor.changes[0].worst == reference.worst_ratio

    def test_forgotten_prefix_edge_is_counted_not_raised(self):
        """After an (unsafely) forgotten prefix, a late message edge
        from a dropped send event must be skipped and counted -- by
        observe_batch and record-at-a-time observe alike (summary
        compaction makes crossing-send eviction routine, so the
        degradation path must be uniform across the record APIs)."""

        def record(event, time, src=None, src_time=None):
            return ReceiveRecord(
                event=event,
                time=time,
                sender=None if src is None else src.process,
                send_event=src,
                send_time=src_time,
                payload=None,
                processed=True,
                sends=(),
            )

        a0, b0, b1 = Event(0, 0), Event(1, 0), Event(1, 1)
        early = [record(a0, 1.0), record(b0, 2.0)]
        late = record(b1, 3.0, src=a0, src_time=1.0)

        monitor = OnlineAbcMonitor()
        monitor.observe_batch(early)
        monitor.forget_prefix([a0])  # unsafe: a0's send is in flight
        assert monitor.observe_batch([late]) is None
        assert monitor.forgotten_message_edges == 1

        one_by_one = OnlineAbcMonitor()
        one_by_one.observe_batch(early)
        one_by_one.forget_prefix([a0])
        assert one_by_one.observe(late) is None
        assert one_by_one.forgotten_message_edges == 1

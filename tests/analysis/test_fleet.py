"""Tests for the multi-trace monitoring fleet.

The central property: every per-trace worst ratio the fleet reports --
through batched flushes, budget-driven eviction, and retirement -- is
bit-identical to a standalone :class:`OnlineAbcMonitor` fed the same
records one at a time.  Around it: the memory budget's watermark
guarantee, graceful degradation on metadata-free streams, the trace
lifecycle, and the fleet-level aggregates.
"""

import random
from collections import defaultdict
from fractions import Fraction

import pytest

from repro.analysis.fleet import MonitorFleet, TraceSummary
from repro.analysis.online import OnlineAbcMonitor
from repro.scenarios.generators import (
    concurrent_workload,
    profiled_trace_records,
    relay_chain_workload,
    streaming_records,
)


def standalone_ratio(records):
    """The reference: one monitor, record at a time."""
    monitor = OnlineAbcMonitor()
    for record in records:
        monitor.observe(record)
    return monitor.worst_ratio


def by_trace(stream):
    per = defaultdict(list)
    for trace_id, record in stream:
        per[trace_id].append(record)
    return per


class TestExactness:
    @pytest.mark.parametrize(
        "seed,batch_size,n_shards,budget",
        [
            (0, 1, 1, None),
            (1, 3, 4, None),
            (2, 8, 8, 300),
            (3, 32, 2, 150),
            (4, 64, 16, 500),
        ],
    )
    def test_fleet_matches_standalone_monitors(
        self, seed, batch_size, n_shards, budget
    ):
        """The acceptance property: per-trace worst ratios bit-identical
        to standalone monitors, across batch sizes, shard counts, and
        budgets tight enough to force eviction."""
        stream = list(
            concurrent_workload(
                random.Random(seed), n_traces=12, records_per_trace=(15, 45)
            )
        )
        fleet = MonitorFleet(
            n_shards=n_shards, batch_size=batch_size, event_budget=budget
        )
        fleet.ingest_many(stream)
        for trace_id, records in by_trace(stream).items():
            assert fleet.worst_ratio(trace_id) == standalone_ratio(records)
            assert not fleet.is_degraded(trace_id)

    def test_every_flush_boundary_is_exact(self):
        """Query after every single ingest: each query forces a flush,
        so every prefix becomes a batch boundary and must agree with the
        standalone monitor on that prefix."""
        records = profiled_trace_records(random.Random(5), "storm", 40)
        fleet = MonitorFleet(batch_size=7)
        reference = OnlineAbcMonitor()
        for record in records:
            fleet.ingest("t", record)
            assert fleet.worst_ratio("t") == reference.observe(record)

    def test_eviction_under_budget_stays_exact(self):
        """A budget tight enough to evict repeatedly must not change any
        ratio when the stream carries send metadata."""
        stream = list(
            concurrent_workload(
                random.Random(9),
                n_traces=10,
                records_per_trace=(30, 60),
                profile_weights={"burst": 0.7, "idler": 0.3},
            )
        )
        fleet = MonitorFleet(n_shards=4, batch_size=8, event_budget=60)
        fleet.ingest_many(stream)
        report = fleet.report()
        assert report.evictions > 0
        assert report.tombstoned_events > 0
        assert report.degraded_traces == 0
        for trace_id, records in by_trace(stream).items():
            assert fleet.worst_ratio(trace_id) == standalone_ratio(records)

    def test_batching_saves_oracle_calls(self):
        records = profiled_trace_records(random.Random(3), "storm", 120)
        fleet = MonitorFleet(batch_size=30)
        for record in records:
            fleet.ingest("t", record)
        fleet.flush()
        reference = OnlineAbcMonitor()
        for record in records:
            reference.observe(record)
        assert fleet.report().oracle_calls < reference.oracle_calls
        assert fleet.worst_ratio("t") == reference.worst_ratio


class TestBulkIngest:
    """ingest_many groups per shard and flushes once per shard batch."""

    @pytest.mark.parametrize("seed,chunk", [(0, 16), (1, 128), (2, 10_000)])
    def test_bulk_ingest_bit_identical_to_per_record(self, seed, chunk):
        """Grouping only coarsens flush boundaries, which never changes
        a reported ratio, a degradation flag, or the violating set."""
        stream = list(
            concurrent_workload(
                random.Random(seed), n_traces=10, records_per_trace=(15, 40)
            )
        )
        loop = MonitorFleet(n_shards=4, batch_size=8, event_budget=200)
        for trace_id, record in stream:
            loop.ingest(trace_id, record)
        bulk = MonitorFleet(n_shards=4, batch_size=8, event_budget=200)
        bulk.ingest_many(stream, chunk_size=chunk)
        for trace_id in by_trace(stream):
            assert bulk.worst_ratio(trace_id) == loop.worst_ratio(trace_id)
            assert bulk.is_degraded(trace_id) == loop.is_degraded(trace_id)
        assert bulk.report().records == len(stream)

    def test_bulk_ingest_coalesces_flushes_and_oracle_work(self):
        """The point of the grouping: a bulk stream hammering one trace
        flushes once per shard batch instead of once per watermark
        crossing -- visibly fewer flushes (and no more oracle calls)
        at identical ratios."""
        records = profiled_trace_records(random.Random(3), "storm", 200)
        stream = [("t", record) for record in records]
        loop = MonitorFleet(batch_size=8)
        for trace_id, record in stream:
            loop.ingest(trace_id, record)
        loop.flush()
        bulk = MonitorFleet(batch_size=8)
        bulk.ingest_many(stream, chunk_size=64)
        bulk.flush()
        loop_report = loop.report()
        bulk_report = bulk.report()
        assert bulk_report.flushes < loop_report.flushes
        assert bulk_report.oracle_calls <= loop_report.oracle_calls
        assert bulk.worst_ratio("t") == loop.worst_ratio("t")

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            MonitorFleet().ingest_many([], chunk_size=0)

    def test_bulk_ingest_touch_times_are_stream_ticks(self):
        """Regression (review finding): shard batches are processed
        sequentially, so stamping the *group clock* as the touch time
        inflated later shards' records and skewed idle ages.  A
        record's touch time must be its stream position."""
        stream = list(
            concurrent_workload(
                random.Random(7), n_traces=8, records_per_trace=(5, 15)
            )
        )
        fleet = MonitorFleet(n_shards=4, batch_size=8)
        fleet.ingest_many(stream, chunk_size=10_000)  # one chunk
        last_position = {}
        for position, (trace_id, _record) in enumerate(stream, start=1):
            last_position[trace_id] = position
        for shard in fleet._shards:
            for trace_id, state in shard.traces.items():
                assert state.last_touch == last_position[trace_id]

    def test_bulk_ingest_auto_retire_is_deterministic(self):
        """Auto-retirement under bulk ingest is batch-granular (it may
        legitimately differ from the per-record loop on borderline
        traces) but must be a pure function of the stream."""
        stream = list(
            concurrent_workload(
                random.Random(7), n_traces=12, records_per_trace=(10, 30)
            )
        )

        def run():
            fleet = MonitorFleet(
                n_shards=4, batch_size=8, auto_retire_after=5
            )
            fleet.ingest_many(stream, chunk_size=64)
            report = fleet.report()
            flags = {
                trace_id: fleet.is_degraded(trace_id)
                for trace_id in by_trace(stream)
            }
            return report.auto_retired, report.degraded_traces, flags

        assert run() == run()


class TestMemoryBudget:
    def test_peak_watermark_bounded_on_settleable_workload(self):
        """Bursts and idlers settle between clusters, so the eviction
        policy must keep the post-enforcement watermark within budget
        with no overruns."""
        stream = list(
            concurrent_workload(
                random.Random(11),
                n_traces=12,
                records_per_trace=(30, 60),
                profile_weights={"burst": 0.6, "idler": 0.4},
            )
        )
        budget = 150
        fleet = MonitorFleet(n_shards=4, batch_size=8, event_budget=budget)
        fleet.ingest_many(stream)
        report = fleet.report()
        assert report.budget_overruns == 0
        assert report.peak_live_events <= budget
        assert report.live_events <= budget

    def test_hot_storms_fall_back_to_summary_compaction(self):
        """A hot ping-pong storm links history to the frontier: no
        prefix is exactly removable, so eviction falls back to summary
        compaction -- the budget holds (no overrun, unlike the
        pre-compaction fleet, which could only count overruns here)
        and the reported ratio stays exact."""
        records = profiled_trace_records(random.Random(2), "storm", 80)
        fleet = MonitorFleet(batch_size=10, event_budget=20)
        for record in records:
            fleet.ingest("t", record)
        fleet.flush()
        report = fleet.report()
        assert report.summary_compactions > 0
        assert report.budget_overruns == 0
        assert report.peak_live_events <= 20
        assert not fleet.is_degraded("t")
        assert fleet.worst_ratio("t") == standalone_ratio(records)

    def test_close_frees_the_digraph(self):
        stream = list(
            concurrent_workload(
                random.Random(4), n_traces=6, records_per_trace=(20, 40)
            )
        )
        fleet = MonitorFleet(batch_size=16)
        fleet.ingest_many(stream)
        fleet.flush()
        assert fleet.live_events > 0
        for trace_id in by_trace(stream):
            fleet.close(trace_id)
        assert fleet.live_events == 0
        assert fleet.open_traces == 0
        assert fleet.retired_traces == len(by_trace(stream))


class TestDegradation:
    def test_metadata_free_streams_flag_instead_of_crashing(self):
        """streaming_records carries no sends metadata, so a tight
        budget can evict past an in-flight send.  The late edge must be
        skipped and flagged, never raise -- and a non-degraded trace
        must still be exact, a degraded one a sound lower bound."""
        streams = {
            f"t{i}": list(
                streaming_records(
                    random.Random(50 + i), n_processes=3, n_records=40
                )
            )
            for i in range(6)
        }
        fleet = MonitorFleet(n_shards=2, batch_size=4, event_budget=30)
        rng = random.Random(0)
        iters = {tid: iter(recs) for tid, recs in streams.items()}
        alive = sorted(iters)
        while alive:
            tid = rng.choice(alive)
            try:
                fleet.ingest(tid, next(iters[tid]))
            except StopIteration:
                alive.remove(tid)
        degraded = 0
        for tid, records in streams.items():
            exact = standalone_ratio(records)
            got = fleet.worst_ratio(tid)
            if fleet.is_degraded(tid):
                degraded += 1
                assert got is None or exact is None or got <= exact
            else:
                assert got == exact
        assert fleet.report().degraded_traces == degraded


class TestLifecycle:
    def test_close_summary_and_retired_queries(self):
        records = profiled_trace_records(random.Random(8), "burst", 30)
        fleet = MonitorFleet(batch_size=8)
        for record in records:
            fleet.ingest("t", record)
        summary = fleet.close("t")
        assert isinstance(summary, TraceSummary)
        assert summary.worst_ratio == standalone_ratio(records)
        assert summary.n_records == len(records)
        assert not summary.degraded
        # Retired traces still answer queries, from the summary.
        assert fleet.worst_ratio("t") == summary.worst_ratio
        assert not fleet.is_degraded("t")
        # Closing again returns the summary unchanged.
        assert fleet.close("t") == summary
        with pytest.raises(KeyError):
            fleet.close("never-seen")
        with pytest.raises(KeyError):
            fleet.worst_ratio("never-seen")

    def test_reopening_a_retired_trace_degrades(self):
        records = profiled_trace_records(random.Random(8), "storm", 40)
        fleet = MonitorFleet(batch_size=8)
        for record in records[:20]:
            fleet.ingest("t", record)
        first = fleet.close("t")
        for record in records[20:]:
            fleet.ingest("t", record)
        assert fleet.is_degraded("t")
        merged = fleet.close("t")
        assert merged.degraded
        assert merged.n_records == len(records)
        # The merged ratio keeps at least the historical maximum.
        assert first.worst_ratio is None or (
            merged.worst_ratio is not None
            and merged.worst_ratio >= first.worst_ratio
        )

    def test_on_violation_may_close_the_trace_reentrantly(self):
        """Regression: the natural 'retire violating traces' deployment
        -- on_violation calling fleet.close() -- must not crash the
        flush that detected the violation, and the summary must count
        the full triggering batch."""
        storm = profiled_trace_records(random.Random(6), "storm", 60)
        closed = []
        fleet = MonitorFleet(
            xi=Fraction(2),
            batch_size=1000,  # everything pends until the explicit flush
            on_violation=lambda tid, w: closed.append(fleet.close(tid)),
        )
        for record in storm:
            fleet.ingest("hot", record)
        fleet.flush()  # fires the violation mid-flush -> reentrant close
        assert [s.trace_id for s in closed] == ["hot"]
        assert closed[0].n_records == len(storm)
        assert closed[0].worst_ratio == standalone_ratio(storm)
        assert fleet.open_traces == 0 and fleet.retired_traces == 1
        assert fleet.live_events == 0
        assert fleet.violating_traces() == ("hot",)
        # The ingest-triggered variant (watermark flush) as well.
        closed.clear()
        fleet2 = MonitorFleet(
            xi=Fraction(2),
            batch_size=5,
            on_violation=lambda tid, w: closed.append(fleet2.close(tid)),
        )
        for record in storm:
            if not closed:
                fleet2.ingest("hot", record)
        assert len(closed) == 1
        assert closed[0].n_records % 5 == 0  # full batches, none dropped
        assert fleet2.open_traces == 0

    def test_reopened_trace_counts_once_in_aggregates(self):
        """Regression: a trace open again after retirement must appear
        exactly once in every aggregate, with its retired maximum
        merged in -- not once open and once retired."""
        records = profiled_trace_records(random.Random(8), "storm", 40)
        fleet = MonitorFleet(batch_size=8)
        for record in records[:30]:
            fleet.ingest("t", record)
        closed = fleet.close("t")
        for record in records[30:]:
            fleet.ingest("t", record)
        assert len(fleet) == 1
        assert fleet.open_traces == 1 and fleet.retired_traces == 0
        assert sum(fleet.worst_ratio_histogram().values()) == 1
        top = fleet.top_k_riskiest(10)
        assert [tid for tid, _r in top] == ["t"]
        # The reported ratio keeps the pre-reopen historical maximum.
        assert closed.worst_ratio is not None
        assert fleet.worst_ratio("t") >= closed.worst_ratio
        assert top[0][1] == fleet.worst_ratio("t")
        report = fleet.report()
        assert report.open_traces == 1 and report.retired_traces == 0
        assert report.degraded_traces == 1  # reopened => degraded, once

    def test_violation_callbacks_and_listing(self):
        storm = profiled_trace_records(random.Random(6), "storm", 60)
        # Seed chosen so the idler's worst ratio stays below Xi = 2.
        idler = profiled_trace_records(random.Random(7), "idler", 20)
        assert standalone_ratio(storm) >= Fraction(2)
        assert standalone_ratio(idler) < Fraction(2)
        hits = []
        fleet = MonitorFleet(
            xi=Fraction(2),
            batch_size=16,
            on_violation=lambda tid, witness: hits.append((tid, witness)),
        )
        for record in storm:
            fleet.ingest("hot", record)
        for record in idler:
            fleet.ingest("cold", record)
        assert fleet.violating_traces() == ("hot",)
        assert len(hits) == 1
        tid, witness = hits[0]
        assert tid == "hot"
        assert witness.relevant and witness.ratio >= Fraction(2)
        assert "cold" not in fleet.violating_traces()


class TestAggregates:
    @pytest.fixture(scope="class")
    def populated(self):
        stream = list(
            concurrent_workload(
                random.Random(13), n_traces=15, records_per_trace=(15, 40)
            )
        )
        fleet = MonitorFleet(n_shards=4, batch_size=16)
        fleet.ingest_many(stream)
        return fleet, by_trace(stream)

    def test_histogram_covers_every_trace(self, populated):
        fleet, per = populated
        histogram = fleet.worst_ratio_histogram()
        assert sum(histogram.values()) == len(per)
        for records in per.values():
            assert standalone_ratio(records) in histogram

    def test_top_k_riskiest_is_sorted_and_bounded(self, populated):
        fleet, per = populated
        top = fleet.top_k_riskiest(5)
        assert len(top) == 5
        ratios = [r if r is not None else Fraction(0) for _t, r in top]
        assert ratios == sorted(ratios, reverse=True)
        # The head really is the population maximum.
        best = max(
            (standalone_ratio(recs) for recs in per.values()),
            key=lambda r: r if r is not None else Fraction(0),
        )
        assert top[0][1] == best
        assert fleet.top_k_riskiest(0) == []
        assert len(fleet.top_k_riskiest(1000)) == len(per)

    def test_report_totals_match_shard_breakdown(self, populated):
        fleet, per = populated
        report = fleet.report()
        assert report.records == sum(s.records for s in report.shards)
        assert report.flushes == sum(s.flushes for s in report.shards)
        assert report.oracle_calls == sum(
            s.oracle_calls for s in report.shards
        )
        assert report.live_events == sum(
            s.live_events for s in report.shards
        )
        assert report.open_traces == len(per)
        assert report.records == sum(len(r) for r in per.values())
        assert len(fleet) == len(per)

    def test_shard_routing_is_stable_and_spread(self, populated):
        fleet, per = populated
        assert fleet.n_shards == 4
        for trace_id in per:
            assert fleet.shard_of(trace_id) == fleet.shard_of(trace_id)
            assert 0 <= fleet.shard_of(trace_id) < 4
        used = {fleet.shard_of(trace_id) for trace_id in per}
        assert len(used) > 1


class TestConstruction:
    def test_argument_validation(self):
        with pytest.raises(ValueError):
            MonitorFleet(n_shards=0)
        with pytest.raises(ValueError):
            MonitorFleet(batch_size=0)
        with pytest.raises(ValueError):
            MonitorFleet(event_budget=0)

    def test_runtime_reconfiguration(self):
        """batch_size/event_budget/auto_retire_after/xi stay writable
        at runtime (they were plain attributes before the engine
        extraction); a tightened budget takes effect immediately."""
        records = profiled_trace_records(random.Random(6), "burst", 120)
        fleet = MonitorFleet(batch_size=16)
        for record in records:
            fleet.ingest("t", record)
        fleet.flush()
        assert fleet.event_budget is None and fleet.live_events > 40
        fleet.event_budget = 40  # tighten mid-stream: enforces now
        assert fleet.event_budget == 40
        assert fleet.live_events <= 40
        assert fleet.worst_ratio("t") == standalone_ratio(records)
        fleet.batch_size = 4
        assert fleet.batch_size == 4
        fleet.auto_retire_after = 1000
        assert fleet.auto_retire_after == 1000
        fleet.xi = Fraction(2)
        assert fleet.xi == Fraction(2)
        with pytest.raises(ValueError):
            fleet.event_budget = 0
        with pytest.raises(ValueError):
            fleet.batch_size = 0
        with pytest.raises(ValueError):
            fleet.auto_retire_after = 0

    def test_monitor_factory_customization(self):
        seen = []
        fleet = MonitorFleet(
            monitor_factory=lambda tid: (seen.append(tid), OnlineAbcMonitor())[1]
        )
        records = profiled_trace_records(random.Random(1), "burst", 10)
        for record in records:
            fleet.ingest("custom", record)
        assert seen == ["custom"]
        assert fleet.worst_ratio("custom") == standalone_ratio(records)


class TestSummaryCompaction:
    """Budget eviction's summary fallback on chain-shaped workloads."""

    def test_relay_chains_bounded_and_bit_identical(self):
        """The acceptance scenario: relay-chain traces -- where exact
        eviction can reclaim nothing -- stay within the budget with
        ratios bit-identical to unbudgeted standalone monitors."""
        rng = random.Random(12)
        traces = {
            f"relay-{k}": relay_chain_workload(rng, 150) for k in range(6)
        }
        budget = 160
        fleet = MonitorFleet(batch_size=16, event_budget=budget)
        streams = {tid: iter(records) for tid, records in traces.items()}
        alive = dict(streams)
        while alive:
            for tid in list(alive):
                record = next(alive[tid], None)
                if record is None:
                    del alive[tid]
                else:
                    fleet.ingest(tid, record)
        fleet.flush()
        report = fleet.report()
        assert report.summary_compactions > 0
        assert report.budget_overruns == 0
        assert report.peak_live_events <= budget
        assert report.degraded_traces == 0
        for tid, records in traces.items():
            assert fleet.worst_ratio(tid) == standalone_ratio(records)
            assert standalone_ratio(records) is not None  # nontrivial

    def test_summary_edges_reported(self):
        records = relay_chain_workload(random.Random(3), 120)
        fleet = MonitorFleet(batch_size=8, event_budget=24)
        for record in records:
            fleet.ingest("t", record)
        fleet.flush()
        report = fleet.report()
        assert report.summary_edges > 0
        assert report.summary_edges == sum(
            s.summary_edges for s in report.shards
        )
        assert report.summary_compactions == sum(
            s.summary_compactions for s in report.shards
        )

    def test_eviction_prefers_exact_removal(self):
        """Burst traces settle exactly; the summary fallback must not
        fire where the no-crossing criterion already works."""
        records = profiled_trace_records(random.Random(6), "burst", 120)
        fleet = MonitorFleet(batch_size=16, event_budget=30)
        for record in records:
            fleet.ingest("t", record)
        fleet.flush()
        report = fleet.report()
        assert report.evictions > 0
        assert report.summary_compactions == 0
        assert fleet.worst_ratio("t") == standalone_ratio(records)


class TestAutoRetirement:
    def test_idle_traces_auto_retire(self):
        fleet = MonitorFleet(batch_size=4, auto_retire_after=20)
        idle = list(streaming_records(random.Random(0), 2, 12))
        busy = list(streaming_records(random.Random(1), 2, 60))
        for record in idle:
            fleet.ingest("idle", record)
        for record in busy:
            fleet.ingest("busy", record)
        assert fleet.retired_traces == 1
        assert fleet.open_traces == 1
        report = fleet.report()
        assert report.auto_retired == 1
        # The summary is the reopen-safe close() path: exact ratio kept.
        assert fleet.worst_ratio("idle") == standalone_ratio(idle)
        assert not fleet.is_degraded("idle")

    def test_fresh_traces_survive(self):
        stream = list(
            concurrent_workload(
                random.Random(7), n_traces=5, records_per_trace=(10, 20)
            )
        )
        # An age above the whole stream length: nothing can go stale.
        fleet = MonitorFleet(batch_size=4, auto_retire_after=len(stream) + 1)
        fleet.ingest_many(stream)
        assert fleet.report().auto_retired == 0
        assert fleet.open_traces == len(by_trace(stream))

    def test_auto_retired_trace_reopens_degraded(self):
        fleet = MonitorFleet(batch_size=4, auto_retire_after=10)
        records = list(streaming_records(random.Random(2), 2, 30))
        other = list(streaming_records(random.Random(3), 2, 12))
        for record in records[:10]:
            fleet.ingest("t", record)
        for record in other:  # age "t" out with unrelated traffic
            fleet.ingest("other", record)
        assert fleet.report().auto_retired >= 1
        for record in records[10:]:
            fleet.ingest("t", record)
        fleet.flush()
        assert fleet.is_degraded("t")
        ratio = fleet.worst_ratio("t")
        standalone = standalone_ratio(records)
        assert ratio is None or standalone is None or ratio <= standalone

    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorFleet(auto_retire_after=0)


class TestEvictMarkerReset:
    def test_absorbing_records_clears_futility_memos(self):
        """A futile eviction pass memoizes the live-event count; any
        later absorption must clear the memo -- comparing counts alone
        can collide after absorb-then-evict elsewhere (the reopen/skip
        bug this PR's sweep fixed)."""
        records = profiled_trace_records(random.Random(2), "storm", 40)
        fleet = MonitorFleet(batch_size=10, event_budget=2000)
        for record in records[:20]:
            fleet.ingest("t", record)
        fleet.flush()
        shard = fleet._shards[fleet.shard_of("t")]
        state = shard.traces["t"]
        state.evict_marker = state.monitor.n_events  # simulate futility
        fleet._futile_at = fleet.live_events
        for record in records[20:]:
            fleet.ingest("t", record)
        fleet.flush()
        assert state.evict_marker is None
        assert fleet._futile_at is None


class TestMixedShapeBudget:
    def test_partial_exact_removal_still_triggers_summary_fallback(self):
        """A trace mixing settleable wake-up noise with a chain-shaped
        core always yields a small nonzero exact eviction; the summary
        fallback must fire whenever that leaves the fleet over budget,
        or the chain core grows unboundedly (review finding on this
        PR: peak 402 vs budget 80 before the fix)."""
        from repro.core.events import Event
        from repro.sim.trace import ReceiveRecord

        chain = relay_chain_workload(random.Random(0), 300)
        next_index = {3: 0, 4: 0}
        mixed = []
        now = 0.0
        for i, record in enumerate(chain):
            mixed.append(record)
            if i % 2 == 0:
                process = 3 + (i // 2) % 2
                now = record.time
                mixed.append(
                    ReceiveRecord(
                        event=Event(process, next_index[process]),
                        time=now, sender=None, send_event=None,
                        send_time=None, payload=None, processed=True,
                        sends=(),
                    )
                )
                next_index[process] += 1
        budget = 80
        fleet = MonitorFleet(batch_size=16, event_budget=budget)
        for record in mixed:
            fleet.ingest("mixed", record)
        fleet.flush()
        report = fleet.report()
        assert report.summary_compactions > 0
        assert report.budget_overruns == 0
        assert report.peak_live_events <= budget
        assert not fleet.is_degraded("mixed")
        assert fleet.worst_ratio("mixed") == standalone_ratio(mixed)


class TestSnapshotRestore:
    def test_mid_stream_snapshot_restores_bit_identically(self):
        """Snapshot a live fleet mid-stream (pending buffers included),
        restore, feed both the rest of the stream: every per-trace
        ratio, degraded flag, violating set and the full report must
        match."""
        stream = list(
            concurrent_workload(
                random.Random(44), n_traces=14, records_per_trace=(20, 50)
            )
        )
        cut = (len(stream) * 2) // 3
        original = MonitorFleet(
            xi=Fraction(3, 2), n_shards=6, batch_size=8, event_budget=600
        )
        for trace_id, record in stream[:cut]:
            original.ingest(trace_id, record)
        restored = MonitorFleet.restore(original.snapshot())
        assert restored.xi == original.xi
        assert restored.n_shards == original.n_shards
        assert restored.event_budget == original.event_budget
        for trace_id, record in stream[cut:]:
            original.ingest(trace_id, record)
            restored.ingest(trace_id, record)
        for trace_id in sorted({tid for tid, _ in stream}):
            assert restored.worst_ratio(trace_id) == original.worst_ratio(
                trace_id
            ), trace_id
            assert restored.is_degraded(trace_id) == original.is_degraded(
                trace_id
            )
        assert restored.violating_traces() == original.violating_traces()
        assert restored.report() == original.report()

    def test_snapshot_file_round_trip(self, tmp_path):
        stream = list(
            concurrent_workload(
                random.Random(9), n_traces=8, records_per_trace=(15, 30)
            )
        )
        fleet = MonitorFleet(xi=Fraction(2), n_shards=4, batch_size=8)
        fleet.ingest_many(stream)
        path = tmp_path / "fleet.snap"
        fleet.snapshot(path)
        restored = MonitorFleet.restore(path)
        for trace_id in sorted({tid for tid, _ in stream}):
            assert restored.worst_ratio(trace_id) == fleet.worst_ratio(
                trace_id
            )
        assert restored.report() == fleet.report()

    def test_restore_reattaches_callbacks(self):
        stream = list(
            concurrent_workload(
                random.Random(8),
                n_traces=6,
                records_per_trace=(40, 60),
                profile_weights={"storm": 1.0},
            )
        )
        cut = len(stream) // 4
        fleet = MonitorFleet(xi=Fraction(2), n_shards=4, batch_size=8)
        for trace_id, record in stream[:cut]:
            fleet.ingest(trace_id, record)
        already = set(fleet.violating_traces())
        hits = []
        restored = MonitorFleet.restore(
            fleet.snapshot(), on_violation=lambda tid, w: hits.append(tid)
        )
        for trace_id, record in stream[cut:]:
            restored.ingest(trace_id, record)
        # The once-only guard survives the round trip: pre-cut violators
        # never re-fire, and every fresh violator fires exactly once.
        assert set(hits) == set(restored.violating_traces()) - already
        assert hits, "some storm traces must first violate after the cut"

    def test_restore_rejects_foreign_frames(self, tmp_path):
        with pytest.raises(ValueError):
            MonitorFleet.restore(("not-a-snapshot", 1, (), ()))
        with pytest.raises(ValueError):
            MonitorFleet.restore((1, 2))
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            MonitorFleet.restore(empty)


class TestFleetClose:
    def test_context_manager_closes_and_blocks_ingest(self):
        records = profiled_trace_records(random.Random(3), "burst", 20)
        with MonitorFleet(xi=Fraction(2), n_shards=4, batch_size=8) as fleet:
            for record in records:
                fleet.ingest("t", record)
        fleet.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            fleet.ingest("t", records[0])
        with pytest.raises(RuntimeError, match="closed"):
            fleet.ingest_many([("t", records[0])])
        # Queries keep answering from the final (flushed) state.
        assert fleet.worst_ratio("t") == standalone_ratio(records)
        assert fleet.report().records == len(records)
        # Per-trace close still retires as usual.
        assert fleet.close("t").worst_ratio == standalone_ratio(records)

    def test_monitor_specs_on_the_serial_fleet(self):
        from repro.runtime import MonitorSpec

        records = profiled_trace_records(random.Random(5), "storm", 80)
        fleet = MonitorFleet(
            xi=Fraction(10),  # loose default: no violation
            n_shards=4,
            batch_size=8,
            monitor_specs={"hot": MonitorSpec(xi=Fraction(3, 2))},
        )
        for record in records:
            fleet.ingest("hot", record)
            fleet.ingest("cold", record)
        assert fleet.violating_traces() == ("hot",)
        with pytest.raises(TypeError):
            MonitorFleet(monitor_specs=42)

"""End-to-end tests for Algorithm 1 (Theorems 1-4, Lemma 4).

Runs the Byzantine clock-synchronization algorithm on the simulator under
Theta-band networks (ABC-admissible by Theorem 6) with crash and
Byzantine adversaries, then checks the paper's guarantees on the recorded
execution.
"""

from fractions import Fraction

import pytest

from repro.algorithms.clock_sync import (
    ByzantineTickEquivocator,
    ByzantineTickSpammer,
    ClockSyncProcess,
    Tick,
)
from repro.analysis.properties import (
    ClockAnalysis,
    verify_bounded_progress,
    verify_causal_cone,
    verify_cut_synchrony,
    verify_progress,
    verify_realtime_precision,
)
from repro.core.synchrony import check_abc, worst_relevant_ratio
from repro.scenarios.generators import clock_sync_run
from repro.sim.faults import CrashAfter, SilentProcess
from repro.sim.trace import build_execution_graph

XI = Fraction(2)
THETA = 1.5  # < XI, so runs are ABC-admissible for XI by Theorem 6


def analyse(trace, processes) -> ClockAnalysis:
    return ClockAnalysis.from_run(trace, processes)


@pytest.fixture(scope="module")
def failure_free_run():
    return clock_sync_run(n=4, f=1, theta=THETA, max_tick=12, seed=5)


@pytest.fixture(scope="module")
def crash_run():
    crashed = CrashAfter(ClockSyncProcess(1, max_tick=12), steps=3)
    return clock_sync_run(
        n=4, f=1, theta=THETA, max_tick=12, seed=6, faulty_procs=[crashed]
    )


@pytest.fixture(scope="module")
def byzantine_run():
    spammer = ByzantineTickSpammer(spread=15, burst=2, seed=9)
    return clock_sync_run(
        n=4, f=1, theta=THETA, max_tick=12, seed=7, faulty_procs=[spammer]
    )


@pytest.fixture(scope="module")
def equivocator_run():
    eq = ByzantineTickEquivocator(low=0, high=9)
    return clock_sync_run(
        n=7, f=2, theta=THETA, max_tick=10, seed=8, faulty_procs=[eq]
    )


ALL_RUNS = ["failure_free_run", "crash_run", "byzantine_run", "equivocator_run"]


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_progress_theorem1(run_name, request):
    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    assert verify_progress(analysis, target=10)


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_cut_synchrony_theorem2(run_name, request):
    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    report = verify_cut_synchrony(analysis, XI, extra_samples=30)
    assert report.holds, f"spread {report.worst_spread} > {report.bound}"


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_realtime_precision_theorem3(run_name, request):
    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    report = verify_realtime_precision(analysis, XI)
    assert report.holds, f"spread {report.worst_spread} > {report.bound}"


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_bounded_progress_theorem4(run_name, request):
    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    distinguished = {
        pid: procs[pid].distinguished_steps
        for pid in analysis.correct
    }
    report = verify_bounded_progress(analysis, XI, distinguished)
    assert report.holds


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_causal_cone_lemma4(run_name, request):
    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    assert verify_causal_cone(analysis, XI)


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_causal_chain_length_lemma3(run_name, request):
    from repro.analysis import verify_causal_chain_length

    trace, procs = request.getfixturevalue(run_name)
    analysis = analyse(trace, procs)
    assert verify_causal_chain_length(analysis)


@pytest.mark.parametrize("run_name", ALL_RUNS)
def test_execution_is_abc_admissible(run_name, request):
    """Theorem 6 in action: Theta-band runs are ABC-admissible."""
    trace, _procs = request.getfixturevalue(run_name)
    graph = build_execution_graph(trace)
    assert check_abc(graph, XI).admissible


class TestLocalInvariants:
    def test_clocks_monotone(self, failure_free_run):
        _trace, procs = failure_free_run
        for p in procs:
            history = p.clock_after_step
            assert all(a <= b for a, b in zip(history, history[1:]))

    def test_each_tick_broadcast_once(self, failure_free_run):
        trace, _procs = failure_free_run
        sent: dict[tuple[int, int, int], int] = {}
        for record in trace.records:
            for send in record.sends:
                payload = send.payload
                if isinstance(payload, Tick):
                    key = (record.event.process, send.dest, payload.value)
                    sent[key] = sent.get(key, 0) + 1
        assert all(count == 1 for count in sent.values())

    def test_clock_matches_distinguished_count(self, failure_free_run):
        # Clock value k means the process broadcast ticks 0..k, i.e. it
        # performed at least k+1 distinguished steps... but catch-up can
        # merge several increments into one step, so distinguished steps
        # are at most clock+1 and at least 1.
        _trace, procs = failure_free_run
        for p in procs:
            assert 1 <= len(p.distinguished_steps) <= p.k + 1

    def test_byzantine_messages_dropped_from_graph(self, byzantine_run):
        trace, _procs = byzantine_run
        graph = build_execution_graph(trace)
        faulty_pid = next(iter(trace.faulty))
        assert all(m.src.process != faulty_pid for m in graph.messages)


class TestSparseTopologyRejected:
    def test_broadcast_requires_links(self):
        from repro.sim.engine import Simulator
        from repro.sim.network import Network, Topology
        from repro.sim.delays import FixedDelay

        procs = [ClockSyncProcess(1, max_tick=3) for _ in range(4)]
        net = Network(Topology.ring(4), FixedDelay(1.0))
        sim = Simulator(procs, net, seed=0)
        # Algorithm 1 assumes a fully connected network; on a ring the
        # broadcast degenerates to neighbors and clocks still advance
        # only if enough ticks arrive -- with n=4, f=1 and only 3
        # reachable processes (incl. self), n-f=3 is still satisfiable.
        trace = sim.run()
        assert len(trace.records) > 4

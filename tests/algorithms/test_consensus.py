"""Tests for Byzantine consensus (phase-king and EIG).

Both algorithms are exercised on the native synchronous executor and on
the ABC lock-step simulation; agreement and validity must hold under the
Byzantine round behaviours, and the two executors must decide identically
in deterministic settings.
"""

import itertools
from fractions import Fraction

import pytest

from repro.algorithms.consensus import (
    ConflictingLiar,
    ExponentialInformationGathering,
    PhaseKing,
    RandomLiar,
    eig_rounds,
    phase_king_rounds,
)
from repro.algorithms.lockstep import LockstepProcess, run_synchronous
from repro.sim.delays import ThetaBandDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.network import Network, Topology


def make_phase_king_panel(n, f, initials, liars=()):
    apps = []
    liar_map = dict(liars)
    for pid in range(n):
        if pid in liar_map:
            apps.append(liar_map[pid])
        else:
            apps.append(PhaseKing(pid, n, f, initials[pid]))
    return apps


def correct_decisions(apps, liar_pids):
    return [
        app.decision for pid, app in enumerate(apps) if pid not in liar_pids
    ]


class TestPhaseKingSynchronous:
    N, F = 5, 1

    @pytest.mark.parametrize(
        "initials", list(itertools.product([0, 1], repeat=5))[::3]
    )
    def test_agreement_and_validity_failure_free(self, initials):
        apps = make_phase_king_panel(self.N, self.F, initials)
        run_synchronous(apps, phase_king_rounds(self.F))
        decisions = [a.decision for a in apps]
        assert len(set(decisions)) == 1
        if len(set(initials)) == 1:
            assert decisions[0] == initials[0]  # validity

    @pytest.mark.parametrize("liar_pid", [0, 2, 4])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_agreement_with_random_liar(self, liar_pid, seed):
        initials = [1, 0, 1, 0, 1]
        liar = RandomLiar(seed)
        apps = make_phase_king_panel(
            self.N, self.F, initials, liars=[(liar_pid, liar)]
        )
        run_synchronous(apps, phase_king_rounds(self.F))
        decisions = correct_decisions(apps, {liar_pid})
        assert len(set(decisions)) == 1

    @pytest.mark.parametrize("liar_pid", [1, 3])
    def test_agreement_with_conflicting_liar(self, liar_pid):
        initials = [0, 1, 0, 1, 0]
        apps = make_phase_king_panel(
            self.N, self.F, initials, liars=[(liar_pid, ConflictingLiar())]
        )
        run_synchronous(apps, phase_king_rounds(self.F))
        decisions = correct_decisions(apps, {liar_pid})
        assert len(set(decisions)) == 1

    def test_validity_with_liar(self):
        # All correct processes start with 1: must decide 1 despite liar.
        initials = [1, 1, 1, 1, 1]
        apps = make_phase_king_panel(
            self.N, self.F, initials, liars=[(4, ConflictingLiar())]
        )
        run_synchronous(apps, phase_king_rounds(self.F))
        assert correct_decisions(apps, {4}) == [1, 1, 1, 1]

    def test_needs_n_over_4f(self):
        with pytest.raises(ValueError):
            PhaseKing(0, 4, 1, 0)


class TestEIGSynchronous:
    N, F = 4, 1

    @pytest.mark.parametrize(
        "initials", list(itertools.product([0, 1], repeat=4))[::2]
    )
    def test_agreement_and_validity(self, initials):
        apps = [
            ExponentialInformationGathering(i, self.N, self.F, initials[i])
            for i in range(self.N)
        ]
        run_synchronous(apps, eig_rounds(self.F) + 1)
        decisions = [a.decision for a in apps]
        assert len(set(decisions)) == 1
        if len(set(initials)) == 1:
            assert decisions[0] == initials[0]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agreement_with_liar_at_optimal_resilience(self, seed):
        # n = 4 = 3f + 1: beyond phase-king's reach, EIG handles it.
        initials = [1, 0, 1, 0]
        apps = [
            ExponentialInformationGathering(i, self.N, self.F, initials[i])
            for i in range(3)
        ] + [RandomLiar(seed)]
        run_synchronous(apps, eig_rounds(self.F) + 1)
        decisions = [a.decision for a in apps[:3]]
        assert len(set(decisions)) == 1

    def test_needs_n_over_3f(self):
        with pytest.raises(ValueError):
            ExponentialInformationGathering(0, 3, 1, 0)


class TestConsensusOverLockstep:
    """The headline claim: synchronous consensus runs unchanged on the
    ABC lock-step simulation."""

    N, F, XI = 5, 1, Fraction(2)

    def run_abc(self, initials, seed=0, liar_pid=None):
        from repro.algorithms.lockstep import round_phases_for

        phases = round_phases_for(self.XI)
        rounds = phase_king_rounds(self.F) + 1
        apps = []
        procs = []
        faulty = set()
        for pid in range(self.N):
            if pid == liar_pid:
                app = ConflictingLiar()
                faulty.add(pid)
            else:
                app = PhaseKing(pid, self.N, self.F, initials[pid])
            apps.append(app)
            procs.append(LockstepProcess(self.F, phases, app, max_rounds=rounds))
        net = Network(
            Topology.fully_connected(self.N), ThetaBandDelay(1.0, 1.5)
        )
        sim = Simulator(procs, net, faulty=faulty, seed=seed)
        sim.run(SimulationLimits(max_events=200_000))
        return apps

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_failure_free_matches_synchronous_executor(self, seed):
        initials = [1, 0, 1, 1, 0]
        abc_apps = self.run_abc(initials, seed=seed)
        sync_apps = make_phase_king_panel(self.N, self.F, initials)
        run_synchronous(sync_apps, phase_king_rounds(self.F))
        assert [a.decision for a in abc_apps] == [
            a.decision for a in sync_apps
        ]

    @pytest.mark.parametrize("seed", [0, 1])
    def test_agreement_with_round_level_byzantine(self, seed):
        initials = [1, 0, 1, 0, 1]
        apps = self.run_abc(initials, seed=seed, liar_pid=2)
        decisions = [a.decision for i, a in enumerate(apps) if i != 2]
        assert None not in decisions
        assert len(set(decisions)) == 1

    def test_validity_over_lockstep(self):
        apps = self.run_abc([1, 1, 1, 1, 1], seed=3)
        assert [a.decision for a in apps] == [1] * 5

"""Tests for Algorithm 2: lock-step round simulation (Theorem 5)."""

from fractions import Fraction
from typing import Any, Mapping

import pytest

from repro.algorithms.clock_sync import ByzantineTickSpammer
from repro.algorithms.lockstep import (
    LockstepProcess,
    RoundPayload,
    round_phases_for,
    run_synchronous,
)
from repro.analysis.properties import verify_lockstep
from repro.sim.delays import ThetaBandDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import CrashAfter
from repro.sim.network import Network, Topology


class EchoRounds:
    """A trivial round algorithm: emits (pid, round); logs what it saw."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.log: dict[int, dict[int, Any]] = {}

    def initial_message(self) -> Any:
        return (self.pid, 0)

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        self.log[round_index] = dict(received)
        return (self.pid, round_index)


def run_lockstep(n=4, f=1, xi=Fraction(2), rounds=4, seed=0, faulty=None):
    phases = round_phases_for(xi)
    apps = [EchoRounds(i) for i in range(n)]
    procs: list = [
        LockstepProcess(f, phases, apps[i], max_rounds=rounds)
        for i in range(n)
    ]
    faulty_ids = set()
    if faulty is not None:
        for pid, proc in faulty.items():
            procs[pid] = proc
            faulty_ids.add(pid)
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    sim = Simulator(procs, net, faulty=faulty_ids, seed=seed)
    trace = sim.run(SimulationLimits(max_events=100_000))
    return trace, procs, apps


class TestRoundPhases:
    def test_round_phases_for(self):
        assert round_phases_for(2) == 4
        assert round_phases_for(Fraction(3, 2)) == 3
        assert round_phases_for(Fraction(5, 2)) == 5

    def test_xi_validation(self):
        with pytest.raises(ValueError):
            round_phases_for(1)


class TestTheorem5:
    def test_lockstep_holds_failure_free(self):
        trace, procs, _apps = run_lockstep()
        holds, checked = verify_lockstep(trace, procs)
        assert holds and checked >= 4 * 3  # 4 processes, >= 3 rounds

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_lockstep_holds_across_seeds(self, seed):
        trace, procs, _apps = run_lockstep(seed=seed)
        holds, _checked = verify_lockstep(trace, procs)
        assert holds

    def test_lockstep_with_byzantine_ticker(self):
        spam = ByzantineTickSpammer(spread=30, burst=2, seed=1)
        trace, procs, _apps = run_lockstep(faulty={3: spam})
        holds, checked = verify_lockstep(trace, procs)
        assert holds and checked > 0

    def test_lockstep_with_crash(self):
        crashed = CrashAfter(
            LockstepProcess(1, 4, EchoRounds(3), max_rounds=4), steps=2
        )
        trace, procs, _apps = run_lockstep(faulty={3: crashed})
        holds, _ = verify_lockstep(trace, procs)
        assert holds

    def test_all_correct_processes_complete_rounds(self):
        _trace, procs, _apps = run_lockstep(rounds=4)
        assert all(p.r >= 3 for p in procs)

    def test_round_inputs_carry_correct_payloads(self):
        _trace, _procs, apps = run_lockstep()
        for app in apps:
            for r, received in app.log.items():
                for sender, payload in received.items():
                    assert payload == (sender, r - 1)


class TestPiggybackValidation:
    def test_malformed_piggyback_ignored(self):
        proc = LockstepProcess(1, 4, EchoRounds(0), max_rounds=3)
        proc.attach(0, 4)
        from repro.algorithms.clock_sync import Tick

        # Payload claims round 2 but rides on tick 4 (= round 1 boundary).
        bad = Tick(4, RoundPayload(2, "junk"))
        proc.on_tick_received(bad, sender=1)
        assert 2 not in proc.received_rounds

    def test_round_phases_minimum(self):
        with pytest.raises(ValueError):
            LockstepProcess(1, 1, EchoRounds(0), max_rounds=2)


class TestSynchronousExecutor:
    def test_history_shape(self):
        apps = [EchoRounds(i) for i in range(3)]
        history = run_synchronous(apps, rounds=3)
        assert len(history) == 4  # rounds 0..3
        assert set(history[0]) == {0, 1, 2}

    def test_none_algorithm_is_silent(self):
        apps = [EchoRounds(0), None, EchoRounds(2)]
        history = run_synchronous(apps, rounds=2)
        assert 1 not in history[0]
        assert all(1 not in msgs for msgs in history)

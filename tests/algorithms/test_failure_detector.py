"""Tests for the Figure-3 failure detector: perfection under ABC."""

from fractions import Fraction

import pytest

from repro.algorithms.failure_detector import PingPongMonitor, PongResponder
from repro.sim.delays import ThetaBandDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import CrashAfter
from repro.sim.network import Network, Topology


def run_fd(n=4, xi=Fraction(2), theta=1.5, crashed=(), seed=0, max_probes=8):
    monitor = PingPongMonitor(
        targets=list(range(1, n)), xi=xi, max_probes=max_probes
    )
    procs: list = [monitor]
    for pid in range(1, n):
        base = PongResponder()
        if pid in crashed:
            procs.append(CrashAfter(base, steps=0))
        else:
            procs.append(base)
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, theta))
    sim = Simulator(procs, net, faulty=set(crashed), seed=seed)
    sim.run(SimulationLimits(max_events=50_000))
    return monitor


class TestAccuracy:
    @pytest.mark.parametrize("seed", range(8))
    def test_no_false_suspicions_failure_free(self, seed):
        monitor = run_fd(seed=seed)
        assert monitor.suspected == set()

    @pytest.mark.parametrize("seed", range(4))
    def test_no_false_suspicions_with_crash(self, seed):
        monitor = run_fd(crashed={2}, seed=seed)
        assert monitor.suspected <= {2}

    @pytest.mark.parametrize("xi", [Fraction(3, 2), 2, 3])
    def test_accuracy_across_xi(self, xi):
        # Theta must stay below Xi for admissibility (Theorem 6).
        monitor = run_fd(xi=xi, theta=float(Fraction(xi)) * 0.9)
        assert monitor.suspected == set()


class TestCompleteness:
    @pytest.mark.parametrize("seed", range(4))
    def test_crashed_process_suspected(self, seed):
        monitor = run_fd(crashed={2}, seed=seed)
        assert 2 in monitor.suspected

    def test_multiple_crashes_suspected(self):
        monitor = run_fd(n=5, crashed={2, 4}, seed=1)
        assert monitor.suspected == {2, 4}

    def test_suspicion_is_permanent(self):
        monitor = run_fd(crashed={3}, seed=2, max_probes=10)
        assert 3 in monitor.suspected
        assert 3 in monitor.suspicion_step


class TestValidation:
    def test_xi_must_exceed_one(self):
        with pytest.raises(ValueError):
            PingPongMonitor(targets=[1], xi=1)

    def test_trips_needed_is_ceil_xi(self):
        assert PingPongMonitor([1], Fraction(5, 2)).trips_needed == 3
        assert PingPongMonitor([1], 2).trips_needed == 2

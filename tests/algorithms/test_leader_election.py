"""Tests for Omega leader election from the restricted ABC condition."""

from fractions import Fraction

import pytest

from repro.algorithms.leader_election import (
    CoreElector,
    LeaderAnnouncement,
    LeaderFollower,
)
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
)
from repro.sim.faults import CrashAfter


def run_election(n=6, f=1, crashed_core=(), seed=0):
    """Core = processes 0..f+1; the rest follow announcements."""
    core = tuple(range(f + 2))
    others = tuple(range(f + 2, n))
    procs: list = []
    for pid in range(n):
        if pid in core:
            elect = CoreElector(core, others, xi=Fraction(2), max_probes=8)
            if pid in crashed_core:
                procs.append(CrashAfter(elect, steps=0))
            else:
                procs.append(elect)
        else:
            procs.append(LeaderFollower())
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    sim = Simulator(procs, net, faulty=set(crashed_core), seed=seed)
    sim.run(SimulationLimits(max_events=60_000))
    return procs, core, others, set(crashed_core)


class TestElection:
    @pytest.mark.parametrize("seed", range(4))
    def test_failure_free_elects_smallest_core_member(self, seed):
        procs, core, others, _ = run_election(seed=seed)
        for pid in core:
            assert procs[pid].leader == 0
        for pid in others:
            assert procs[pid].leader == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_crashed_leader_replaced(self, seed):
        procs, core, others, crashed = run_election(
            crashed_core={0}, seed=seed
        )
        for pid in set(core) - crashed:
            assert procs[pid].leader == 1  # smallest surviving core member
        for pid in others:
            assert procs[pid].leader == 1

    def test_leader_is_always_a_core_member(self):
        procs, core, others, _ = run_election(n=7, f=2, seed=3)
        for pid in others:
            assert procs[pid].leader in core

    def test_agreement_across_all_correct(self):
        procs, core, others, crashed = run_election(
            n=7, f=2, crashed_core={1}, seed=5
        )
        leaders = {
            procs[pid].leader
            for pid in set(core) | set(others)
            if pid not in crashed
        }
        assert len(leaders) == 1
        assert next(iter(leaders)) not in crashed

    def test_attach_validates_core_membership(self):
        elect = CoreElector((0, 1, 2), (3,), xi=Fraction(2))
        with pytest.raises(ValueError):
            elect.attach(5, 6)

    def test_follower_ignores_garbage(self):
        follower = LeaderFollower()
        follower.on_message(None, "junk", 0)  # ctx unused for garbage
        assert follower.leader is None

    def test_follower_prefers_fresh_announcements(self):
        follower = LeaderFollower()
        follower.on_message(None, LeaderAnnouncement(leader=0, epoch=1), 0)
        assert follower.leader == 0
        # A newer epoch announcing a different leader wins.
        follower.on_message(None, LeaderAnnouncement(leader=1, epoch=9), 1)
        assert follower.leader == 1

"""Tests for the Section-6 variants: Xi learning and doubling rounds."""

from fractions import Fraction
from typing import Any, Mapping

import pytest

from repro.algorithms.eventual import (
    AdaptiveXiMonitor,
    DoublingLockstepProcess,
    doubling_round_start,
)
from repro.algorithms.failure_detector import PongResponder
from repro.analysis.properties import first_lockstep_round, verify_lockstep
from repro.sim.delays import PerLinkDelay, ThetaBandDelay, UniformDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import CrashAfter
from repro.sim.network import Network, Topology


class EchoRounds:
    def __init__(self, pid: int) -> None:
        self.pid = pid

    def initial_message(self) -> Any:
        return (self.pid, 0)

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        return (self.pid, round_index)


class TestDoublingBoundaries:
    def test_round_starts(self):
        assert doubling_round_start(2, 0) == 0
        assert doubling_round_start(2, 1) == 2
        assert doubling_round_start(2, 2) == 6
        assert doubling_round_start(2, 3) == 14

    def test_base_phase_validation(self):
        with pytest.raises(ValueError):
            DoublingLockstepProcess(1, 0, EchoRounds(0), max_rounds=2)


def run_doubling(n=4, f=1, rounds=5, theta=4.0, seed=0):
    """A network whose delay band is far wider than the first rounds'
    duration: early rounds miss messages, later (longer) rounds don't."""
    procs = [
        DoublingLockstepProcess(f, 1, EchoRounds(i), max_rounds=rounds)
        for i in range(n)
    ]
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, theta))
    sim = Simulator(procs, net, seed=seed)
    trace = sim.run(SimulationLimits(max_events=300_000))
    return trace, procs


class TestEventualLockstep:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_eventually_lockstep(self, seed):
        trace, procs = run_doubling(seed=seed)
        r0 = first_lockstep_round(trace, procs)
        assert r0 is not None

    def test_rounds_progress(self):
        _trace, procs = run_doubling()
        assert all(p.r >= 4 for p in procs)

    def test_lockstep_from_start_under_tight_band(self):
        # With Theta close to 1 and base phases comfortably large, even
        # round 1 is already lock-step.
        procs = [
            DoublingLockstepProcess(1, 4, EchoRounds(i), max_rounds=4)
            for i in range(4)
        ]
        net = Network(Topology.fully_connected(4), ThetaBandDelay(1.0, 1.2))
        sim = Simulator(procs, net, seed=5)
        trace = sim.run(SimulationLimits(max_events=300_000))
        assert first_lockstep_round(trace, procs) == 1
        assert verify_lockstep(trace, procs)[0]


class TestAdaptiveXi:
    def run_monitor(self, initial_xi, slow_factor, seed=0, crashed=False):
        """Monitor with two targets; target 2's link is `slow_factor`
        times slower than the band, so small estimates time it out."""
        n = 3
        monitor = AdaptiveXiMonitor(
            targets=[1, 2], initial_xi_hat=initial_xi, max_probes=12
        )
        procs: list = [monitor, PongResponder(), PongResponder()]
        faulty = set()
        if crashed:
            procs[2] = CrashAfter(PongResponder(), steps=0)
            faulty = {2}
        delays = PerLinkDelay(
            {
                (0, 2): UniformDelay(slow_factor, slow_factor * 1.1),
                (2, 0): UniformDelay(slow_factor, slow_factor * 1.1),
            },
            default=UniformDelay(1.0, 1.2),
        )
        net = Network(Topology.fully_connected(n), delays)
        sim = Simulator(procs, net, faulty=faulty, seed=seed)
        sim.run(SimulationLimits(max_events=30_000))
        return monitor

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_estimate_grows_and_rehabilitates(self, seed):
        monitor = self.run_monitor(
            initial_xi=Fraction(3, 2), slow_factor=8.0, seed=seed
        )
        # The slow (but correct) target must not stay suspected.
        assert 2 not in monitor.suspected
        assert monitor.revisions  # the estimate was bumped at least once
        assert monitor.xi_hat > Fraction(3, 2)

    def test_no_revision_when_estimate_sufficient(self):
        monitor = self.run_monitor(initial_xi=Fraction(20), slow_factor=3.0)
        assert monitor.revisions == []
        assert monitor.suspected == set()

    def test_crashed_target_stays_suspected(self):
        monitor = self.run_monitor(
            initial_xi=Fraction(3, 2), slow_factor=1.0, crashed=True
        )
        assert 2 in monitor.suspected

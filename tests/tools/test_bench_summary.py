"""Tests for ``tools/bench_summary.py``: the artifact aggregator.

Built around a synthetic ``BENCH_*.json`` tree rather than real
benchmark runs -- the tool's job is structural extraction and
rendering, which a handful of crafted artifacts (heterogeneous
schemas, a gated headline, junk files) exercises completely.
"""

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import bench_summary  # noqa: E402


def write_artifacts(root: Path) -> list[Path]:
    artifacts = {
        # a gated benchmark: "speedup" is its HEADLINES entry
        "BENCH_parallel.json": {
            "workers": 4,
            "speedup": 3.25,
            "serial": {"records_per_s": 120_000.0},
        },
        # nested headline path (kernel gates on gate.oracle_speedup)
        "BENCH_kernel.json": {
            "gate": {"oracle_speedup": 2.5},
            "detail": {"ratio": 0.8},
        },
        # a ceiling-gated headline (lower is better) plus an ungated
        # sibling leaf under another path
        "BENCH_obs.json": {
            "overhead": {"disabled_overhead_ratio": 0.004},
            "gate": {"disabled_overhead_ratio": 0.004},
            "notes": "not a number",
        },
    }
    paths = []
    for name, payload in artifacts.items():
        path = root / name
        path.write_text(json.dumps(payload))
        paths.append(path)
    return paths


class TestNumericLeaves:
    def test_extracts_comparison_shaped_leaves_with_paths(self):
        data = {"a": {"speedup": 2.0, "count": 7}, "ratio": 0.5}
        leaves = dict(bench_summary.numeric_leaves(data))
        assert leaves == {"a.speedup": 2.0, "ratio": 0.5}

    def test_ignores_bools_and_strings(self):
        data = {"speedup": True, "ratio": "fast"}
        assert list(bench_summary.numeric_leaves(data)) == []


class TestSummarize:
    def test_renders_markdown_table_with_gated_rows_first(self, tmp_path):
        paths = write_artifacts(tmp_path)
        table = bench_summary.summarize(paths)
        lines = table.splitlines()
        assert lines[0].startswith("| benchmark ")
        # kernel's nested headline and parallel's flat one are gated
        gated = [line for line in lines if "**gated**" in line]
        assert any("oracle_speedup" in line for line in gated)
        assert any(
            "parallel" in line and "| speedup |" in line for line in gated
        )
        # obs gates only the gate.* path; the overhead.* sibling stays plain
        assert any("gate.disabled_overhead_ratio" in line for line in gated)
        ungated = [line for line in lines if "**gated**" not in line]
        assert any("overhead.disabled_overhead_ratio" in line for line in ungated)

    def test_bench_name_strips_prefix(self):
        assert bench_summary.bench_name(Path("BENCH_obs.json")) == "obs"
        assert bench_summary.bench_name(Path("other.json")) == "other"

    def test_unreadable_artifact_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "BENCH_broken.json"
        bad.write_text("{not json")
        table = bench_summary.summarize([bad])
        assert "(unreadable)" in table

    def test_artifact_without_metrics_reported(self, tmp_path):
        empty = tmp_path / "BENCH_empty.json"
        empty.write_text(json.dumps({"note": "nothing numeric"}))
        table = bench_summary.summarize([empty])
        assert "(no metrics)" in table


class TestMain:
    def test_main_prints_table_and_appends_out(self, tmp_path, capsys):
        paths = write_artifacts(tmp_path)
        out = tmp_path / "summary.md"
        rc = bench_summary.main(
            [str(p) for p in paths] + ["--out", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "| benchmark |" in printed
        written = out.read_text()
        assert "## Benchmark summary" in written
        assert "oracle_speedup" in written
        # append mode: a second run must not truncate the first
        bench_summary.main([str(paths[0]), "--out", str(out)])
        assert out.read_text().count("## Benchmark summary") == 2

    def test_main_without_artifacts_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert bench_summary.main([]) == 1
        assert "no BENCH_" in capsys.readouterr().err


@pytest.mark.parametrize(
    "value,rendered",
    [(3.25, "3.25"), (120000.0, "120,000"), (0.004, "0.00")],
)
def test_fmt(value, rendered):
    assert bench_summary.fmt(value) == rendered

"""Smoke tests for ``tools/profile_hotpath.py``.

The tool is a cProfile harness over the acceptance-benchmark
workloads; the tests run it end to end at tiny workload sizes and
check the output names the hot path, rather than asserting anything
about timings.
"""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import profile_hotpath  # noqa: E402


def test_monitor_target_profiles_observe(tmp_path, capsys):
    out = tmp_path / "monitor.pstats"
    rc = profile_hotpath.main(
        ["--events", "30", "--top", "5", "--out", str(out)]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "monitor replay" in printed
    assert "observe" in printed  # the profiled entry point is visible
    assert out.exists() and out.stat().st_size > 0


@pytest.mark.parametrize("target", ["ingest-object", "ingest-columnar"])
def test_ingest_targets_run(target, capsys):
    rc = profile_hotpath.main(
        ["--target", target, "--events", "20", "--top", "5"]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "ingest" in printed
    assert "function calls" in printed  # pstats actually rendered


def test_rejects_unknown_target():
    with pytest.raises(SystemExit):
        profile_hotpath.main(["--target", "nonsense"])

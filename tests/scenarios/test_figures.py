"""Every paper figure's caption, checked as an executable claim."""

from fractions import Fraction

import pytest

from repro.core.cycle_space import vector_of
from repro.core.cycles import relevant_cycles
from repro.core.synchrony import check_abc, worst_relevant_ratio
from repro.scenarios.figures import (
    fig1_graph,
    fig2_graph,
    fig3_graph,
    fig4_graph,
    fig8_trace,
    fig9_graph,
    fig10_graphs,
    ping_pong_chain,
)


def test_fig1_slow_chain_spans_fast_chain():
    graph, ratio = fig1_graph()
    assert worst_relevant_ratio(graph) == ratio == Fraction(5, 4)
    assert check_abc(graph, Fraction(3, 2)).admissible
    assert not check_abc(graph, Fraction(5, 4)).admissible


def test_fig2_shared_edge_has_both_orientations():
    graph, e = fig2_graph()
    signs = {vector_of(i)[e] for i in relevant_cycles(graph)}
    assert {1, -1} <= signs


@pytest.mark.parametrize("xi", [2, 3])
def test_fig3_timeout_cycle(xi):
    graph, ratio = fig3_graph(xi)
    assert ratio == xi
    assert worst_relevant_ratio(graph) == xi
    assert not check_abc(graph, xi).admissible      # the late reply is
    assert check_abc(graph, xi + 1).admissible      # exactly the timeout


def test_fig4_early_reply_is_harmless():
    graph = fig4_graph(2)
    assert check_abc(graph, 2).admissible
    # The paper: phi "actually closes a smaller relevant cycle".
    assert worst_relevant_ratio(graph) == 1


def test_fig8_abc_vs_parsync_separation():
    from repro.models.relations import play_fig8_game

    trace = fig8_trace(phi=6, delta=6)
    outcome = play_fig8_game(trace, 6, 6)
    assert outcome.prover_wins
    # The figure's cycle is "valid for any Xi > 1": worst ratio <= 1.
    assert outcome.worst_ratio is not None and outcome.worst_ratio <= 1


@pytest.mark.parametrize("round_trips,expected", [(2, 1), (4, 2), (6, 3)])
def test_fig9_cumulative_ratio(round_trips, expected):
    graph, ratio = fig9_graph(round_trips)
    assert ratio == expected
    assert worst_relevant_ratio(graph) == expected


def test_fig10_fifo_enforcement():
    in_order, reordered = fig10_graphs(xi=4)
    assert check_abc(in_order, 4).admissible
    assert not check_abc(reordered, 4).admissible
    # The violating cycle's ratio is xi + 1 = 5, as in the caption.
    assert worst_relevant_ratio(reordered) == 5


def test_ping_pong_chain_helper_indices():
    from repro.core.execution_graph import GraphBuilder

    b = GraphBuilder()
    a_next, b_next = ping_pong_chain(b, 0, 1, 0, 0, 4)
    g = b.build()
    assert a_next == 3 and b_next == 2
    assert len(g.messages) == 4

"""Tests for the random workload generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.synchrony import check_abc
from repro.scenarios.generators import (
    random_execution_graph,
    theta_band_trace,
)
from repro.sim.trace import build_execution_graph


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_processes=st.integers(1, 5),
    n_messages=st.integers(0, 15),
)
def test_random_graphs_are_valid(seed, n_processes, n_messages):
    rng = random.Random(seed)
    # Construction raises if the graph violates Definition 1.
    graph = random_execution_graph(rng, n_processes, n_messages)
    assert len(graph.messages) == n_messages
    assert graph.n_events == n_processes + n_messages


def test_random_graph_determinism():
    g1 = random_execution_graph(random.Random(5), 3, 8)
    g2 = random_execution_graph(random.Random(5), 3, 8)
    assert g1.messages == g2.messages


def test_theta_band_trace_is_abc_admissible():
    trace = theta_band_trace(n=4, f=1, theta=1.4, max_tick=6, seed=2)
    graph = build_execution_graph(trace)
    assert check_abc(graph, 2).admissible

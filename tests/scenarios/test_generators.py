"""Tests for the random workload generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.synchrony import check_abc
from repro.scenarios.generators import (
    concurrent_workload,
    profiled_trace_records,
    random_execution_graph,
    streaming_records,
    streaming_trace,
    theta_band_trace,
)
from repro.sim.trace import Trace, build_execution_graph


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_processes=st.integers(1, 5),
    n_messages=st.integers(0, 15),
)
def test_random_graphs_are_valid(seed, n_processes, n_messages):
    rng = random.Random(seed)
    # Construction raises if the graph violates Definition 1.
    graph = random_execution_graph(rng, n_processes, n_messages)
    assert len(graph.messages) == n_messages
    assert graph.n_events == n_processes + n_messages


def test_random_graph_determinism():
    g1 = random_execution_graph(random.Random(5), 3, 8)
    g2 = random_execution_graph(random.Random(5), 3, 8)
    assert g1.messages == g2.messages


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_processes=st.integers(1, 4),
    n_records=st.integers(1, 30),
)
def test_streaming_prefixes_are_valid_traces(seed, n_processes, n_records):
    rng = random.Random(seed)
    n_records = max(n_records, n_processes)
    records = list(streaming_records(rng, n_processes, n_records))
    assert len(records) == n_records
    times = [r.time for r in records]
    assert times == sorted(times) and len(set(times)) == len(times)
    # Every prefix must build into a valid execution graph.
    for k in (1, n_records // 2 + 1, n_records):
        prefix = Trace(n_processes, frozenset(), records[:k])
        build_execution_graph(prefix)  # raises if invalid


def test_streaming_trace_determinism_and_shape():
    t1 = streaming_trace(random.Random(4), n_processes=3, n_records=20)
    t2 = streaming_trace(random.Random(4), n_processes=3, n_records=20)
    assert t1.records == t2.records
    assert len(t1.records) == 20
    # The first n_processes records are the wake-ups.
    assert all(r.sender is None for r in t1.records[:3])
    assert any(r.sender is not None for r in t1.records)


def test_streaming_records_validation():
    with pytest.raises(ValueError):
        list(streaming_records(random.Random(0), n_processes=0))
    with pytest.raises(ValueError):
        list(streaming_records(random.Random(0), n_processes=3, n_records=2))


def test_theta_band_trace_is_abc_admissible():
    trace = theta_band_trace(n=4, f=1, theta=1.4, max_tick=6, seed=2)
    graph = build_execution_graph(trace)
    assert check_abc(graph, 2).admissible


# ----------------------------------------------------------------------
# multi-trace fleet workloads
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "profile", ["storm", "burst", "idler", "relay", "firehose"]
)
def test_profiled_traces_are_valid_growing_executions(profile):
    records = profiled_trace_records(random.Random(3), profile, 50)
    assert len(records) == 50
    times = [r.time for r in records]
    assert times == sorted(times)
    n = max(r.event.process for r in records) + 1
    # Every prefix must build into a valid execution graph.
    for k in (1, 17, 50):
        build_execution_graph(Trace(n, frozenset(), records[:k]))


@pytest.mark.parametrize(
    "profile", ["storm", "burst", "idler", "relay", "firehose"]
)
def test_profiled_traces_carry_complete_sends_metadata(profile):
    """Every message must appear in its send event's ``sends`` -- the
    in-flight knowledge that keeps fleet eviction exact."""
    records = profiled_trace_records(random.Random(9), profile, 60)
    by_event = {r.event: r for r in records}
    n_messages = 0
    for record in records:
        if record.send_event is None:
            continue
        n_messages += 1
        sender = by_event[record.send_event]
        assert any(
            s.dest == record.event.process and s.deliver_time == record.time
            for s in sender.sends
        ), f"{record.event} missing from {record.send_event}'s sends"
    assert n_messages > 0


def test_storm_traces_close_relevant_cycles():
    from repro.core.synchrony import worst_relevant_ratio

    records = profiled_trace_records(random.Random(1), "storm", 80)
    graph = build_execution_graph(Trace(3, frozenset(), records))
    worst = worst_relevant_ratio(graph)
    assert worst is not None and worst > 1


def test_profiled_trace_records_validation():
    with pytest.raises(ValueError):
        profiled_trace_records(random.Random(0), "nope", 10)
    with pytest.raises(ValueError):
        profiled_trace_records(random.Random(0), "storm", 0)


def test_concurrent_workload_shape_and_determinism():
    stream1 = list(concurrent_workload(random.Random(5), n_traces=8))
    stream2 = list(concurrent_workload(random.Random(5), n_traces=8))
    assert stream1 == stream2
    trace_ids = {tid for tid, _r in stream1}
    assert len(trace_ids) == 8
    assert all(tid.split("-")[0] in ("storm", "burst", "idler") for tid in trace_ids)
    # Per-trace subsequences are valid growing executions.
    per = {}
    for tid, record in stream1:
        per.setdefault(tid, []).append(record)
    for records in per.values():
        n = max(r.event.process for r in records) + 1
        build_execution_graph(Trace(n, frozenset(), records))


def test_concurrent_workload_validation():
    with pytest.raises(ValueError):
        list(concurrent_workload(random.Random(0), n_traces=0))


def test_relay_chain_is_never_exactly_settleable():
    """The adversarial compaction shape: on every prefix with anything
    in flight, the no-crossing criterion removes nothing, while the
    chain closes relevant cycles of ratio > 1."""
    from repro.analysis.online import OnlineAbcMonitor
    from repro.scenarios.generators import relay_chain_workload

    records = relay_chain_workload(random.Random(3), 200)
    n = max(r.event.process for r in records) + 1
    for k in (1, 80, 200):
        build_execution_graph(Trace(n, frozenset(), records[:k]))
    monitor = OnlineAbcMonitor()
    pinned = {r.send_event for r in records if r.send_event is not None}
    for record in records:
        monitor.observe(record)
        assert monitor.settled_prefix(pinned) == ()
    from repro.core.synchrony import worst_relevant_ratio

    worst = worst_relevant_ratio(
        build_execution_graph(Trace(n, frozenset(), records))
    )
    assert worst is not None and worst > 1
    assert monitor.worst_ratio == worst


def test_relay_chain_validation():
    from repro.scenarios.generators import relay_chain_workload

    with pytest.raises(ValueError):
        relay_chain_workload(random.Random(0), 10, n_processes=1)
    with pytest.raises(ValueError):
        relay_chain_workload(random.Random(0), 0)


def test_firehose_traces_are_dense_message_streams():
    """The firehose profile (the columnar benchmark's gate shape):
    one wake-up per process, then *every* record carries a triggering
    message from a recent event, with no silences between arrivals."""
    records = profiled_trace_records(random.Random(5), "firehose", 80)
    n_processes = max(r.event.process for r in records) + 1
    wakeups = [r for r in records if r.send_event is None]
    assert len(wakeups) == n_processes
    assert all(r.event.index == 0 for r in wakeups)
    triggered = [r for r in records if r.send_event is not None]
    assert len(triggered) == len(records) - n_processes
    # Dense arrivals: no gap resembling an idle period.
    times = [r.time for r in records]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) < 0.01
    # Dense all-to-all traffic closes relevant cycles, so the monitor
    # has real ratio work on every batch.
    graph = build_execution_graph(
        Trace(n_processes, frozenset(), records)
    )
    from repro.core.synchrony import worst_relevant_ratio

    assert worst_relevant_ratio(graph) is not None


def test_firehose_determinism():
    one = profiled_trace_records(random.Random(42), "firehose", 60)
    two = profiled_trace_records(random.Random(42), "firehose", 60)
    assert one == two

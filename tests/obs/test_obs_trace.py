"""Tests for record-lifecycle tracing spans and contexts."""

import pytest

from repro.obs import metrics as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    STAGE_METRIC,
    STAGES,
    TraceContext,
    new_context,
)


@pytest.fixture(autouse=True)
def clean_module_state():
    previous = obs.set_enabled(False)
    obs.reset_global_registry()
    yield
    obs.set_enabled(previous)
    obs.reset_global_registry()


def test_stages_cover_the_record_lifecycle_in_order():
    assert STAGES == (
        "client_encode",
        "front_accept",
        "dispatch_route",
        "worker_absorb",
        "kernel_sweep",
    )


def test_new_context_is_none_when_disabled():
    assert new_context() is None
    # The guard is on the ambient flag, not on having a registry.
    assert new_context(MetricsRegistry()) is None


def test_new_context_binds_global_registry_and_unique_ids():
    obs.set_enabled(True)
    a = new_context(name="p1")
    b = new_context(name="p1")
    assert a.registry is obs.global_registry()
    assert a.ctx_id != b.ctx_id
    assert a.ctx_id.endswith("-p1")
    assert a.stamp() == (a.ctx_id,)


def test_span_records_histogram_and_event():
    registry = MetricsRegistry()
    ctx = TraceContext("ctx-1", registry)
    with ctx.span("worker_absorb"):
        pass
    hist = registry.histogram(STAGE_METRIC, (("stage", "worker_absorb"),))
    assert hist.count == 1
    assert hist.sum >= 0
    events = registry.drain_events()
    assert len(events) == 1
    ctx_id, stage, duration_ns = events[0]
    assert (ctx_id, stage) == ("ctx-1", "worker_absorb")
    assert duration_ns >= 0


def test_span_end_returns_duration_and_observes_once():
    registry = MetricsRegistry()
    ctx = TraceContext("ctx-2", registry)
    span = ctx.span("dispatch_route")
    duration = span.end()
    assert duration >= 0
    hist = registry.histogram(STAGE_METRIC, (("stage", "dispatch_route"),))
    assert hist.count == 1


def test_observe_records_exact_duration():
    registry = MetricsRegistry()
    ctx = TraceContext("ctx-3", registry)
    ctx.observe("kernel_sweep", 1024)
    ctx.observe("kernel_sweep", 4096)
    hist = registry.histogram(STAGE_METRIC, (("stage", "kernel_sweep"),))
    assert (hist.count, hist.sum) == (2, 5120)
    # per-stage instruments are cached: same object on the second hit
    assert ctx._stage_hists["kernel_sweep"] is hist


def test_stage_histograms_are_per_stage_series():
    registry = MetricsRegistry()
    ctx = TraceContext("ctx-4", registry)
    for stage in STAGES:
        ctx.observe(stage, 1)
    names = {
        (row[1], row[2]) for row in registry.to_rows()
    }
    assert names == {
        (STAGE_METRIC, (("stage", stage),)) for stage in STAGES
    }


def test_null_span_is_inert():
    with NULL_SPAN as span:
        assert span is NULL_SPAN
    assert NULL_SPAN.end() == 0

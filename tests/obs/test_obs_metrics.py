"""Unit tests for the metrics registry.

The contract under test is the one the parallel fleet leans on:
instrument creation is idempotent, serialization is plain sorted
tuples, merging is associative/commutative integer addition (so the
fleet dump is independent of worker arrival order), and the
deterministic flag partitions the export into the cross-backend
comparable subset.
"""

import itertools
import json

import pytest

from repro.obs import metrics as obs
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_NS_BUCKETS,
    EVENT_CAPACITY,
    MetricsRegistry,
    merge_row_sets,
    rows_to_json,
)


@pytest.fixture(autouse=True)
def clean_module_state():
    previous = obs.set_enabled(False)
    obs.reset_global_registry()
    yield
    obs.set_enabled(previous)
    obs.reset_global_registry()


class TestInstruments:
    def test_counter_accumulates(self):
        c = MetricsRegistry().counter("c_total")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_histogram_bucket_edges_are_inclusive(self):
        # bisect_left: a value equal to a bound must land in that
        # bound's bucket (Prometheus ``le`` semantics).
        h = MetricsRegistry().histogram("h", bounds=(10, 100, 1000))
        h.observe(10)  # equal to the first bound: bucket 0, not 1
        h.observe(11)
        h.observe(100)
        h.observe(5000)  # past the last bound: overflow bucket
        h.observe(0)
        assert h.counts == [2, 2, 0, 1]
        assert h.count == 5
        assert h.sum == 10 + 11 + 100 + 5000

    def test_default_bounds_are_exact_integer_powers(self):
        assert DEFAULT_NS_BUCKETS == tuple(4**k for k in range(5, 17))
        assert COUNT_BUCKETS == tuple(4**k for k in range(0, 10))
        assert all(isinstance(b, int) for b in DEFAULT_NS_BUCKETS)


class TestRegistry:
    def test_instrument_creation_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", {"w": 1})
        b = registry.counter("x_total", (("w", "1"),))  # same key, other spelling
        assert a is b

    def test_labels_are_sorted_normalized_strings(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", {"zeta": 1, "alpha": "two"})
        assert c.labels == (("alpha", "two"), ("zeta", "1"))

    def test_same_name_different_kind_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.gauge("x")
        assert len(registry.to_rows()) == 2

    def test_to_rows_shape_and_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(2)
        registry.gauge("a_depth", deterministic=False).set(3)
        rows = registry.to_rows()
        assert [row[1] for row in rows] == ["a_depth", "b_total"]
        kind, name, labels, deterministic, payload = rows[1]
        assert (kind, name, labels, deterministic, payload) == (
            "counter", "b_total", (), 1, 2
        )
        assert rows[0][3] == 0  # non-deterministic flag serializes as 0

    def test_merge_sums_counters_gauges_and_buckets(self):
        def build(counter_n, gauge_v, observations):
            registry = MetricsRegistry()
            registry.counter("c_total").inc(counter_n)
            registry.gauge("depth").set(gauge_v)
            h = registry.histogram("lat_ns", bounds=(10, 100))
            for v in observations:
                h.observe(v)
            return registry

        merged = MetricsRegistry()
        merged.merge_rows(build(3, 7, [5, 50]).to_rows())
        merged.merge_rows(build(4, 2, [500]).to_rows())
        assert merged.counter("c_total").value == 7
        assert merged.gauge("depth").value == 9  # gauges sum (fleet level)
        h = merged.histogram("lat_ns", bounds=(10, 100))
        assert h.counts == [1, 1, 1] and h.count == 3 and h.sum == 555

    def test_merge_is_order_independent(self):
        row_sets = []
        for seed in range(3):
            registry = MetricsRegistry()
            registry.counter("c_total", {"w": seed}).inc(seed + 1)
            registry.histogram("lat_ns").observe(4**(5 + seed))
            row_sets.append(registry.to_rows())
        dumps = set()
        for perm in itertools.permutations(row_sets):
            dumps.add(merge_row_sets(perm))
        assert len(dumps) == 1

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", bounds=(1, 2, 3)).observe(1)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            b.merge_rows(a.to_rows())

    def test_merge_tolerates_unknown_kinds_and_trailing_fields(self):
        registry = MetricsRegistry()
        registry.merge_rows(
            [
                ("summary", "future_metric", (), 1, (1, 2)),  # unknown kind
                ("counter", "c_total", (), 1, 5, "from-a-newer-peer"),
            ]
        )
        assert registry.counter("c_total").value == 5
        assert len(registry.to_rows()) == 1

    def test_event_buffer_records_drains_and_bounds(self):
        registry = MetricsRegistry()
        registry.record_event("ctx", "worker_absorb", 12)
        assert registry.drain_events() == (("ctx", "worker_absorb", 12),)
        assert registry.drain_events() == ()
        for i in range(EVENT_CAPACITY + 10):
            registry.record_event("ctx", "s", i)
        drained = registry.drain_events()
        assert len(drained) == EVENT_CAPACITY
        assert drained[0][2] == 10  # oldest events fell off


class TestExport:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", help="a counter").inc(3)
        registry.gauge("repro_depth", {"w": 0}).set(2)
        h = registry.histogram("repro_lat_ns", bounds=(10, 100))
        h.observe(10)
        h.observe(99)
        h.observe(5000)
        return registry

    def test_to_json_shapes(self):
        snapshot = self.build().to_json()
        assert snapshot["repro_c_total"] == {
            "kind": "counter", "deterministic": True, "value": 3
        }
        assert snapshot['repro_depth{w="0"}']["value"] == 2
        hist = snapshot["repro_lat_ns"]
        assert hist["buckets"] == [[10, 1], [100, 1]]
        assert hist["overflow"] == 1
        assert (hist["count"], hist["sum"]) == (3, 10 + 99 + 5000)

    def test_deterministic_only_filters(self):
        snapshot = self.build().to_json(deterministic_only=True)
        assert list(snapshot) == ["repro_c_total"]

    def test_dump_json_is_canonical(self):
        a, b = self.build(), self.build()
        assert a.dump_json() == b.dump_json()
        json.loads(a.dump_json())  # valid JSON

    def test_render_prometheus_exposition(self):
        text = self.build().render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_c_total counter" in lines
        assert "# HELP repro_c_total a counter" in lines
        assert "repro_c_total 3" in lines
        assert 'repro_depth{w="0"} 2' in lines
        # histogram buckets are cumulative and ``le`` is inclusive
        assert 'repro_lat_ns_bucket{le="10"} 1' in lines
        assert 'repro_lat_ns_bucket{le="100"} 2' in lines
        assert 'repro_lat_ns_bucket{le="+Inf"} 3' in lines
        assert "repro_lat_ns_sum 5109" in lines
        assert "repro_lat_ns_count 3" in lines
        assert text.endswith("\n")

    def test_rows_to_json_round_trips(self):
        registry = self.build()
        assert rows_to_json(registry.to_rows()) == registry.to_json()


class TestModuleState:
    def test_set_enabled_returns_previous(self):
        assert obs.set_enabled(True) is False
        assert obs.enabled() is True
        assert obs.set_enabled(False) is True

    def test_registry_if_enabled_gates_on_flag(self):
        assert obs.registry_if_enabled() is None
        obs.set_enabled(True)
        assert obs.registry_if_enabled() is obs.global_registry()

    def test_reset_drops_the_global_registry(self):
        first = obs.global_registry()
        first.counter("x").inc()
        obs.reset_global_registry()
        second = obs.global_registry()
        assert second is not first
        assert second.to_rows() == ()

"""Telemetry-plane integration: monitor, codec, fleet, and server.

What travels here is the full metrics path the observability PR wires:
monitor instruments survive pickling by *not* traveling (snapshot blobs
stay telemetry-agnostic), telemetry rows round-trip the worker codec,
a parallel fleet merges per-worker registries crash-tolerantly, and a
network server exposes the scrape role plus metrics in the delta
stream.
"""

import pickle
import random
from fractions import Fraction

import pytest

from repro.analysis.online import OnlineAbcMonitor
from repro.core.events import Event
from repro.obs import metrics as obs
from repro.runtime import ParallelFleet, codec
from repro.runtime.net import DeltaSubscriber, IngestServer
from repro.runtime.net.client import fetch_metrics
from repro.scenarios.generators import (
    concurrent_workload,
    profiled_trace_records,
)
from repro.sim.trace import ReceiveRecord

XI = Fraction(4)


@pytest.fixture(autouse=True)
def clean_module_state():
    previous = obs.set_enabled(False)
    obs.reset_global_registry()
    yield
    obs.set_enabled(previous)
    obs.reset_global_registry()


@pytest.fixture
def enabled():
    obs.set_enabled(True)
    yield


def stream(seed=1, n_traces=8):
    return list(
        concurrent_workload(
            random.Random(seed),
            n_traces=n_traces,
            records_per_trace=(20, 40),
        )
    )


def trace_records(n=60, seed=3):
    return list(profiled_trace_records(random.Random(seed), "firehose", n))


def poison_record():
    return ReceiveRecord(
        event=Event(0, 7),
        time=1.0,
        sender=None,
        send_event=None,
        send_time=None,
        payload=None,
        processed=True,
        sends=(),
    )


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------


class TestCodec:
    def test_metrics_rows_round_trip(self):
        registry = obs.MetricsRegistry()
        registry.counter("c_total", {"w": 0}).inc(3)
        registry.histogram("lat_ns", bounds=(10, 100)).observe(50)
        rows = registry.to_rows()
        wire = codec.encode_metrics_rows(rows)
        assert codec.decode_metrics_rows(wire) == rows
        merged = obs.MetricsRegistry()
        merged.merge_rows(codec.decode_metrics_rows(wire))
        assert merged.dump_json() == registry.dump_json()

    def test_encode_normalizes_histogram_payload_sequences(self):
        row = ("histogram", "h", (), 0, ([1, 2], [0, 1, 0], 1, 2))
        (encoded,) = codec.encode_metrics_rows((row,))
        assert encoded[4] == ((1, 2), (0, 1, 0), 1, 2)

    def test_decode_tolerates_trailing_extensions(self):
        wire = (("counter", "c_total", (), 1, 5, "newer-peer-field"),)
        (row,) = codec.decode_metrics_rows(wire)
        assert row == ("counter", "c_total", (), 1, 5, "newer-peer-field")


# ----------------------------------------------------------------------
# monitor
# ----------------------------------------------------------------------


class TestMonitor:
    def test_disabled_monitor_has_no_instruments(self):
        assert OnlineAbcMonitor(xi=XI)._obs is None

    def test_enabled_monitor_counts_oracle_calls(self, enabled):
        monitor = OnlineAbcMonitor(xi=XI)
        assert monitor._obs is not None
        for record in trace_records():
            monitor.observe(record)
        registry = obs.global_registry()
        calls = registry.counter("repro_monitor_oracle_calls_total")
        assert calls.value == monitor.oracle_calls > 0
        sweep = registry.histogram(
            "repro_stage_ns", (("stage", "kernel_sweep"),)
        )
        assert sweep.count > 0

    def test_pickle_strips_instruments_and_restores_working(self, enabled):
        records = trace_records()
        monitor = OnlineAbcMonitor(xi=XI)
        for record in records[: len(records) // 2]:
            monitor.observe(record)
        assert monitor.__getstate__()["_obs"] is None
        restored = pickle.loads(pickle.dumps(monitor))
        assert restored._obs is None  # restoring side re-binds explicitly
        for record in records[len(records) // 2 :]:
            restored.observe(record)  # hooks skipped, no crash

    def test_snapshot_state_is_identical_on_and_off(self):
        records = trace_records()

        def blob(flag):
            previous = obs.set_enabled(flag)
            obs.reset_global_registry()
            try:
                monitor = OnlineAbcMonitor(xi=XI)
                for record in records:
                    monitor.observe(record)
                return pickle.dumps(monitor)
            finally:
                obs.set_enabled(previous)
                obs.reset_global_registry()

        assert blob(True) == blob(False)


# ----------------------------------------------------------------------
# parallel fleet
# ----------------------------------------------------------------------


class TestFleet:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_fleet_merges_worker_and_dispatcher_rows(self, enabled, backend):
        records = stream()
        with ParallelFleet(
            XI, n_shards=4, n_workers=2, batch_size=8, backend=backend
        ) as fleet:
            for tid, record in records:
                fleet.ingest(tid, record)
            fleet.flush()
            snapshot = fleet.metrics_snapshot()
            assert (
                snapshot["repro_dispatcher_shipped_records_total"]["value"]
                == len(records)
            )
            # worker-side (per-group registry) rows made it across the
            # reply protocol and into the merge
            assert any(
                key.startswith("repro_shard_flushes_total") for key in snapshot
            )
            deterministic = fleet.metrics_snapshot(deterministic_only=True)
            assert deterministic
            assert all(
                entry["deterministic"] for entry in deterministic.values()
            )
            text = fleet.render_prometheus()
            assert "# TYPE repro_dispatcher_shipped_records_total counter" in text

    def test_disabled_fleet_exports_nothing(self):
        records = stream(n_traces=4)
        with ParallelFleet(
            XI, n_shards=4, n_workers=2, batch_size=8, backend="thread"
        ) as fleet:
            for tid, record in records:
                fleet.ingest(tid, record)
            fleet.flush()
            assert fleet.metrics_rows() == ()
            assert fleet.metrics_snapshot() == {}

    def test_crashed_worker_contributes_last_synced_rows(self, enabled):
        records = stream(n_traces=6)
        with ParallelFleet(
            XI,
            n_shards=4,
            n_workers=2,
            batch_size=8,
            backend="thread",
            wire_batch=16,
        ) as fleet:
            for tid, record in records:
                fleet.ingest(tid, record)
            fleet.flush()
            before = fleet.metrics_snapshot()  # fills per-worker caches
            doomed = next(
                f"d{i}"
                for i in range(1000)
                if fleet.worker_of(fleet.shard_of(f"d{i}")) == 0
            )
            fleet.ingest(doomed, poison_record())
            fleet.flush()
            assert fleet.report().crashed_shards
            after = fleet.metrics_snapshot()
            # the dead worker's shard rows are the cached pre-crash ones
            shard_keys = [
                key for key in before if key.startswith("repro_shard")
            ]
            assert shard_keys
            for key in shard_keys:
                assert after[key] == before[key]
            # the dispatcher kept counting through the crash
            assert (
                after["repro_dispatcher_shipped_records_total"]["value"]
                == len(records) + 1
            )


# ----------------------------------------------------------------------
# network server
# ----------------------------------------------------------------------


def drive(server, records, n_producers=2):
    from repro.runtime.net import ProducerClient

    ids = sorted({tid for tid, _ in records}, key=str)
    owner = {tid: i % n_producers for i, tid in enumerate(ids)}
    clients = [
        ProducerClient(server.address, producer_id=f"p{i}", batch=7)
        for i in range(n_producers)
    ]
    try:
        for tid, record in records:
            clients[owner[tid]].send(tid, record)
    finally:
        for client in clients:
            client.close()


class TestServer:
    def test_metrics_role_and_delta_stream(self, enabled):
        records = stream(seed=5, n_traces=8)
        with IngestServer(
            XI,
            n_fronts=2,
            n_shards=4,
            batch_size=8,
            backend="thread",
            metrics_interval=0.0,
        ) as server:
            sub = DeltaSubscriber(server.address, name="dash")
            drive(server, records)
            server.flush()
            scraped = obs.rows_to_json(fetch_metrics(server.address))
            produced = [
                entry["value"]
                for key, entry in scraped.items()
                if key.startswith("repro_net_produced_records_total")
            ]
            assert sum(produced) == len(records)
            assert len(produced) == 2  # one series per producer
            # fronts label their fleet rows so series never clobber
            assert any('front="0"' in key for key in scraped)
            text = server.render_prometheus()
            assert "repro_net_produced_records_total" in text
        view = sub.run_to_end()
        sub.close()
        assert view.metrics_rows()
        assert view.metrics_snapshot()

    def test_disabled_server_scrapes_empty(self):
        records = stream(seed=6, n_traces=4)
        with IngestServer(
            XI, n_fronts=1, n_shards=4, batch_size=8, backend="thread"
        ) as server:
            drive(server, records, n_producers=1)
            server.flush()
            assert fetch_metrics(server.address) == ()

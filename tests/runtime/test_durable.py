"""Tests for the durability plane: WAL framing, checkpoints, recovery.

Three layers, bottom up: the frame format (torn tails must truncate,
never corrupt), the store's checkpoint commit semantics (the metadata
replace is the commit point; journals reset only after it), and the
fleet-level recovery protocol -- a SIGKILLed worker respawns from its
snapshot + journal suffix with bit-identical per-trace results, a whole
fleet restarts from disk with the producer resuming at
``fleet.ingested_records``, and a poison record exhausts the recovery
budget instead of looping forever.
"""

import os
import random
import signal
import time
from fractions import Fraction

import pytest

from repro.analysis.fleet import MonitorFleet
from repro.runtime import Durability, ParallelFleet, WorkerCrashed
from repro.runtime.durable import (
    DurableStore,
    contiguous_prefix,
    frame_bytes,
    read_frames,
    scan_frames,
    write_frames,
)
from repro.scenarios.generators import concurrent_workload


# ----------------------------------------------------------------------
# frame format
# ----------------------------------------------------------------------


class TestFrames:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "frames.bin"
        frames = [(1, "a", (1, 2)), (2, "b", None), (3, "c", "payload")]
        write_frames(path, frames)
        assert list(read_frames(path)) == frames

    def test_torn_tail_truncates_cleanly(self, tmp_path):
        path = tmp_path / "frames.bin"
        frames = [(i, f"t{i}", "x" * 50) for i in range(10)]
        write_frames(path, frames)
        size = path.stat().st_size
        # Chop the file at every byte boundary of the last two frames:
        # the reader must yield some prefix of the written frames and
        # never raise -- a crash mid-append is exactly a truncation.
        with open(path, "rb") as fh:
            blob = fh.read()
        for cut in range(size - 130, size):
            with open(path, "wb") as fh:
                fh.write(blob[:cut])
            got = list(read_frames(path))
            assert got == frames[: len(got)]
            assert len(got) >= 8

    def test_corrupt_crc_stops_iteration(self, tmp_path):
        path = tmp_path / "frames.bin"
        write_frames(path, [(1, "a"), (2, "b"), (3, "c")])
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[len(blob) // 2] ^= 0xFF  # flip a payload byte mid-file
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        got = list(read_frames(path))
        # Everything before the corrupted frame is intact; nothing after
        # it is trusted (appends are sequential, so a bad CRC means the
        # tail is suspect).
        assert got == [(1, "a"), (2, "b"), (3, "c")][: len(got)]
        assert len(got) < 3


class TestContiguousPrefix:
    def test_gap_free_union_is_fully_claimed(self):
        frames = [(t, t % 3, f"tr{t}", "w") for t in range(1, 11)]
        random.Random(0).shuffle(frames)
        prefix, tick = contiguous_prefix(frames, after_tick=0)
        assert tick == 10
        assert [f[0] for f in prefix] == list(range(1, 11))

    def test_gap_cuts_the_claim(self):
        frames = [(t, 0, "tr", "w") for t in (1, 2, 3, 5, 6)]
        prefix, tick = contiguous_prefix(frames, after_tick=0)
        assert tick == 3
        assert [f[0] for f in prefix] == [1, 2, 3]

    def test_after_tick_filters_committed_frames(self):
        frames = [(t, 0, "tr", "w") for t in range(1, 8)]
        prefix, tick = contiguous_prefix(frames, after_tick=4)
        assert [f[0] for f in prefix] == [5, 6, 7]
        assert tick == 7

    def test_empty_union_claims_nothing(self):
        assert contiguous_prefix([], after_tick=9) == ([], 9)

    def test_duplicate_tick_is_coverage_not_a_gap(self):
        """A record re-journaled after a crash-replay shows up as a
        duplicate tick; the claim must skip the copy and keep going --
        only a genuinely *missing* tick cuts the prefix."""
        frames = [(t, 0, "tr", "w") for t in (1, 2, 2, 3, 4)]
        prefix, tick = contiguous_prefix(frames, after_tick=0)
        assert tick == 4
        assert [f[0] for f in prefix] == [1, 2, 3, 4]

    def test_duplicate_keeps_first_copy_and_gap_still_cuts(self):
        frames = [
            (1, 0, "tr", "first"),
            (1, 0, "tr", "second"),
            (2, 0, "tr", "w"),
            (4, 0, "tr", "w"),  # 3 is missing: claim ends at 2
        ]
        prefix, tick = contiguous_prefix(frames, after_tick=0)
        assert tick == 2
        assert [f[3] for f in prefix] == ["first", "w"]


# ----------------------------------------------------------------------
# journal scanning: torn tail vs mid-file corruption
# ----------------------------------------------------------------------


class TestScanFrames:
    def write(self, path, frames):
        write_frames(path, frames)
        with open(path, "rb") as fh:
            return bytearray(fh.read())

    def test_clean_file(self, tmp_path):
        path = tmp_path / "wal.bin"
        frames = [(i, 0, f"t{i}", "w" * 20) for i in range(5)]
        self.write(path, frames)
        scan = scan_frames(path)
        assert list(scan.frames) == frames
        assert not scan.torn_tail and not scan.corrupt
        assert scan.bytes_discarded == 0 and scan.frames_salvaged == 0

    def test_torn_tail_is_not_corruption(self, tmp_path):
        path = tmp_path / "wal.bin"
        frames = [(i, 0, f"t{i}", "w" * 20) for i in range(5)]
        blob = self.write(path, frames)
        path.write_bytes(bytes(blob[:-7]))  # crash mid-append
        scan = scan_frames(path)
        assert list(scan.frames) == frames[:4]
        assert scan.torn_tail and not scan.corrupt
        # Torn bytes are not "discarded": that counter flags damage.
        assert scan.bytes_discarded == 0
        # strict mode tolerates a torn tail: it is the expected shape
        # of a crash, not damage.
        assert list(scan_frames(path, strict=True).frames) == frames[:4]

    def corrupt_mid_file(self, path, frames):
        blob = self.write(path, frames)
        # Flip a byte inside frame 1's payload: frames 2+ still follow
        # as valid frames, so this is damage, not a torn tail.
        offset = len(frame_bytes(frames[0])) + 12
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_mid_file_corruption_salvages_the_tail(self, tmp_path):
        path = tmp_path / "wal.bin"
        frames = [(i, 0, f"t{i}", "w" * 30) for i in range(6)]
        self.corrupt_mid_file(path, frames)
        scan = scan_frames(path)
        assert scan.corrupt and not scan.torn_tail
        assert list(scan.frames) == [frames[0]] + frames[2:]
        assert scan.frames_salvaged == 4
        assert scan.bytes_discarded == len(frame_bytes(frames[1]))

    def test_strict_mode_raises_on_corruption(self, tmp_path):
        path = tmp_path / "wal.bin"
        frames = [(i, 0, f"t{i}", "w" * 30) for i in range(6)]
        self.corrupt_mid_file(path, frames)
        with pytest.raises(ValueError, match="mid-file corruption"):
            scan_frames(path, strict=True)

    def test_missing_file_is_empty(self, tmp_path):
        scan = scan_frames(tmp_path / "nope.bin")
        assert scan.frames == () and not scan.corrupt

    def test_wal_frames_warns_on_corruption(self, tmp_path):
        """A corrupted journal must not silently shrink the recovery
        claim: restore paths get a RuntimeWarning naming the damage and
        the re-feed remedy, while the salvaged tail is still served."""
        store = DurableStore(tmp_path)
        for tick in range(1, 7):
            store.append(0, tick, 0, "t", "w" * 30)
        store.flush(0)
        path = store.wal_path(0)
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        first = len(frame_bytes((1, 0, "t", "w" * 30)))
        blob[first + 12] ^= 0xFF  # damage tick 2's frame
        path.write_bytes(bytes(blob))
        fresh = DurableStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="ingested_records"):
            frames = fresh.wal_frames(0, after_tick=0)
        assert [f[0] for f in frames] == [1, 3, 4, 5, 6]
        # The contiguous claim then honestly stops before the hole.
        prefix, tick = contiguous_prefix(frames, after_tick=0)
        assert tick == 1 and [f[0] for f in prefix] == [1]


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


class TestDurableStore:
    def test_journal_append_flush_read(self, tmp_path):
        store = DurableStore(tmp_path)
        store.append(0, 1, 2, "t", "wire-1")
        store.append(0, 2, 2, "t", "wire-2")
        store.append(1, 3, 5, "u", "wire-3")
        # wal_frames flushes the buffered tail first, so the answer is
        # complete without an explicit flush call.
        assert store.wal_frames(0, after_tick=0) == [
            (1, 2, "t", "wire-1"),
            (2, 2, "t", "wire-2"),
        ]
        assert store.wal_frames(0, after_tick=1) == [(2, 2, "t", "wire-2")]
        assert store.wal_frames(1, after_tick=0) == [(3, 5, "u", "wire-3")]
        assert store.wal_frames(2, after_tick=0) == []

    def test_checkpoint_commits_and_resets_journals(self, tmp_path):
        store = DurableStore(tmp_path)
        store.append(0, 1, 0, "t", "w")
        store.flush(0)
        meta = {"epoch": 1, "tick": 1}
        store.checkpoint(meta, {0: ("snap", 0), 1: ("snap", 1)})
        loaded = store.load()
        assert loaded is not None
        got_meta, snapshots = loaded
        assert got_meta == meta
        assert snapshots == {0: ("snap", 0), 1: ("snap", 1)}
        # Journals are reset: the committed snapshot subsumes them.
        assert store.wal_frames(0, after_tick=0) == []
        # A second checkpoint cleans the previous epoch's snapshots.
        store.checkpoint({"epoch": 2, "tick": 5}, {0: ("snap2", 0)})
        assert store.load()[0]["epoch"] == 2
        assert not list(tmp_path.glob("snap-00000001-*.bin"))

    def test_crash_before_commit_leaves_old_checkpoint(self, tmp_path):
        store = DurableStore(tmp_path)
        store.checkpoint({"epoch": 1, "tick": 10}, {0: ("old", 0)})
        # Simulate a crash after the new snapshots hit disk but before
        # the metadata replace: the new files are unreferenced garbage.
        write_frames(store.snapshot_path(2, 0), [("new", 0)])
        meta, snapshots = store.load()
        assert meta["epoch"] == 1
        assert snapshots == {0: ("old", 0)}

    def test_load_without_checkpoint_is_none(self, tmp_path):
        assert DurableStore(tmp_path).load() is None

    def test_durability_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Durability(root=tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError):
            Durability(root=tmp_path, max_recoveries=-1)


# ----------------------------------------------------------------------
# fleet-level recovery
# ----------------------------------------------------------------------


def serial_reference(stream, **kwargs):
    fleet = MonitorFleet(xi=Fraction(3, 2), n_shards=9, batch_size=8, **kwargs)
    fleet.ingest_many(stream)
    ids = sorted({tid for tid, _ in stream})
    return (
        {tid: (fleet.worst_ratio(tid), fleet.is_degraded(tid)) for tid in ids},
        set(fleet.violating_traces()),
    )


def assert_matches_serial(fleet, stream, expected, expected_violating):
    ids = sorted({tid for tid, _ in stream})
    got = {
        tid: (fleet.worst_ratio(tid), fleet.is_degraded(tid)) for tid in ids
    }
    assert got == expected
    assert set(fleet.violating_traces()) == expected_violating
    assert fleet.crashed_shards() == ()


class TestRecovery:
    def make_stream(self, seed=23):
        return list(
            concurrent_workload(
                random.Random(seed), n_traces=24, records_per_trace=(30, 60)
            )
        )

    def test_sigkill_mid_ingest_recovers_bit_identically(self, tmp_path):
        """The headline property: SIGKILL a worker mid-stream; the
        fleet respawns it from snapshot + journal suffix and every
        per-trace result matches the serial fleet exactly, with zero
        crashed shards and zero dropped records."""
        stream = self.make_stream()
        expected, expected_violating = serial_reference(stream)
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=3,
            n_shards=9,
            batch_size=8,
            backend="process",
            wire_batch=16,
            durability=Durability(root=tmp_path, checkpoint_every=300),
        ) as fleet:
            cut = len(stream) // 2
            fleet.ingest_many(stream[:cut])
            os.kill(fleet._backend._processes[1].pid, signal.SIGKILL)
            time.sleep(0.2)
            fleet.ingest_many(stream[cut:])
            assert_matches_serial(fleet, stream, expected, expected_violating)
            assert fleet.dropped_records == 0
            assert fleet._recoveries.get(1, 0) >= 1

    def test_full_restart_resumes_at_ingested_records(self, tmp_path):
        """Kill the whole fleet (abandon it un-shut-down), restore from
        disk, resume the producer at ``fleet.ingested_records`` -- the
        contiguous journal prefix -- and end bit-identical to serial."""
        stream = self.make_stream(seed=31)
        expected, expected_violating = serial_reference(stream)
        cut = (len(stream) * 2) // 3
        fleet = ParallelFleet(
            Fraction(3, 2),
            n_workers=3,
            n_shards=9,
            batch_size=8,
            backend="thread",
            wire_batch=16,
            durability=Durability(root=tmp_path, checkpoint_every=250),
        )
        fleet.ingest_many(stream[:cut])
        # Abandon the fleet without shutdown(): the journals and the
        # last committed checkpoint are all that survives.
        del fleet
        restored = ParallelFleet.restore(tmp_path)
        resume = restored.ingested_records
        # The restored fleet honestly claims some prefix bounded by the
        # checkpoint cadence, never more than it absorbed.
        assert 0 < resume <= cut
        with restored:
            restored.ingest_many(stream[resume:])
            assert_matches_serial(
                restored, stream, expected, expected_violating
            )
            assert restored.ingested_records == len(stream)

    def test_restore_after_clean_shutdown(self, tmp_path):
        stream = self.make_stream(seed=5)
        expected, expected_violating = serial_reference(stream)
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=3,
            n_shards=9,
            batch_size=8,
            backend="thread",
            wire_batch=16,
            durability=Durability(root=tmp_path, checkpoint_every=400),
        ) as fleet:
            fleet.ingest_many(stream)
        # shutdown() checkpoints, so restore resumes at the very end.
        restored = ParallelFleet.restore(tmp_path)
        with restored:
            assert restored.ingested_records == len(stream)
            assert_matches_serial(
                restored, stream, expected, expected_violating
            )

    def test_restore_refuses_missing_and_fresh_refuses_existing(
        self, tmp_path
    ):
        with pytest.raises(FileNotFoundError):
            ParallelFleet.restore(tmp_path / "nowhere")
        stream = self.make_stream(seed=1)
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=2,
            n_shards=8,
            backend="thread",
            durability=Durability(root=tmp_path, checkpoint_every=200),
        ) as fleet:
            fleet.ingest_many(stream[:300])
        # A fresh fleet must not silently overwrite a committed
        # checkpoint -- restoring is an explicit decision.
        with pytest.raises(ValueError, match="restore"):
            ParallelFleet(
                Fraction(3, 2),
                n_workers=2,
                n_shards=8,
                backend="thread",
                durability=Durability(root=tmp_path),
            )

    def test_poison_record_exhausts_recovery_budget(self, tmp_path):
        """A deterministic poison record crashes the worker again on
        every replay; the budget bounds the crash-recover loop and the
        shards end degraded exactly as without durability."""
        from repro.core.events import Event
        from repro.sim.trace import ReceiveRecord
        import zlib

        n_shards, n_workers = 4, 2
        doomed = next(
            f"d{i}"
            for i in range(100)
            if zlib.crc32(f"d{i}".encode()) % n_shards % n_workers == 0
        )
        poison = ReceiveRecord(
            event=Event(0, 7),  # index 7 with no predecessors: ValueError
            time=1.0,
            sender=None,
            send_event=None,
            send_time=None,
            payload=None,
            processed=True,
            sends=(),
        )
        with ParallelFleet(
            n_shards=n_shards,
            n_workers=n_workers,
            batch_size=1,
            backend="thread",
            wire_batch=1,
            durability=Durability(root=tmp_path, max_recoveries=2),
        ) as fleet:
            fleet.ingest(doomed, poison)
            fleet.flush()  # the barrier that discovers the crash
            # The poison was journaled at ingest, so every respawn
            # replays it and dies again; each query against the dead
            # worker burns one recovery attempt until the budget is
            # spent, after which the worker stays dead for good.
            for _ in range(3):
                with pytest.raises(WorkerCrashed):
                    fleet.worst_ratio(doomed)
            assert fleet._recoveries[0] == 2
            assert fleet.crashed_shards() == tuple(
                range(0, n_shards, n_workers)
            )
            assert fleet.dropped_records >= 1

"""Timing and liveness semantics of the worker backpressure handles.

The contract under test: ``WorkerHandle.put``/``get`` honor their
timeout against the wall clock (a ``time.monotonic()`` deadline, not a
count of probe slices -- scheduler jitter must not stretch the
effective timeout), and a dead worker always surfaces as
:class:`WorkerCrashed`, never as ``TimeoutError``, even when the
deadline has already expired -- the crash is the truer diagnosis.
"""

import queue
import threading
import time

import pytest

from repro.runtime.backends import WorkerCrashed, WorkerHandle


def handle(alive=lambda: True, inbox_size=1):
    inbox = queue.Queue(maxsize=inbox_size)
    outbox = queue.Queue()
    return WorkerHandle(7, inbox, outbox, alive, lambda t: None)


# How much scheduler slop we tolerate on top of the nominal timeout.
# One probe interval is 0.05s; the old slice-counting implementation
# could drift by an unbounded multiple of it under jitter.
TOLERANCE = 0.25


class TestPutTimeout:
    @pytest.mark.parametrize("timeout", [0.1, 0.25, 0.4])
    def test_timeout_honored_within_tolerance(self, timeout):
        h = handle()
        h.inbox.put(("filler",))  # inbox full, worker alive
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            h.put(("msg",), timeout=timeout)
        elapsed = time.monotonic() - start
        assert timeout <= elapsed < timeout + TOLERANCE

    def test_expired_deadline_prefers_crash_over_timeout(self):
        h = handle(alive=lambda: False)
        h.inbox.put(("filler",))
        # Deadline expires on the first probe; the dead worker must
        # still surface as a crash, not as a timeout.
        with pytest.raises(WorkerCrashed):
            h.put(("msg",), timeout=0.0)

    def test_death_during_wait_raises_crashed(self):
        dead = threading.Event()
        h = handle(alive=lambda: not dead.is_set())
        h.inbox.put(("filler",))
        threading.Timer(0.1, dead.set).start()
        start = time.monotonic()
        with pytest.raises(WorkerCrashed):
            h.put(("msg",), timeout=5.0)
        # Detected at the next probe, nowhere near the 5s timeout.
        assert time.monotonic() - start < 1.0

    def test_put_succeeds_when_space_frees_up(self):
        h = handle()
        h.inbox.put(("filler",))
        threading.Timer(0.1, h.inbox.get).start()
        h.put(("msg",), timeout=5.0)  # must not raise


class TestGetTimeout:
    @pytest.mark.parametrize("timeout", [0.1, 0.3])
    def test_timeout_honored_within_tolerance(self, timeout):
        h = handle()
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            h.get(timeout=timeout)
        elapsed = time.monotonic() - start
        assert timeout <= elapsed < timeout + TOLERANCE

    def test_dead_worker_grace_read_salvages_reply(self):
        # The worker emitted its last reply and exited: the reply must
        # win over the crash (a process queue's feeder can lag).
        h = handle(alive=lambda: False)
        h.outbox.put(("reply", 1, ("ok", None), [], (), 0, 0))
        assert h.get(timeout=0.0)[0] == "reply"

    def test_dead_worker_empty_outbox_raises_crashed(self):
        h = handle(alive=lambda: False)
        start = time.monotonic()
        with pytest.raises(WorkerCrashed):
            h.get(timeout=10.0)
        assert time.monotonic() - start < 1.0  # no 10s hang

    def test_death_during_wait_raises_crashed(self):
        dead = threading.Event()
        h = handle(alive=lambda: not dead.is_set())
        threading.Timer(0.1, dead.set).start()
        with pytest.raises(WorkerCrashed):
            h.get(timeout=5.0)

"""Tests for the network ingestion plane.

Bottom up: the frame codec (CRC rejection, torn streams), the delta
store/view pair (atomic subscribe, gap detection, reconstruction), the
front plumbing on :class:`ParallelFleet` (shard subsets, interleaved
tick spaces, wire-row ingestion), and the full server: multi-producer
ingest over real sockets bit-identical to the serial fleet,
exactly-once resume across killed connections, credit-window
backpressure, and subscribers reconstructing the fleet's aggregates
from the delta stream alone.
"""

import random
import socket
import threading
from fractions import Fraction

import pytest

from repro.analysis.fleet import MonitorFleet
from repro.runtime import ParallelFleet
from repro.runtime.net import (
    DeltaStore,
    DeltaSubscriber,
    DeltaView,
    FrameSocket,
    IngestServer,
    ProducerClient,
    ProtocolError,
)
from repro.runtime.net.wire import PROTOCOL_VERSION, frame_bytes
from repro.runtime import codec
from repro.runtime.shard import shard_index_of
from repro.scenarios.generators import concurrent_workload

XI = Fraction(4)


def workload(seed=1, n_traces=24, **kw):
    kw.setdefault("records_per_trace", (30, 60))
    return list(
        concurrent_workload(random.Random(seed), n_traces=n_traces, **kw)
    )


def serial_answers(stream, n_shards=8, batch_size=16):
    fleet = MonitorFleet(xi=XI, n_shards=n_shards, batch_size=batch_size)
    fleet.ingest_many(stream)
    ids = sorted({tid for tid, _ in stream}, key=str)
    return (
        {tid: fleet.worst_ratio(tid) for tid in ids},
        {tid: fleet.is_degraded(tid) for tid in ids},
        set(fleet.violating_traces()),
    )


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------


class TestFrameSocket:
    def pair(self):
        a, b = socket.socketpair()
        return FrameSocket(a), FrameSocket(b)

    def test_round_trip_and_eof(self):
        left, right = self.pair()
        frames = [("hello", 1, "produce", "p"), ("produce", 1, ((1, 2),))]
        for frame in frames:
            left.send(frame)
        left.sock.close()
        assert [right.recv(), right.recv()] == frames
        assert right.recv() is None  # clean EOF between frames
        right.close()

    def test_split_delivery_reassembles(self):
        left, right = self.pair()
        payload = ("produce", 7, tuple((f"t{i}", ("x",) * 4) for i in range(50)))
        blob = frame_bytes(payload)
        for i in range(0, len(blob), 13):  # drip-feed odd-sized chunks
            left.sock.sendall(blob[i : i + 13])
        assert right.recv() == payload
        left.close(), right.close()

    def test_corrupt_crc_raises(self):
        left, right = self.pair()
        blob = bytearray(frame_bytes(("ack", 3)))
        blob[-1] ^= 0xFF
        left.sock.sendall(bytes(blob))
        with pytest.raises(ProtocolError, match="CRC"):
            right.recv()
        left.close(), right.close()

    def test_eof_mid_frame_raises(self):
        left, right = self.pair()
        left.sock.sendall(frame_bytes(("ack", 3))[:-2])
        left.sock.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            right.recv()
        right.close()


# ----------------------------------------------------------------------
# delta store / view
# ----------------------------------------------------------------------


class TestDeltas:
    def test_snapshot_plus_deltas_reconstruct(self):
        store = DeltaStore()
        store.update_ratios({"a": Fraction(1, 2), "b": None})
        store.publish()  # published before subscribing: snapshot covers it
        frames = []
        view = DeltaView()
        view.apply(store.subscribe(frames.append))
        store.update_ratios({"a": Fraction(3, 2), "c": Fraction(5)})
        store.extend_violations([(7, "c")])
        store.publish()
        store.extend_violations([(7, "c"), (9, "a")])  # dup row dropped
        store.close()
        for frame in frames:
            view.apply(frame)
        assert view.closed
        assert view.ratios == {
            "a": Fraction(3, 2),
            "b": None,
            "c": Fraction(5),
        }
        assert view.violation_feed() == ((7, "c"), (9, "a"))
        assert view.violating_traces() == ("c", "a")
        assert view.worst_ratio_histogram() == {
            Fraction(3, 2): 1,
            None: 1,
            Fraction(5): 1,
        }

    def test_gap_detection(self):
        view = DeltaView()
        view.apply(("snapshot", 3, (), ()))
        with pytest.raises(ValueError, match="gap"):
            view.apply(("delta", 5, (), ()))
        with pytest.raises(ValueError, match="before snapshot"):
            DeltaView().apply(("delta", 1, (), ()))

    def test_publish_without_changes_is_noop(self):
        store = DeltaStore()
        frames = []
        store.subscribe(frames.append)
        assert store.publish() is None
        assert frames == []

    def test_subscribe_after_close_gets_end(self):
        store = DeltaStore()
        store.update_ratios({"a": Fraction(2)})
        store.close()
        frames = []
        view = DeltaView()
        view.apply(store.subscribe(frames.append))
        for frame in frames:
            view.apply(frame)
        assert view.closed
        # The final publish ran inside close(), so the late snapshot
        # already carries the state.
        assert view.ratios == {"a": Fraction(2)}


# ----------------------------------------------------------------------
# the front plumbing on ParallelFleet
# ----------------------------------------------------------------------


class TestFrontPlumbing:
    def test_shard_subset_rejects_foreign_trace(self):
        with ParallelFleet(
            XI,
            n_workers=1,
            n_shards=8,
            backend="thread",
            shard_subset=(0, 2, 4, 6),
            tick_start=1,
            tick_step=2,
        ) as fleet:
            stream = workload(n_traces=12)
            mine = [
                (tid, rec)
                for tid, rec in stream
                if shard_index_of(tid, 8) % 2 == 0
            ]
            foreign = next(
                tid
                for tid, _ in stream
                if shard_index_of(tid, 8) % 2 == 1
            )
            fleet.ingest_many(mine)
            with pytest.raises(ValueError, match="does not own"):
                fleet.ingest(foreign, stream[0][1])
            # A rejected record burns neither a tick nor a count.
            assert fleet.ingested_records == len(mine)

    def test_subset_validation(self):
        with pytest.raises(ValueError, match="within"):
            ParallelFleet(XI, n_workers=1, n_shards=4, shard_subset=(5,))
        with pytest.raises(ValueError, match="tick_step"):
            ParallelFleet(XI, n_workers=1, tick_step=0)

    def test_interleaved_fronts_match_serial_and_merge_feeds(self):
        """Two fronts over disjoint shard subsets and interleaved tick
        ranges: per-trace ratios bit-identical to serial, and the two
        violation feeds merge on globally unique ticks."""
        stream = workload(seed=3, n_traces=30)
        ratios, degraded, violating = serial_answers(stream)
        fronts = [
            ParallelFleet(
                XI,
                n_workers=1,
                n_shards=8,
                batch_size=16,
                backend="thread",
                shard_subset=tuple(s for s in range(8) if s % 2 == f),
                tick_start=f + 1,
                tick_step=2,
            )
            for f in range(2)
        ]
        try:
            for tid, rec in stream:
                front = shard_index_of(tid, 8) % 2
                fronts[front].ingest(tid, rec)
            for front in fronts:
                front.flush()
            got_ratios = {}
            got_degraded = {}
            rows = []
            for front in fronts:
                got_ratios.update(dict(front.all_ratios()))
                rows.extend(front.violation_feed())
            for tid in got_ratios:
                got_degraded[tid] = fronts[
                    shard_index_of(tid, 8) % 2
                ].is_degraded(tid)
            assert got_ratios == ratios
            assert got_degraded == degraded
            ticks = [t for t, _ in rows]
            assert len(ticks) == len(set(ticks))  # globally unique
            merged = tuple(
                dict.fromkeys(
                    tid
                    for _t, tid in sorted(
                        rows, key=lambda n: (n[0], str(n[1]))
                    )
                )
            )
            assert set(merged) == violating
        finally:
            for front in fronts:
                front.shutdown()

    def test_ingest_wire_matches_ingest(self):
        stream = workload(seed=9, n_traces=10)
        with ParallelFleet(
            XI, n_workers=1, n_shards=8, backend="thread"
        ) as plain, ParallelFleet(
            XI, n_workers=1, n_shards=8, backend="thread"
        ) as wired:
            plain.ingest_many(stream)
            wired.ingest_wire_many(
                [(tid, codec.encode_record(rec)) for tid, rec in stream]
            )
            assert dict(plain.all_ratios()) == dict(wired.all_ratios())
            assert wired.ingested_records == len(stream)

    def test_durability_refuses_interleaved_ticks(self, tmp_path):
        with pytest.raises(ValueError, match="tick"):
            ParallelFleet(
                XI,
                n_workers=1,
                n_shards=8,
                backend="thread",
                durability=str(tmp_path),
                tick_step=2,
            )


# ----------------------------------------------------------------------
# the server, end to end
# ----------------------------------------------------------------------


def drive(server, stream, n_producers=2, batch=7, **client_kw):
    """Feed ``stream`` through ``n_producers`` clients, each owning a
    disjoint set of traces (the single-writer-per-trace discipline)."""
    ids = sorted({tid for tid, _ in stream}, key=str)
    owner = {tid: i % n_producers for i, tid in enumerate(ids)}
    clients = [
        ProducerClient(
            server.address, producer_id=f"p{i}", batch=batch, **client_kw
        )
        for i in range(n_producers)
    ]
    try:
        for tid, rec in stream:
            clients[owner[tid]].send(tid, rec)
    finally:
        for client in clients:
            client.close()


class TestIngestServer:
    def test_multi_producer_matches_serial(self):
        stream = workload(seed=1, n_traces=24)
        ratios, degraded, violating = serial_answers(stream)
        ids = sorted(ratios, key=str)
        with IngestServer(
            XI,
            n_fronts=2,
            workers_per_front=1,
            n_shards=8,
            batch_size=16,
            backend="thread",
        ) as server:
            drive(server, stream, n_producers=3)
            server.flush()
            assert {
                tid: server.worst_ratio(tid) for tid in ids
            } == ratios
            assert {
                tid: server.is_degraded(tid) for tid in ids
            } == degraded
            assert set(server.violating_traces()) == violating
            assert server.ingested_records == len(stream)
            assert server.front_errors() == ()
            report = server.report()
            assert report.records == len(stream)
            assert set(report.violating_traces) == violating
            assert len(report.shards) == 8

    def test_delta_subscriber_reconstructs_aggregates(self):
        stream = workload(seed=4, n_traces=20)
        with IngestServer(
            XI, n_fronts=2, n_shards=8, batch_size=16, backend="thread"
        ) as server:
            sub = DeltaSubscriber(server.address, name="dash")
            drive(server, stream)
            server.flush()
            hist = server.worst_ratio_histogram()
            topk = server.top_k_riskiest(5)
            ratios = dict(server.all_ratios())
            feed = server.violation_feed()
            violating = server.violating_traces()
        # Server fully stopped: the view is built from the stream alone.
        view = sub.run_to_end()
        sub.close()
        assert view.ratios == ratios
        assert view.worst_ratio_histogram() == hist
        assert view.top_k_riskiest(5) == topk
        assert view.violation_feed() == feed
        assert view.violating_traces() == violating

    def test_reconnect_resumes_exactly_once(self):
        stream = workload(seed=7, n_traces=16)
        ratios, _degraded, _violating = serial_answers(stream)
        with IngestServer(
            XI, n_fronts=2, n_shards=8, batch_size=16, backend="thread"
        ) as server:
            client = ProducerClient(
                server.address, producer_id="flaky", batch=5
            )
            kills = {len(stream) // 4, len(stream) // 2}
            for i, (tid, rec) in enumerate(stream):
                client.send(tid, rec)
                if i in kills:
                    # The network dies under the producer; the next
                    # ship reconnects and replays the unacked tail.
                    client._fs.sock.shutdown(socket.SHUT_RDWR)
            client.close()
            server.flush()
            assert server.ingested_records == len(stream)  # exactly once
            got = {tid: server.worst_ratio(tid) for tid in ratios}
            assert got == ratios

    def test_unix_socket_listener(self, tmp_path):
        stream = workload(seed=2, n_traces=8)
        ratios, _d, _v = serial_answers(stream)
        path = str(tmp_path / "ingest.sock")
        with IngestServer(
            XI,
            n_fronts=2,
            n_shards=8,
            batch_size=16,
            backend="thread",
            host=None,
            unix_path=path,
        ) as server:
            assert server.address is None
            with ProducerClient(path, producer_id="p0", batch=9) as client:
                for tid, rec in stream:
                    client.send(tid, rec)
            assert {
                tid: server.worst_ratio(tid) for tid in ratios
            } == ratios

    def test_credit_window_bounds_unacked(self):
        stream = workload(seed=5, n_traces=12)
        with IngestServer(
            XI,
            n_fronts=1,
            n_shards=8,
            batch_size=16,
            backend="thread",
            credit_window=2,
        ) as server:
            client = ProducerClient(
                server.address, producer_id="p0", batch=3
            )
            peak = 0
            for tid, rec in stream:
                client.send(tid, rec)
                peak = max(peak, client.unacked_frames)
            client.flush()
            assert peak <= 2  # the server's window, honored client-side
            assert client.unacked_frames == 0
            assert client.acked_frames > 0
            client.close()

    def test_bad_hello_and_version_mismatch(self):
        with IngestServer(
            XI, n_fronts=1, n_shards=8, backend="thread"
        ) as server:
            sock = socket.create_connection(server.address, timeout=10)
            fs = FrameSocket(sock)
            fs.send(("nonsense",))
            assert fs.recv() == ("error", "expected hello")
            fs.close()
            sock = socket.create_connection(server.address, timeout=10)
            fs = FrameSocket(sock)
            fs.send(("hello", PROTOCOL_VERSION + 1, "produce", "p"))
            kind, message = fs.recv()
            assert kind == "error" and "protocol" in message
            fs.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="front"):
            IngestServer(XI, n_fronts=0)
        with pytest.raises(ValueError, match="cover"):
            IngestServer(XI, n_fronts=4, workers_per_front=2, n_shards=4)
        with pytest.raises(ValueError, match="listen"):
            IngestServer(XI, host=None)

    def test_concurrent_producers_threads(self):
        """Producers on real threads, interleaving arbitrarily: the
        per-trace single-writer discipline is all determinism needs."""
        stream = workload(seed=11, n_traces=20)
        ratios, _d, violating = serial_answers(stream)
        ids = sorted(ratios, key=str)
        owner = {tid: i % 3 for i, tid in enumerate(ids)}
        with IngestServer(
            XI, n_fronts=2, n_shards=8, batch_size=16, backend="thread"
        ) as server:
            def produce(i):
                with ProducerClient(
                    server.address, producer_id=f"p{i}", batch=6
                ) as client:
                    for tid, rec in stream:
                        if owner[tid] == i:
                            client.send(tid, rec)

            threads = [
                threading.Thread(target=produce, args=(i,))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert {
                tid: server.worst_ratio(tid) for tid in ids
            } == ratios
            assert set(server.violating_traces()) == violating


class TestMixedKernelFronts:
    """Cross-kernel bit identity through the network plane: fronts on
    different detection kernels, interleaved tick spaces, and the full
    socket server must all reproduce the ``py_object`` serial answers
    exactly (the kernel contract of :mod:`repro.core.kernel`)."""

    def test_mixed_kernel_fronts_interleave_bit_identically(self):
        # Front 0 runs flat_int, front 1 runs py_object: the merged
        # answers and violation feed must match the uniform serial
        # fleet, tick interleaving and all.
        stream = workload(seed=21, n_traces=26)
        ratios, degraded, violating = serial_answers(stream)
        fronts = [
            ParallelFleet(
                XI,
                n_workers=1,
                n_shards=8,
                batch_size=16,
                backend="thread",
                shard_subset=tuple(s for s in range(8) if s % 2 == f),
                tick_start=f + 1,
                tick_step=2,
                kernel=("flat_int", "py_object")[f],
            )
            for f in range(2)
        ]
        try:
            for tid, rec in stream:
                fronts[shard_index_of(tid, 8) % 2].ingest(tid, rec)
            for front in fronts:
                front.flush()
            got_ratios = {}
            rows = []
            for front in fronts:
                got_ratios.update(dict(front.all_ratios()))
                rows.extend(front.violation_feed())
            assert got_ratios == ratios
            for tid in got_ratios:
                assert (
                    fronts[shard_index_of(tid, 8) % 2].is_degraded(tid)
                    == degraded[tid]
                )
            ticks = [t for t, _ in rows]
            assert len(ticks) == len(set(ticks))
            assert {tid for _t, tid in rows} == violating
        finally:
            for front in fronts:
                front.shutdown()

    def test_server_on_flat_int_matches_serial_over_sockets(self):
        # The whole ingestion plane -- framing, credit windows, sharded
        # fronts -- with every front's workers on the flat kernel.
        stream = workload(seed=22, n_traces=20)
        ratios, _degraded, violating = serial_answers(stream)
        ids = sorted({tid for tid, _ in stream}, key=str)
        with IngestServer(
            XI,
            n_fronts=2,
            batch_size=16,
            kernel="flat_int",
        ) as server:
            drive(server, stream)
            assert {
                tid: server.worst_ratio(tid) for tid in ids
            } == ratios
            assert set(server.violating_traces()) == violating


class TestColumnarWire:
    """Mixed-version wire compatibility for columnar produce frames."""

    def test_mixed_producers_match_serial(self):
        """Old-style row producers and columnar producers interleaving
        on the same server must agree with the serial fleet -- the
        frame shape is transport, not semantics."""
        stream = workload(seed=21, n_traces=18)
        ratios, degraded, violating = serial_answers(stream)
        ids = sorted(ratios, key=str)
        owner = {tid: i % 3 for i, tid in enumerate(ids)}
        with IngestServer(
            XI, n_fronts=2, n_shards=8, batch_size=16, backend="thread"
        ) as server:
            clients = [
                ProducerClient(
                    server.address,
                    producer_id=f"p{i}",
                    batch=7,
                    columnar=(i % 2 == 0),  # p0, p2 columnar; p1 rows
                )
                for i in range(3)
            ]
            try:
                for tid, rec in stream:
                    clients[owner[tid]].send(tid, rec)
            finally:
                for client in clients:
                    client.close()
            server.flush()
            assert {
                tid: server.worst_ratio(tid) for tid in ids
            } == ratios
            assert {
                tid: server.is_degraded(tid) for tid in ids
            } == degraded
            assert set(server.violating_traces()) == violating
            assert server.ingested_records == len(stream)
            assert server.front_errors() == ()

    def test_ragged_columnar_frame_rejected(self):
        """A columnar frame whose id and record columns disagree in
        length must draw an error frame, not desynchronize a front."""
        record = workload(seed=1, n_traces=1)[0][1]
        with IngestServer(
            XI, n_fronts=1, n_shards=8, backend="thread"
        ) as server:
            sock = socket.create_connection(server.address, timeout=10)
            fs = FrameSocket(sock)
            fs.send(("hello", PROTOCOL_VERSION, "produce", "evil"))
            assert fs.recv()[0] == "welcome"
            fs.send(
                (
                    "produce",
                    1,
                    (("t1", "t2"), (codec.encode_record(record),)),
                    "cols",
                )
            )
            kind, message = fs.recv()
            assert kind == "error" and "ragged" in message
            fs.close()

    def test_unknown_produce_mode_rejected(self):
        record = workload(seed=1, n_traces=1)[0][1]
        with IngestServer(
            XI, n_fronts=1, n_shards=8, backend="thread"
        ) as server:
            sock = socket.create_connection(server.address, timeout=10)
            fs = FrameSocket(sock)
            fs.send(("hello", PROTOCOL_VERSION, "produce", "odd"))
            assert fs.recv()[0] == "welcome"
            fs.send(
                ("produce", 1, [("t1", codec.encode_record(record))], "zst")
            )
            kind, message = fs.recv()
            assert kind == "error" and "mode" in message
            fs.close()

"""Shard-engine lockstep tests for columnar batch ingestion.

``ShardGroup.ingest_batch_columnar`` promises everything observable --
per-trace worst ratios, degraded flags, violation merge order, flush
cadence, oracle-call counts, live-event accounting -- bit-identical to
``ingest_batch`` over the same wire rows, including the regimes where
it must *leave* the zero-object fast path: metadata-free degraded
traces, traces reopened after retirement, and batches interleaving the
two ingest surfaces on one trace.
"""

import random
from fractions import Fraction

import pytest

from repro.runtime import codec
from repro.runtime.shard import ShardGroup, shard_index_of
from repro.scenarios.generators import (
    concurrent_workload,
    strip_sends_metadata,
)

XI = Fraction(3)
N_SHARDS = 4


def wire_stream(seed=1, n_traces=24, metadata_free=False, **kw):
    kw.setdefault("records_per_trace", (20, 40))
    stream = list(
        concurrent_workload(random.Random(seed), n_traces=n_traces, **kw)
    )
    if metadata_free:
        by_trace = {}
        for tid, record in stream:
            by_trace.setdefault(tid, []).append(record)
        stripped = {
            tid: iter(strip_sends_metadata(records))
            for tid, records in by_trace.items()
        }
        stream = [(tid, next(stripped[tid])) for tid, _ in stream]
    return [
        (tick, tid, codec.encode_record(record))
        for tick, (tid, record) in enumerate(stream, 1)
    ]


def shard_batches(rows, wire_batch=32):
    """Cut an interleaved stream into per-shard wire batches, exactly
    as the parallel dispatcher does."""
    buffers: dict[int, list[tuple]] = {}
    out = []
    for row in rows:
        shard = shard_index_of(row[1], N_SHARDS)
        pending = buffers.setdefault(shard, [])
        pending.append(row)
        if len(pending) >= wire_batch:
            out.append((shard, pending))
            buffers[shard] = []
    for shard, pending in sorted(buffers.items()):
        if pending:
            out.append((shard, pending))
    return out


def make_group(**kw):
    kw.setdefault("xi", XI)
    kw.setdefault("batch_size", 8)
    return ShardGroup(range(N_SHARDS), **kw)


def feed_object(group, shard, rows):
    group.ingest_batch(shard, codec.decode_records(rows))


def feed_columnar(group, shard, rows):
    ticks, ids, cols = codec.decode_records_columnar(rows)
    group.ingest_batch_columnar(shard, ticks, ids, cols)


def observables(group, rows):
    ids = sorted({tid for _, tid, _ in rows}, key=str)
    return {
        "ratios": {
            tid: group.worst_ratio(shard_index_of(tid, N_SHARDS), tid)
            for tid in ids
        },
        "degraded": {
            tid: group.is_degraded(shard_index_of(tid, N_SHARDS), tid)
            for tid in ids
        },
        "violations": list(group.violations),
        "flushes": [
            (s.index, s.flushes, s.records) for s in group.shards.values()
        ],
        "oracle_calls": sum(
            state.monitor.oracle_calls
            for shard in group.shards.values()
            for state in shard.traces.values()
        ),
        "live_events": group.live_events,
        "stats": group.shard_stats(),
    }


def assert_groups_agree(rows, drive_obj, drive_col, **group_kw):
    obj_group = make_group(**group_kw)
    col_group = make_group(**group_kw)
    drive_obj(obj_group)
    drive_col(col_group)
    obj_group.flush_all()
    col_group.flush_all()
    obj = observables(obj_group, rows)
    col = observables(col_group, rows)
    assert col["ratios"] == obj["ratios"]
    assert col["degraded"] == obj["degraded"]
    assert col["violations"] == obj["violations"], "violation merge order"
    assert col["flushes"] == obj["flushes"], "flush cadence"
    assert col["oracle_calls"] == obj["oracle_calls"]
    assert col["live_events"] == obj["live_events"]
    assert col["stats"] == obj["stats"]
    return obj


class TestShardLockstep:
    @pytest.mark.parametrize("wire_batch", (8, 32, 128))
    def test_columnar_matches_object_ingest(self, wire_batch):
        rows = wire_stream(seed=5)
        batches = shard_batches(rows, wire_batch)

        def obj(group):
            for shard, chunk in batches:
                feed_object(group, shard, chunk)

        def col(group):
            for shard, chunk in batches:
                feed_columnar(group, shard, chunk)

        result = assert_groups_agree(rows, obj, col)
        assert result["violations"], "workload must violate Xi=3"

    def test_metadata_free_degraded_traces_agree(self):
        """Stripped sends metadata degrades traces (forgotten edges);
        the columnar flush must fall back to the object path for them
        and still agree on every flag and ratio."""
        rows = wire_stream(seed=9, metadata_free=True)
        batches = shard_batches(rows)

        def obj(group):
            for shard, chunk in batches:
                feed_object(group, shard, chunk)

        def col(group):
            for shard, chunk in batches:
                feed_columnar(group, shard, chunk)

        result = assert_groups_agree(
            rows, obj, col, event_budget=300, compact_threshold=3.0
        )
        assert any(result["degraded"].values()), (
            "workload must exercise the degraded fallback"
        )

    def test_mixed_surfaces_interleave_on_one_group(self):
        """Alternating object and columnar batches into the *same*
        group -- the mid-stream fallback shape -- must match a pure
        object-path group."""
        rows = wire_stream(seed=3)
        batches = shard_batches(rows, 16)

        def obj(group):
            for shard, chunk in batches:
                feed_object(group, shard, chunk)

        def mixed(group):
            for k, (shard, chunk) in enumerate(batches):
                if k % 2:
                    feed_object(group, shard, chunk)
                else:
                    feed_columnar(group, shard, chunk)

        assert_groups_agree(rows, obj, mixed)

    def test_reopened_trace_takes_fallback_and_agrees(self):
        """A trace closed mid-stream and reopened by later records is
        permanently degraded; columnar ingestion of its later batches
        must agree with object ingestion record for record."""
        rows = wire_stream(seed=7, n_traces=6)
        cut = len(rows) // 2
        victim = rows[0][1]
        shard = shard_index_of(victim, N_SHARDS)

        def drive(feed):
            def go(group):
                for s, chunk in shard_batches(rows[:cut], 16):
                    feed(group, s, chunk)
                group.flush_trace(shard, victim)
                group.close(shard, victim)
                for s, chunk in shard_batches(rows[cut:], 16):
                    feed(group, s, chunk)

            return go

        result = assert_groups_agree(
            rows, drive(feed_object), drive(feed_columnar)
        )
        assert result["degraded"][victim], "victim must reopen degraded"

    def test_ragged_columnar_batch_rejected(self):
        group = make_group()
        rows = wire_stream(seed=1, n_traces=2)[:4]
        ticks, ids, cols = codec.decode_records_columnar(rows)
        with pytest.raises(ValueError, match="ragged columnar batch"):
            group.ingest_batch_columnar(0, ticks[:-1], ids, cols)
        with pytest.raises(ValueError, match="ragged columnar batch"):
            group.ingest_batch_columnar(0, ticks, ids[:-1], cols)

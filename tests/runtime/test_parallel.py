"""Differential tests: ParallelFleet vs the serial MonitorFleet.

The acceptance property of the parallel runtime: for every workload in
the sweep, every per-trace worst ratio and degradation flag -- and the
*set* of violating traces -- is bit-identical between the serial fleet
and the parallel fleet on both backends.  Around it: deterministic
violation ordering, budget apportionment/rebalancing, crash
containment, and the lifecycle/validation surface.
"""

import random
from collections import defaultdict
from fractions import Fraction

import pytest

from repro.analysis.fleet import MonitorFleet
from repro.analysis.online import OnlineAbcMonitor
from repro.core.kernel import available_kernels
from repro.runtime import MonitorSpec, ParallelFleet, TraceSummary, WorkerCrashed
from repro.scenarios.generators import (
    concurrent_workload,
    profiled_trace_records,
    relay_chain_workload,
    strip_sends_metadata,
)
from repro.sim.trace import ReceiveRecord

BACKENDS = ("thread", "process")


def by_trace(stream):
    per = defaultdict(list)
    for trace_id, record in stream:
        per[trace_id].append(record)
    return per


def standalone_ratio(records):
    monitor = OnlineAbcMonitor()
    for record in records:
        monitor.observe(record)
    return monitor.worst_ratio


class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "seed,batch_size,n_shards,n_workers,budget,wire_batch",
        [
            (0, 1, 2, 2, None, 1),
            (1, 8, 8, 2, None, 32),
            (2, 16, 8, 3, 400, 64),
            (3, 4, 6, 2, 150, 16),
        ],
    )
    def test_ratios_bit_identical_to_serial(
        self, backend, seed, batch_size, n_shards, n_workers, budget, wire_batch
    ):
        stream = list(
            concurrent_workload(
                random.Random(seed), n_traces=12, records_per_trace=(15, 45)
            )
        )
        serial = MonitorFleet(
            n_shards=n_shards, batch_size=batch_size, event_budget=budget
        )
        serial.ingest_many(stream)
        with ParallelFleet(
            n_shards=n_shards,
            n_workers=n_workers,
            batch_size=batch_size,
            event_budget=budget,
            backend=backend,
            wire_batch=wire_batch,
        ) as fleet:
            fleet.ingest_many(stream)
            for trace_id, records in by_trace(stream).items():
                assert fleet.worst_ratio(trace_id) == serial.worst_ratio(
                    trace_id
                ), trace_id
                assert fleet.is_degraded(trace_id) == serial.is_degraded(
                    trace_id
                )
            report = fleet.report()
            assert report.records == len(stream)
            assert report.degraded_traces == 0
            assert report.crashed_shards == ()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_violation_sets_match_serial(self, backend):
        stream = list(
            concurrent_workload(
                random.Random(6),
                n_traces=10,
                records_per_trace=(30, 60),
                profile_weights={"storm": 0.5, "burst": 0.3, "idler": 0.2},
            )
        )
        xi = Fraction(2)
        serial = MonitorFleet(xi=xi, n_shards=4, batch_size=8)
        serial.ingest_many(stream)
        serial_violating = set(serial.violating_traces())
        assert serial_violating, "the sweep needs actual violations"
        hits = []
        with ParallelFleet(
            xi=xi,
            n_shards=4,
            n_workers=2,
            batch_size=8,
            backend=backend,
            wire_batch=16,
            on_violation=lambda tid, w: hits.append((tid, w)),
        ) as fleet:
            fleet.ingest_many(stream)
            assert set(fleet.violating_traces()) == serial_violating
            # Callbacks carried genuine witnesses for exactly that set.
            assert {tid for tid, _w in hits} == serial_violating
            for _tid, witness in hits:
                assert witness.relevant and witness.ratio >= xi
            # And the merged report agrees.
            assert (
                set(fleet.report().violating_traces) == serial_violating
            )

    def test_violation_order_is_deterministic_across_runs(self):
        stream = list(
            concurrent_workload(
                random.Random(8),
                n_traces=8,
                records_per_trace=(30, 60),
                profile_weights={"storm": 0.7, "burst": 0.3},
            )
        )

        def run():
            order = []
            with ParallelFleet(
                xi=Fraction(2),
                n_shards=4,
                n_workers=2,
                batch_size=8,
                backend="thread",
                wire_batch=16,
                on_violation=lambda tid, _w: order.append(tid),
            ) as fleet:
                fleet.ingest_many(stream)
                listed = fleet.violating_traces()
            return order, listed

        first_order, first_listed = run()
        second_order, second_listed = run()
        assert first_listed
        assert first_order == second_order
        assert first_listed == second_listed
        # The merged order is the (tick, trace id) sort, which the
        # callback firing respects batch by batch.
        assert tuple(dict.fromkeys(first_order)) == first_listed


class TestBudget:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_respected_with_exact_ratios(self, backend):
        stream = list(
            concurrent_workload(
                random.Random(9),
                n_traces=12,
                records_per_trace=(30, 60),
                profile_weights={"burst": 0.6, "idler": 0.4},
            )
        )
        budget = 240
        with ParallelFleet(
            n_shards=8,
            n_workers=2,
            batch_size=8,
            event_budget=budget,
            backend=backend,
            wire_batch=32,
        ) as fleet:
            fleet.ingest_many(stream)
            report = fleet.report()
            assert report.budget_overruns == 0
            assert report.peak_live_events <= budget
            assert report.live_events <= budget
            assert report.tombstoned_events > 0
            for trace_id, records in by_trace(stream).items():
                assert fleet.worst_ratio(trace_id) == standalone_ratio(
                    records
                )
                assert not fleet.is_degraded(trace_id)

    def test_rebalancing_tracks_skewed_demand(self):
        """All traffic lands on one worker's shards: the even initial
        split is too small for it, so only demand-proportional
        rebalancing keeps the overloaded worker's share viable.  The
        frozen split must end with a visibly skewed share; the
        rebalanced run must shift budget towards the loaded worker."""
        n_shards, n_workers = 4, 2
        # Craft ids that all route to worker 0 (shards 0 and 2).
        import zlib

        rng = random.Random(3)
        ids = []
        probe = 0
        while len(ids) < 6:
            tid = f"skew-{probe}"
            probe += 1
            if zlib.crc32(tid.encode()) % n_shards % n_workers == 0:
                ids.append(tid)
        streams = {
            tid: relay_chain_workload(rng, 120) for tid in ids
        }
        budget = 200

        def run(rebalance):
            with ParallelFleet(
                n_shards=n_shards,
                n_workers=n_workers,
                batch_size=16,
                event_budget=budget,
                backend="thread",
                wire_batch=32,
                rebalance=rebalance,
            ) as fleet:
                iters = {tid: iter(records) for tid, records in streams.items()}
                alive = dict(iters)
                step = 0
                while alive:
                    for tid in list(alive):
                        record = next(alive[tid], None)
                        if record is None:
                            del alive[tid]
                        else:
                            fleet.ingest(tid, record)
                    step += 1
                    if step % 20 == 0:
                        fleet.flush()  # barrier: rebalance opportunity
                report = fleet.report()
                shares = dict(fleet._shares)
                return report, shares

        report, shares = run(rebalance=True)
        # The loaded worker's share must have grown past the even split.
        assert shares[0] > budget // n_workers
        assert shares[0] + shares[1] <= budget
        assert report.peak_live_events <= budget
        for tid, records in streams.items():
            ratio = standalone_ratio(records)
            assert ratio is not None
        frozen_report, frozen_shares = run(rebalance=False)
        assert frozen_shares[0] == budget // n_workers
        # Ratios stay exact either way (budget pressure never trades
        # exactness); rebalancing is about honoring the budget, not
        # about correctness.
        assert frozen_report.degraded_traces == 0


class TestLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_returns_serial_identical_summary(self, backend):
        records = profiled_trace_records(random.Random(4), "burst", 40)
        serial = MonitorFleet(batch_size=8)
        for record in records:
            serial.ingest("t", record)
        serial_summary = serial.close("t")
        with ParallelFleet(
            batch_size=8, n_workers=2, backend=backend, wire_batch=16
        ) as fleet:
            for record in records:
                fleet.ingest("t", record)
            summary = fleet.close("t")
            assert isinstance(summary, TraceSummary)
            assert summary.trace_id == "t"
            assert summary.worst_ratio == serial_summary.worst_ratio
            assert summary.n_records == serial_summary.n_records
            assert summary.degraded == serial_summary.degraded
            # Closing again returns the summary unchanged; the retired
            # trace still answers ratio queries.
            assert fleet.close("t").worst_ratio == summary.worst_ratio
            assert fleet.worst_ratio("t") == summary.worst_ratio
            report = fleet.report()
            assert report.retired_traces == 1 and report.open_traces == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_trace_raises_keyerror(self, backend):
        with ParallelFleet(
            n_workers=2, backend=backend
        ) as fleet:
            fleet.ingest("known", profiled_trace_records(
                random.Random(0), "idler", 2
            )[0])
            with pytest.raises(KeyError):
                fleet.worst_ratio("never-seen")
            with pytest.raises(KeyError):
                fleet.close("never-seen")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_aggregates_match_serial(self, backend):
        stream = list(
            concurrent_workload(
                random.Random(13), n_traces=15, records_per_trace=(15, 40)
            )
        )
        serial = MonitorFleet(n_shards=4, batch_size=16)
        serial.ingest_many(stream)
        with ParallelFleet(
            n_shards=4,
            n_workers=2,
            batch_size=16,
            backend=backend,
            wire_batch=64,
        ) as fleet:
            fleet.ingest_many(stream)
            assert (
                fleet.worst_ratio_histogram()
                == serial.worst_ratio_histogram()
            )
            assert fleet.top_k_riskiest(5) == serial.top_k_riskiest(5)
            assert len(fleet) == len(serial)
            assert fleet.open_traces == serial.open_traces

    def test_shutdown_is_idempotent_and_blocks_every_entry_point(self):
        """A cleanly stopped fleet must refuse further use loudly --
        not misread the workers' silence as a fleet-wide crash (review
        finding: report() after shutdown() listed every shard as
        crashed, and queries raised WorkerCrashed after a probe
        delay)."""
        fleet = ParallelFleet(n_workers=2, backend="thread")
        records = profiled_trace_records(random.Random(0), "idler", 2)
        fleet.ingest("t", records[0])
        fleet.shutdown()
        fleet.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            fleet.ingest("t", records[1])
        for call in (
            lambda: fleet.report(),
            lambda: fleet.flush(),
            lambda: fleet.worst_ratio("t"),
            lambda: fleet.is_degraded("t"),
            lambda: fleet.close("t"),
            lambda: fleet.violating_traces(),
            lambda: fleet.worst_ratio_histogram(),
        ):
            with pytest.raises(RuntimeError, match="shut down"):
                call()

    def test_quiet_worker_still_auto_retires_at_barriers(self):
        """A worker whose shards stop receiving traffic must still
        retire its idle traces when a barrier advances its clock
        (review finding: otherwise its traces -- and their budget
        share -- are held open forever)."""
        import zlib

        n_shards, n_workers = 4, 2

        def worker_of(tid):
            return zlib.crc32(tid.encode()) % n_shards % n_workers

        quiet = next(f"q{i}" for i in range(100) if worker_of(f"q{i}") == 0)
        busy = next(f"b{i}" for i in range(100) if worker_of(f"b{i}") == 1)
        quiet_records = profiled_trace_records(random.Random(1), "idler", 5)
        busy_records = profiled_trace_records(random.Random(2), "burst", 60)
        with ParallelFleet(
            n_shards=n_shards,
            n_workers=n_workers,
            batch_size=4,
            wire_batch=4,
            backend="thread",
            auto_retire_after=20,
        ) as fleet:
            for record in quiet_records:
                fleet.ingest(quiet, record)
            # Only worker 1 sees traffic from here on; the dispatcher
            # tick keeps advancing past the quiet trace's idle age.
            for record in busy_records:
                fleet.ingest(busy, record)
            fleet.flush()  # barrier advances worker 0's clock
            report = fleet.report()
            assert report.auto_retired >= 1
            assert report.retired_traces >= 1
            assert fleet.worst_ratio(quiet) == standalone_ratio(
                quiet_records
            )
            assert not fleet.is_degraded(quiet)

    def test_monitor_factory_requires_thread_backend(self):
        with pytest.raises(ValueError):
            ParallelFleet(
                backend="process", monitor_factory=lambda tid: OnlineAbcMonitor()
            )
        seen = []

        def factory(trace_id):
            seen.append(trace_id)
            return OnlineAbcMonitor()

        records = profiled_trace_records(random.Random(1), "burst", 10)
        with ParallelFleet(
            backend="thread", n_workers=2, monitor_factory=factory
        ) as fleet:
            for record in records:
                fleet.ingest("custom", record)
            assert fleet.worst_ratio("custom") == standalone_ratio(records)
        assert seen == ["custom"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=0)
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=4, n_shards=2)
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=2, batch_size=0)
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=2, wire_batch=0)
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=4, event_budget=2)
        with pytest.raises(ValueError, match="unknown backend"):
            ParallelFleet(backend="processes")
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=2, inbox_capacity=0)
        with pytest.raises(ValueError):
            ParallelFleet(n_workers=2, compact_threshold=1.0)

    def test_spawn_time_config_is_read_only(self):
        """The workers received their configuration at spawn; a write
        to the facade would change only what report() echoes, so it
        must raise instead of silently lying (unlike the serial
        fleet's genuinely retunable properties)."""
        with ParallelFleet(n_workers=2, backend="thread") as fleet:
            for attribute, value in (
                ("xi", Fraction(2)),
                ("batch_size", 4),
                ("event_budget", 100),
                ("n_shards", 4),
                ("n_workers", 1),
            ):
                with pytest.raises(AttributeError):
                    setattr(fleet, attribute, value)


class TestDegradation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metadata_free_streams_flag_not_crash(self, backend):
        """Without sends metadata a tight budget can evict past an
        in-flight send; the parallel fleet must skip/flag exactly as
        the serial engine does -- never raise, never hang."""
        streams = {
            f"t{i}": strip_sends_metadata(
                profiled_trace_records(random.Random(40 + i), "storm", 40)
            )
            for i in range(4)
        }
        with ParallelFleet(
            n_shards=4,
            n_workers=2,
            batch_size=4,
            event_budget=40,
            backend=backend,
            wire_batch=8,
        ) as fleet:
            iters = {tid: iter(recs) for tid, recs in streams.items()}
            alive = dict(iters)
            while alive:
                for tid in list(alive):
                    record = next(alive[tid], None)
                    if record is None:
                        del alive[tid]
                    else:
                        fleet.ingest(tid, record)
            degraded = 0
            for tid, records in streams.items():
                exact = standalone_ratio(records)
                got = fleet.worst_ratio(tid)
                if fleet.is_degraded(tid):
                    degraded += 1
                    assert got is None or exact is None or got <= exact
                else:
                    assert got == exact
            assert fleet.report().degraded_traces == degraded


class TestCrashContainment:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_crash_degrades_shards_without_hanging(self, backend):
        """A poison record (out-of-order event index) kills its worker
        mid-absorption.  The fleet must keep serving every other
        worker, surface the dead worker's shards as crashed, raise
        WorkerCrashed (not hang) for queries against them, and count
        records dropped after the crash."""
        from repro.core.events import Event

        n_shards, n_workers = 4, 2
        import zlib

        def shard(tid):
            return zlib.crc32(tid.encode()) % n_shards

        doomed = next(
            f"d{i}" for i in range(100) if shard(f"d{i}") % n_workers == 0
        )
        healthy = next(
            f"h{i}" for i in range(100) if shard(f"h{i}") % n_workers == 1
        )
        healthy_records = profiled_trace_records(random.Random(2), "burst", 30)
        poison = ReceiveRecord(
            event=Event(0, 7),  # index 7 with no predecessors: ValueError
            time=1.0,
            sender=None,
            send_event=None,
            send_time=None,
            payload=None,
            processed=True,
            sends=(),
        )
        with ParallelFleet(
            n_shards=n_shards,
            n_workers=n_workers,
            batch_size=1,
            backend=backend,
            wire_batch=1,
        ) as fleet:
            for record in healthy_records[:10]:
                fleet.ingest(healthy, record)
            fleet.ingest(doomed, poison)
            fleet.flush()  # the barrier that discovers the crash
            report = fleet.report()
            assert report.crashed_shards == tuple(
                range(0, n_shards, n_workers)
            )
            # The healthy worker keeps answering, exactly.
            for record in healthy_records[10:]:
                fleet.ingest(healthy, record)
            assert fleet.worst_ratio(healthy) == standalone_ratio(
                healthy_records
            )
            # Queries against the dead worker's shards surface the crash.
            with pytest.raises(WorkerCrashed):
                fleet.worst_ratio(doomed)
            # Records routed to dead shards are dropped and counted.
            before = fleet.dropped_records
            fleet.ingest(doomed, poison)
            fleet.flush()
            assert fleet.dropped_records > before


class TestMonitorSpecs:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_specs_cross_the_process_boundary(self, backend):
        """The monitor_factory gap, closed: declarative per-trace
        configuration must reach process workers (where callables
        cannot) and produce per-trace xi behavior identical to the
        serial fleet given the same registry."""
        from repro.runtime import MonitorSpec

        stream = list(
            concurrent_workload(
                random.Random(21),
                n_traces=10,
                records_per_trace=(30, 60),
                profile_weights={"storm": 0.6, "burst": 0.4},
            )
        )
        ids = sorted({tid for tid, _ in stream})
        # Half the traces watch a tight xi, the rest the loose default.
        specs = {tid: MonitorSpec(xi=Fraction(3, 2)) for tid in ids[::2]}
        serial = MonitorFleet(
            xi=Fraction(4), n_shards=4, batch_size=8, monitor_specs=specs
        )
        serial.ingest_many(stream)
        expected_violating = set(serial.violating_traces())
        with ParallelFleet(
            xi=Fraction(4),
            n_shards=4,
            n_workers=2,
            batch_size=8,
            backend=backend,
            wire_batch=16,
            monitor_specs=specs,
        ) as fleet:
            fleet.ingest_many(stream)
            assert set(fleet.violating_traces()) == expected_violating
            for tid in ids:
                assert fleet.worst_ratio(tid) == serial.worst_ratio(tid)
        # The tight spec must actually have bitten somewhere the loose
        # default would not (otherwise this test proves nothing).
        loose = MonitorFleet(xi=Fraction(4), n_shards=4, batch_size=8)
        loose.ingest_many(stream)
        assert expected_violating != set(loose.violating_traces())

    def test_specs_validation(self):
        with pytest.raises(TypeError):
            ParallelFleet(n_workers=2, monitor_specs="not-a-spec")


class TestMigration:
    def reference(self, stream):
        serial = MonitorFleet(xi=Fraction(3, 2), n_shards=9, batch_size=8)
        serial.ingest_many(stream)
        return serial

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_live_migration_preserves_bit_identity(self, backend):
        """Move shards between workers mid-stream; every later record
        routes to the new owner and nothing about the per-trace results
        changes."""
        stream = list(
            concurrent_workload(
                random.Random(7), n_traces=18, records_per_trace=(20, 50)
            )
        )
        serial = self.reference(stream)
        cut = len(stream) // 2
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=3,
            n_shards=9,
            batch_size=8,
            backend=backend,
            wire_batch=16,
        ) as fleet:
            fleet.ingest_many(stream[:cut])
            assert fleet.worker_of(1) == 1
            fleet.migrate_shard(1, 2)
            fleet.migrate_shard(4, 0)
            assert fleet.worker_of(1) == 2
            assert fleet.worker_of(4) == 0
            assert fleet.placement[1] == 2
            fleet.ingest_many(stream[cut:])
            for tid in sorted({t for t, _ in stream}):
                assert fleet.worst_ratio(tid) == serial.worst_ratio(tid)
                assert fleet.is_degraded(tid) == serial.is_degraded(tid)
            assert set(fleet.violating_traces()) == set(
                serial.violating_traces()
            )
            assert fleet.report().crashed_shards == ()

    def test_migration_validation(self):
        with ParallelFleet(
            n_workers=2, n_shards=4, backend="thread"
        ) as fleet:
            with pytest.raises(ValueError):
                fleet.migrate_shard(99, 0)
            with pytest.raises(ValueError):
                fleet.migrate_shard(0, 99)
            fleet.migrate_shard(0, 0)  # no-op: already there
            # Refuses to leave a worker shardless: worker 1 owns only
            # shards 1 and 3; stripping both must fail on the last one.
            fleet.migrate_shard(1, 0)
            with pytest.raises(ValueError, match="shardless"):
                fleet.migrate_shard(3, 0)

    def test_rebalance_placement_unpins_skew(self):
        """A mined-id workload lands (almost) everything on worker 0;
        rebalance_placement must move shards off it and the results must
        stay bit-identical to serial."""
        from repro.scenarios.generators import skewed_workload

        n_shards, n_workers = 9, 3
        stream = list(
            skewed_workload(
                random.Random(13),
                n_traces=18,
                records_per_trace=(20, 50),
                n_shards=n_shards,
                hot_shards=(0, 3),  # both on worker 0
                hot_fraction=0.9,
            )
        )
        serial = MonitorFleet(
            xi=Fraction(3, 2), n_shards=n_shards, batch_size=8
        )
        serial.ingest_many(stream)
        cut = len(stream) // 2
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=n_workers,
            n_shards=n_shards,
            batch_size=8,
            backend="thread",
            wire_batch=16,
        ) as fleet:
            fleet.ingest_many(stream[:cut])
            moves = fleet.rebalance_placement(threshold=2.0)
            assert moves, "a 90%-hot workload must trigger moves"
            for shard, src, dest in moves:
                assert src == 0
                assert fleet.worker_of(shard) == dest
            fleet.ingest_many(stream[cut:])
            for tid in sorted({t for t, _ in stream}):
                assert fleet.worst_ratio(tid) == serial.worst_ratio(tid)
            assert set(fleet.violating_traces()) == set(
                serial.violating_traces()
            )

    def test_rebalance_placement_noop_when_even(self):
        stream = list(
            concurrent_workload(
                random.Random(2), n_traces=12, records_per_trace=(15, 30)
            )
        )
        with ParallelFleet(
            n_workers=2, n_shards=8, backend="thread"
        ) as fleet:
            fleet.ingest_many(stream)
            # A roughly even population should not thrash placement.
            moves = fleet.rebalance_placement(threshold=4.0)
            assert moves == []
        with ParallelFleet(n_workers=2, backend="thread") as fleet:
            with pytest.raises(ValueError):
                fleet.rebalance_placement(threshold=1.0)


class TestCloseSurface:
    def test_close_without_argument_shuts_down(self):
        records = profiled_trace_records(random.Random(0), "idler", 4)
        fleet = ParallelFleet(n_workers=2, backend="thread")
        fleet.ingest("t", records[0])
        assert fleet.close() is None
        fleet.close()  # idempotent, like shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            fleet.ingest("t", records[1])


class TestMixedKernelMatrix:
    """Cross-kernel bit identity through the runtime plane.

    The kernel contract (:mod:`repro.core.kernel`) says kernel choice
    is invisible to every answer; here that is exercised where it is
    easiest to lose -- across the wire codec, process boundaries,
    snapshots, SIGKILL recovery, and per-trace spec overrides -- by
    racing ``flat_int`` (and ``vector``) fleets against the
    ``py_object`` serial reference.
    """

    KERNELS = [
        name for name in available_kernels() if name != "py_object"
    ]

    def _stream(self, seed=6, n_traces=14):
        return list(
            concurrent_workload(
                random.Random(seed),
                n_traces=n_traces,
                records_per_trace=(20, 45),
            )
        )

    def _serial_reference(self, stream, xi=Fraction(3, 2)):
        serial = MonitorFleet(xi, n_shards=8, batch_size=8)
        serial.ingest_many(stream)
        return serial

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_flat_workers_match_py_object_serial(self, backend):
        for kernel in self.KERNELS:
            stream = self._stream()
            serial = self._serial_reference(stream)
            with ParallelFleet(
                Fraction(3, 2),
                n_workers=2,
                n_shards=8,
                batch_size=8,
                backend=backend,
                wire_batch=16,
                kernel=kernel,
            ) as fleet:
                fleet.ingest_many(stream)
                for tid in sorted({t for t, _ in stream}):
                    assert fleet.worst_ratio(tid) == serial.worst_ratio(
                        tid
                    ), (kernel, tid)
                    assert fleet.is_degraded(tid) == serial.is_degraded(tid)
                assert set(fleet.violating_traces()) == set(
                    serial.violating_traces()
                ), kernel

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_per_trace_kernel_specs_cross_the_wire(self, backend):
        # A spec registry mixing kernels *within* one fleet: the kernel
        # field rides the spec tuple through the wire codec into
        # process workers, and every trace still answers exactly like
        # the uniform py_object serial fleet.
        stream = self._stream(seed=8)
        trace_ids = sorted({t for t, _ in stream})
        kernels = ["py_object", *self.KERNELS]
        specs = {
            tid: MonitorSpec(kernel=kernels[i % len(kernels)])
            for i, tid in enumerate(trace_ids)
        }
        serial = self._serial_reference(stream)
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=2,
            n_shards=8,
            batch_size=8,
            backend=backend,
            wire_batch=16,
            monitor_specs=specs,
        ) as fleet:
            fleet.ingest_many(stream)
            for tid in trace_ids:
                assert fleet.worst_ratio(tid) == serial.worst_ratio(tid), tid
            assert set(fleet.violating_traces()) == set(
                serial.violating_traces()
            )

    def test_sigkill_recovery_under_flat_int(self, tmp_path):
        # SIGKILL a flat_int worker mid-stream: the respawn decodes the
        # snapshot (taken by a flat_int monitor), replays the journal
        # suffix, and the recovered fleet still matches the py_object
        # serial reference bit for bit.
        import os as _os
        import signal as _signal
        import time as _time

        from repro.runtime import Durability

        stream = self._stream(seed=11, n_traces=18)
        serial = self._serial_reference(stream)
        with ParallelFleet(
            Fraction(3, 2),
            n_workers=2,
            n_shards=8,
            batch_size=8,
            backend="process",
            wire_batch=16,
            kernel="flat_int",
            durability=Durability(root=tmp_path, checkpoint_every=200),
        ) as fleet:
            cut = len(stream) // 2
            fleet.ingest_many(stream[:cut])
            _os.kill(
                fleet._backend._processes[1].pid, _signal.SIGKILL
            )
            _time.sleep(0.2)
            fleet.ingest_many(stream[cut:])
            assert fleet.dropped_records == 0
            assert fleet._recoveries.get(1, 0) >= 1
            for tid in sorted({t for t, _ in stream}):
                assert fleet.worst_ratio(tid) == serial.worst_ratio(tid), tid
            assert set(fleet.violating_traces()) == set(
                serial.violating_traces()
            )

    def test_checkpoint_restores_under_the_other_kernel(self, tmp_path):
        # Kernel-portable snapshots, whole-fleet edition: checkpoint a
        # flat_int fleet, abandon it, restore -- then verify the restored
        # monitors answer exactly like a py_object-from-origin run.
        from repro.runtime import Durability

        stream = self._stream(seed=12)
        serial = self._serial_reference(stream)
        cut = (len(stream) * 2) // 3
        fleet = ParallelFleet(
            Fraction(3, 2),
            n_workers=2,
            n_shards=8,
            batch_size=8,
            backend="thread",
            wire_batch=16,
            kernel="flat_int",
            durability=Durability(root=tmp_path, checkpoint_every=150),
        )
        fleet.ingest_many(stream[:cut])
        del fleet
        restored = ParallelFleet.restore(tmp_path)
        with restored:
            assert restored.kernel == "flat_int"
            restored.ingest_many(stream[restored.ingested_records :])
            for tid in sorted({t for t, _ in stream}):
                assert restored.worst_ratio(tid) == serial.worst_ratio(
                    tid
                ), tid
            assert set(restored.violating_traces()) == set(
                serial.violating_traces()
            )

    def test_serial_fleet_snapshot_round_trips_kernel(self):
        stream = self._stream(seed=13, n_traces=8)
        fleet = MonitorFleet(Fraction(3, 2), kernel="flat_int")
        fleet.ingest_many(stream)
        restored = MonitorFleet.restore(fleet.snapshot())
        assert restored.kernel == "flat_int"
        reference = self._serial_reference(stream)
        for tid in sorted({t for t, _ in stream}):
            assert restored.worst_ratio(tid) == reference.worst_ratio(tid)

    def test_unknown_kernel_fails_in_the_caller(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            ParallelFleet(n_workers=1, backend="thread", kernel="nope")
        with pytest.raises(ValueError, match="unknown kernel"):
            MonitorSpec(kernel="nope")


class TestCountersPurity:
    """The counters telemetry (``live_events`` / ``open_traces`` /
    ``retired_traces``) is documented as a pure read: polling it
    mid-stream must not ship buffers, force worker flushes, or change
    the flush cadence.  Regression guard for the columnar wire path,
    whose batching would silently collapse if a poll started flushing."""

    @staticmethod
    def drive(poll_every, stream, **fleet_kw):
        polls = []
        with ParallelFleet(
            n_shards=8,
            n_workers=2,
            batch_size=8,
            backend="thread",
            wire_batch=32,
            **fleet_kw,
        ) as fleet:
            for i, (trace_id, record) in enumerate(stream):
                fleet.ingest(trace_id, record)
                if poll_every and i % poll_every == 0:
                    polls.append(
                        (
                            fleet.live_events,
                            fleet.open_traces,
                            fleet.retired_traces,
                        )
                    )
            fleet.flush()
            report = fleet.report()
            ratios = {
                tid: fleet.worst_ratio(tid)
                for tid in sorted({t for t, _ in stream}, key=str)
            }
        return polls, report, ratios

    def test_polling_does_not_change_flush_cadence(self):
        stream = list(
            concurrent_workload(
                random.Random(19), n_traces=10, records_per_trace=(20, 40)
            )
        )
        _no_polls, quiet_report, quiet_ratios = self.drive(0, stream)
        polls, polled_report, polled_ratios = self.drive(7, stream)
        assert polls, "the polled twin must actually poll"
        assert polled_ratios == quiet_ratios
        assert polled_report.records == quiet_report.records
        assert polled_report.violating_traces == quiet_report.violating_traces
        # The load-bearing assertion: identical per-shard flush counts
        # and record counts -- a poll that shipped buffers or forced a
        # flush would break the cadence.
        assert [
            (s.shard, s.flushes, s.records) for s in polled_report.shards
        ] == [(s.shard, s.flushes, s.records) for s in quiet_report.shards]
        assert polled_report.live_events == quiet_report.live_events

    def test_counts_reflect_absorbed_not_buffered(self):
        """Mid-stream counter reads are bounded by what was absorbed:
        they never exceed the records ingested so far, and the final
        read (after flush) accounts for every open trace."""
        stream = list(
            concurrent_workload(
                random.Random(23), n_traces=6, records_per_trace=(10, 20)
            )
        )
        polls, report, _ratios = self.drive(5, stream)
        n_traces = len({tid for tid, _ in stream})
        for live, opened, retired in polls:
            assert 0 <= opened <= n_traces
            assert retired == 0
            assert live <= len(stream)
        assert report.open_traces == n_traces

"""Round-trip tests for the wire codec.

The contract: every value the parallel runtime puts on the wire --
records (with and without sends metadata), exact rationals, trace
summaries, shard statistics, violation notices with their witness
cycles -- decodes back to an equal value, and the encoded form contains
only plain primitives (transportable by any backend, no library classes
on the wire).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.online import OnlineAbcMonitor
from repro.runtime.codec import (
    decode_fraction,
    decode_notice,
    decode_record,
    decode_records,
    decode_stats,
    decode_summary,
    decode_witness,
    encode_fraction,
    encode_notice,
    encode_record,
    encode_records,
    encode_stats,
    encode_summary,
    encode_witness,
)
from repro.runtime.shard import ShardStats, TraceSummary
from repro.scenarios.generators import (
    profiled_trace_records,
    strip_sends_metadata,
)

PROFILES = ("storm", "burst", "idler", "relay")


def assert_plain(value):
    """Encoded values must be primitives/tuples/lists all the way down."""
    if isinstance(value, (tuple, list)):
        for item in value:
            assert_plain(item)
    else:
        assert value is None or isinstance(value, (int, float, str, bool))


# ----------------------------------------------------------------------
# records over randomized workload streams
# ----------------------------------------------------------------------


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", range(4))
def test_profiled_records_round_trip(profile, seed):
    records = profiled_trace_records(random.Random(seed), profile, 60)
    for record in records:
        wire = encode_record(record)
        assert_plain(wire)
        assert decode_record(wire) == record


@pytest.mark.parametrize("profile", PROFILES)
def test_metadata_free_records_round_trip(profile):
    """The degraded regime: stripped sends survive the trip as
    genuinely empty metadata (not as a lossy placeholder)."""
    records = strip_sends_metadata(
        profiled_trace_records(random.Random(7), profile, 40)
    )
    for record in records:
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.sends == ()


def test_batch_round_trip_preserves_ticks_and_ids():
    records = profiled_trace_records(random.Random(3), "burst", 30)
    batch = [(i + 1, f"trace-{i % 3}", r) for i, r in enumerate(records)]
    wire = encode_records(batch)
    assert_plain([row[2] for row in wire])
    assert decode_records(wire) == batch


# ----------------------------------------------------------------------
# fractions (hypothesis: exactness is the whole point)
# ----------------------------------------------------------------------


@given(
    num=st.integers(min_value=0, max_value=10**12),
    den=st.integers(min_value=1, max_value=10**12),
)
@settings(max_examples=200, deadline=None)
def test_fraction_round_trip_is_exact(num, den):
    value = Fraction(num, den)
    wire = encode_fraction(value)
    assert_plain(wire)
    assert decode_fraction(wire) == value


def test_none_fraction_passes():
    assert encode_fraction(None) is None
    assert decode_fraction(None) is None


# ----------------------------------------------------------------------
# witnesses: real violating cycles from monitored streams
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_witness_round_trip_from_real_violations(seed):
    records = profiled_trace_records(random.Random(seed), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    witness = monitor.violation
    assert witness is not None, "storm workloads must violate Xi=2"
    wire = encode_witness(witness)
    assert_plain(wire)
    decoded = decode_witness(wire)
    assert decoded == witness
    assert decoded.ratio == witness.ratio
    assert decoded.cycle.steps == witness.cycle.steps


def test_witness_none_passes():
    assert encode_witness(None) is None
    assert decode_witness(None) is None


@pytest.mark.parametrize("seed", range(3))
def test_notice_round_trip(seed):
    records = profiled_trace_records(random.Random(seed), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    wire = encode_notice(17, f"trace-{seed}", monitor.violation)
    assert_plain(wire)
    tick, trace_id, witness = decode_notice(wire)
    assert (tick, trace_id) == (17, f"trace-{seed}")
    assert witness == monitor.violation


# ----------------------------------------------------------------------
# summaries and statistics
# ----------------------------------------------------------------------


@given(
    trace_id=st.one_of(st.text(max_size=20), st.integers()),
    ratio=st.one_of(
        st.none(),
        st.builds(
            Fraction,
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=10**6),
        ),
    ),
    n_records=st.integers(min_value=0, max_value=10**9),
    oracle_calls=st.integers(min_value=0, max_value=10**9),
    degraded=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_summary_round_trip(trace_id, ratio, n_records, oracle_calls, degraded):
    summary = TraceSummary(
        trace_id=trace_id,
        worst_ratio=ratio,
        n_records=n_records,
        oracle_calls=oracle_calls,
        violation=None,
        degraded=degraded,
    )
    wire = encode_summary(summary)
    assert_plain(wire)
    assert decode_summary(wire) == summary


def test_summary_with_witness_round_trips():
    records = profiled_trace_records(random.Random(2), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    summary = TraceSummary(
        trace_id="hot",
        worst_ratio=monitor.worst_ratio,
        n_records=len(records),
        oracle_calls=monitor.oracle_calls,
        violation=monitor.violation,
        degraded=False,
    )
    assert decode_summary(encode_summary(summary)) == summary


@given(values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=13, max_size=13))
@settings(max_examples=100, deadline=None)
def test_stats_round_trip(values):
    stats = ShardStats(*values)
    wire = encode_stats(stats)
    assert_plain(wire)
    assert decode_stats(wire) == stats

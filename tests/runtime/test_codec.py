"""Round-trip tests for the wire codec.

The contract: every value the parallel runtime puts on the wire --
records (with and without sends metadata), exact rationals, trace
summaries, shard statistics, violation notices with their witness
cycles -- decodes back to an equal value, and the encoded form contains
only plain primitives (transportable by any backend, no library classes
on the wire).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.online import OnlineAbcMonitor
from repro.runtime.codec import (
    decode_fraction,
    decode_monitor,
    decode_notice,
    decode_record,
    decode_records,
    decode_records_columnar,
    decode_spec,
    decode_specs,
    decode_stats,
    decode_summary,
    decode_witness,
    encode_fraction,
    encode_monitor,
    encode_notice,
    encode_record,
    encode_records,
    encode_spec,
    encode_specs,
    encode_stats,
    encode_summary,
    encode_witness,
)
from repro.runtime.shard import MonitorSpec, ShardGroup, ShardStats, TraceSummary
from repro.scenarios.generators import (
    profiled_trace_records,
    strip_sends_metadata,
)

PROFILES = ("storm", "burst", "idler", "relay")


def assert_plain(value):
    """Encoded values must be primitives/tuples/lists all the way down."""
    if isinstance(value, (tuple, list)):
        for item in value:
            assert_plain(item)
    else:
        assert value is None or isinstance(value, (int, float, str, bool))


# ----------------------------------------------------------------------
# records over randomized workload streams
# ----------------------------------------------------------------------


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", range(4))
def test_profiled_records_round_trip(profile, seed):
    records = profiled_trace_records(random.Random(seed), profile, 60)
    for record in records:
        wire = encode_record(record)
        assert_plain(wire)
        assert decode_record(wire) == record


@pytest.mark.parametrize("profile", PROFILES)
def test_metadata_free_records_round_trip(profile):
    """The degraded regime: stripped sends survive the trip as
    genuinely empty metadata (not as a lossy placeholder)."""
    records = strip_sends_metadata(
        profiled_trace_records(random.Random(7), profile, 40)
    )
    for record in records:
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.sends == ()


def test_batch_round_trip_preserves_ticks_and_ids():
    records = profiled_trace_records(random.Random(3), "burst", 30)
    batch = [(i + 1, f"trace-{i % 3}", r) for i, r in enumerate(records)]
    wire = encode_records(batch)
    assert_plain([row[2] for row in wire])
    assert decode_records(wire) == batch


# ----------------------------------------------------------------------
# fractions (hypothesis: exactness is the whole point)
# ----------------------------------------------------------------------


@given(
    num=st.integers(min_value=0, max_value=10**12),
    den=st.integers(min_value=1, max_value=10**12),
)
@settings(max_examples=200, deadline=None)
def test_fraction_round_trip_is_exact(num, den):
    value = Fraction(num, den)
    wire = encode_fraction(value)
    assert_plain(wire)
    assert decode_fraction(wire) == value


def test_none_fraction_passes():
    assert encode_fraction(None) is None
    assert decode_fraction(None) is None


# ----------------------------------------------------------------------
# witnesses: real violating cycles from monitored streams
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_witness_round_trip_from_real_violations(seed):
    records = profiled_trace_records(random.Random(seed), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    witness = monitor.violation
    assert witness is not None, "storm workloads must violate Xi=2"
    wire = encode_witness(witness)
    assert_plain(wire)
    decoded = decode_witness(wire)
    assert decoded == witness
    assert decoded.ratio == witness.ratio
    assert decoded.cycle.steps == witness.cycle.steps


def test_witness_none_passes():
    assert encode_witness(None) is None
    assert decode_witness(None) is None


@pytest.mark.parametrize("seed", range(3))
def test_notice_round_trip(seed):
    records = profiled_trace_records(random.Random(seed), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    wire = encode_notice(17, f"trace-{seed}", monitor.violation)
    assert_plain(wire)
    tick, trace_id, witness = decode_notice(wire)
    assert (tick, trace_id) == (17, f"trace-{seed}")
    assert witness == monitor.violation


# ----------------------------------------------------------------------
# summaries and statistics
# ----------------------------------------------------------------------


@given(
    trace_id=st.one_of(st.text(max_size=20), st.integers()),
    ratio=st.one_of(
        st.none(),
        st.builds(
            Fraction,
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=10**6),
        ),
    ),
    n_records=st.integers(min_value=0, max_value=10**9),
    oracle_calls=st.integers(min_value=0, max_value=10**9),
    degraded=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_summary_round_trip(trace_id, ratio, n_records, oracle_calls, degraded):
    summary = TraceSummary(
        trace_id=trace_id,
        worst_ratio=ratio,
        n_records=n_records,
        oracle_calls=oracle_calls,
        violation=None,
        degraded=degraded,
    )
    wire = encode_summary(summary)
    assert_plain(wire)
    assert decode_summary(wire) == summary


def test_summary_with_witness_round_trips():
    records = profiled_trace_records(random.Random(2), "storm", 80)
    monitor = OnlineAbcMonitor(xi=Fraction(2))
    for record in records:
        monitor.observe(record)
    summary = TraceSummary(
        trace_id="hot",
        worst_ratio=monitor.worst_ratio,
        n_records=len(records),
        oracle_calls=monitor.oracle_calls,
        violation=monitor.violation,
        degraded=False,
    )
    assert decode_summary(encode_summary(summary)) == summary


@given(values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=13, max_size=13))
@settings(max_examples=100, deadline=None)
def test_stats_round_trip(values):
    stats = ShardStats(*values)
    wire = encode_stats(stats)
    assert_plain(wire)
    assert decode_stats(wire) == stats


# ----------------------------------------------------------------------
# monitor specs
# ----------------------------------------------------------------------


@given(
    xi=st.one_of(
        st.none(),
        st.builds(
            Fraction,
            st.integers(min_value=1, max_value=100),
            st.integers(min_value=1, max_value=100),
        ),
    ),
    compact_threshold=st.one_of(
        st.none(), st.floats(min_value=1.01, max_value=64.0)
    ),
    faulty=st.one_of(
        st.none(), st.frozensets(st.integers(min_value=0, max_value=7))
    ),
    drop_faulty=st.one_of(st.none(), st.booleans()),
)
@settings(max_examples=100, deadline=None)
def test_spec_round_trip(xi, compact_threshold, faulty, drop_faulty):
    spec = MonitorSpec(
        xi=xi,
        compact_threshold=compact_threshold,
        faulty=faulty,
        drop_faulty=drop_faulty,
    )
    wire = encode_spec(spec)
    assert_plain(wire)
    assert decode_spec(wire) == spec


def test_specs_registry_round_trip():
    assert encode_specs(None) is None
    assert decode_specs(None) is None
    one = MonitorSpec(xi=Fraction(2))
    assert decode_specs(encode_specs(one)) == one
    mapping = {
        "hot": MonitorSpec(xi=Fraction(3, 2), compact_threshold=4.0),
        "cold": MonitorSpec(faulty=frozenset({1})),
    }
    wire = encode_specs(mapping)
    assert_plain(wire)
    assert decode_specs(wire) == mapping


# ----------------------------------------------------------------------
# snapshot frames: the durability plane's payload
# ----------------------------------------------------------------------


def drive(monitor, records):
    for record in records:
        monitor.observe(record)
    return monitor


class TestMonitorSnapshot:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", range(3))
    def test_live_monitor_round_trips_mid_stream(self, profile, seed):
        """Cut a live monitor anywhere; the decoded copy must finish the
        stream with exactly the same worst ratio and violation state."""
        records = profiled_trace_records(random.Random(seed), profile, 80)
        cut = len(records) // 2
        original = drive(OnlineAbcMonitor(xi=Fraction(2)), records[:cut])
        clone = decode_monitor(encode_monitor(original))
        assert clone.worst_ratio == original.worst_ratio
        assert clone.n_events == original.n_events
        for both in (original, clone):
            drive(both, records[cut:])
        assert clone.worst_ratio == original.worst_ratio
        assert clone.oracle_calls == original.oracle_calls
        assert (clone.violation is None) == (original.violation is None)

    def test_deep_summary_edge_chains_survive(self):
        """Adaptive compaction rewrites the digraph into SummaryEdge
        chains; repeated snapshot round trips through the deepest such
        state must stay bit-identical on the rest of the stream."""
        records = profiled_trace_records(random.Random(11), "relay", 160)
        reference = drive(
            OnlineAbcMonitor(xi=Fraction(2), compact_threshold=2.0), records
        )
        hopper = OnlineAbcMonitor(xi=Fraction(2), compact_threshold=2.0)
        for start in range(0, len(records), 20):
            drive(hopper, records[start : start + 20])
            hopper = decode_monitor(encode_monitor(hopper))  # hop every 20
        assert hopper.worst_ratio == reference.worst_ratio
        assert hopper.n_events == reference.n_events
        assert hopper.oracle_calls == reference.oracle_calls

    def test_violation_callbacks_are_stripped_not_pickled(self):
        hits = []
        monitor = OnlineAbcMonitor(
            xi=Fraction(2), on_violation=lambda w: hits.append(w)
        )
        records = profiled_trace_records(random.Random(0), "storm", 80)
        drive(monitor, records)
        assert hits, "storm workloads must violate Xi=2"
        clone = decode_monitor(encode_monitor(monitor))
        assert clone.on_violation is None
        assert monitor.on_violation is not None  # the live one is untouched


def assert_plain_or_bytes(value):
    """Snapshot frames are plain primitives plus pickled monitor blobs
    (``bytes``) -- still transportable by any backend."""
    if isinstance(value, (tuple, list)):
        for item in value:
            assert_plain_or_bytes(item)
    else:
        assert value is None or isinstance(
            value, (int, float, str, bool, bytes)
        )


class TestGroupSnapshot:
    @pytest.mark.parametrize(
        "budget,metadata_free", [(None, False), (260, False), (140, True)]
    )
    def test_group_snapshot_round_trip_mid_stream(self, budget, metadata_free):
        """Snapshot a live group mid-stream -- pending buffers, eviction
        state, degraded flags and all -- and the restored group must be
        indistinguishable on the rest of the stream.  Covers the exact
        regime, the budget-eviction regime, and the metadata-free
        degraded regime."""
        from repro.runtime.shard import shard_index_of

        rng = random.Random(17)
        streams = {
            f"t{i}": profiled_trace_records(
                rng, ("storm", "burst", "relay")[i % 3], 50
            )
            for i in range(6)
        }
        if metadata_free:
            streams = {
                tid: strip_sends_metadata(records)
                for tid, records in streams.items()
            }
        merged = [
            (tid, record)
            for tid, records in streams.items()
            for record in records
        ]
        rng.shuffle(merged)
        # Re-sort per trace: shuffling must not break per-trace order.
        order = {tid: iter(records) for tid, records in streams.items()}
        merged = [(tid, next(order[tid])) for tid, _ in merged]

        def make_group():
            return ShardGroup(
                range(4),
                xi=Fraction(2),
                batch_size=8,
                event_budget=budget,
                compact_threshold=3.0,
            )

        def feed(group, part):
            for tid, record in part:
                group.ingest(shard_index_of(tid, 4), tid, record)

        cut = len(merged) // 2
        original = make_group()
        feed(original, merged[:cut])
        frame = original.snapshot()
        assert_plain_or_bytes(frame)
        restored = make_group()
        restored.load_snapshot(frame)
        feed(original, merged[cut:])
        feed(restored, merged[cut:])
        for tid in streams:
            shard = shard_index_of(tid, 4)
            assert restored.worst_ratio(shard, tid) == original.worst_ratio(
                shard, tid
            ), tid
            assert restored.is_degraded(shard, tid) == original.is_degraded(
                shard, tid
            )
        assert restored.violating_ids() == original.violating_ids()
        assert restored.live_events == original.live_events
        original_stats = {s.shard: s for s in original.shard_stats()}
        for stats in restored.shard_stats():
            assert stats == original_stats[stats.shard]


# ----------------------------------------------------------------------
# columnar decode: the zero-object twin of decode_records
# ----------------------------------------------------------------------


def wire_batch(records):
    return encode_records(
        [(i + 1, f"trace-{i % 3}", r) for i, r in enumerate(records)]
    )


class TestColumnarDecode:
    @pytest.mark.parametrize("profile", PROFILES + ("firehose",))
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_object_decode_record_for_record(self, profile, seed):
        """The columnar transpose must agree with the object decoder on
        every field of every row -- ticks, ids, and materialized
        records -- including sends metadata."""
        records = profiled_trace_records(random.Random(seed), profile, 60)
        wire = wire_batch(records)
        reference = decode_records(wire)
        ticks, trace_ids, cols = decode_records_columnar(wire)
        assert list(ticks) == [tick for tick, _, _ in reference]
        assert list(trace_ids) == [tid for _, tid, _ in reference]
        assert len(cols) == len(reference)
        for k, (_, _, record) in enumerate(reference):
            materialized = cols.record_at(k)
            assert materialized == record
            assert materialized.sends == record.sends
        # Iteration is the snapshot path: it must materialize the same
        # record objects in order.
        assert list(cols) == [record for _, _, record in reference]

    @pytest.mark.parametrize("profile", PROFILES)
    def test_metadata_free_streams_stay_empty(self, profile):
        """Degraded streams (sends stripped at the producer) must come
        out of the columnar path as genuinely empty metadata."""
        records = strip_sends_metadata(
            profiled_trace_records(random.Random(7), profile, 40)
        )
        wire = wire_batch(records)
        _ticks, _ids, cols = decode_records_columnar(wire)
        assert all(row == () for row in cols.sends)
        assert [r for _, _, r in decode_records(wire)] == list(cols)

    @given(
        payload_num=st.integers(min_value=-(10**40), max_value=10**40),
        payload_den=st.integers(min_value=1, max_value=10**40),
        n_sends=st.integers(min_value=0, max_value=3),
        processed=st.booleans(),
        wakeup=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_payloads_survive_both_paths(
        self, payload_num, payload_den, n_sends, processed, wakeup
    ):
        """Big-int Fraction payloads (the exact-arithmetic plane's
        currency) pass through the columnar transpose untouched --
        the columns hold the very objects the wire row held."""
        from repro.core.events import Event
        from repro.sim.trace import ReceiveRecord, SendRecord

        payload = Fraction(payload_num, payload_den)
        record = ReceiveRecord(
            event=Event(process=2, index=5),
            time=1.5,
            sender=None if wakeup else 1,
            send_event=None if wakeup else Event(process=1, index=4),
            send_time=None if wakeup else 1.25,
            payload=payload,
            processed=processed,
            sends=tuple(
                SendRecord(
                    dest=d, payload=payload + d, delay=0.1, deliver_time=2.0
                )
                for d in range(n_sends)
            ),
        )
        wire = [(1, "t", encode_record(record))]
        [(_, _, via_object)] = decode_records(wire)
        _ticks, _ids, cols = decode_records_columnar(wire)
        via_columns = cols.record_at(0)
        assert via_columns == via_object == record
        assert via_columns.payload == payload
        assert [s.payload for s in via_columns.sends] == [
            s.payload for s in record.sends
        ]

    def test_empty_batch(self):
        ticks, trace_ids, cols = decode_records_columnar([])
        assert ticks == () and trace_ids == ()
        assert len(cols) == 0 and not cols

    def test_ragged_batch_rows_raise(self):
        """A truncated frame row must fail loudly in the decoder, not
        desynchronize columns downstream."""
        records = profiled_trace_records(random.Random(0), "burst", 6)
        wire = wire_batch(records)
        wire[3] = wire[3][:2]  # drop the record cell
        with pytest.raises(ValueError, match="ragged columnar batch"):
            decode_records_columnar(wire)

    def test_ragged_record_arity_raises(self):
        """A record tuple with the wrong field count (old producer,
        corrupted frame) must raise, not shift every later column."""
        records = profiled_trace_records(random.Random(0), "burst", 6)
        wire = wire_batch(records)
        tick, tid, rec = wire[2]
        wire[2] = (tick, tid, rec[:9])  # nine fields, not ten
        with pytest.raises(ValueError, match="ragged columnar batch"):
            decode_records_columnar(wire)

    def test_ragged_columns_raise_at_construction(self):
        from repro.sim.trace import RecordColumns

        with pytest.raises(ValueError, match="ragged columnar batch"):
            RecordColumns(
                processes=[1, 2],
                indexes=[0],  # short column
                times=[0.0, 1.0],
                senders=[None, None],
                send_processes=[None, None],
                send_indexes=[None, None],
                send_times=[None, None],
                payloads=[None, None],
                processed=[True, True],
                sends=[(), ()],
            )

"""Shared fixtures: canonical graphs and cached simulation runs."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.execution_graph import ExecutionGraph, GraphBuilder
from repro.scenarios.generators import clock_sync_run


@pytest.fixture
def fig3_like_graph() -> ExecutionGraph:
    """The Figure-3 pattern: 4 fast messages spanning a 2-message chain
    (worst relevant ratio exactly 2)."""
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((1, 0), (0, 1))
    b.message((0, 1), (1, 1))
    b.message((1, 1), (0, 2))
    b.message((0, 0), (2, 0))
    b.message((2, 0), (0, 3))
    return b.build()


@pytest.fixture
def broadcast_graph() -> ExecutionGraph:
    """Two messages from one step to the same process: ratio-1 cycle."""
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((0, 0), (1, 1))
    return b.build()


@pytest.fixture
def chain_only_graph() -> ExecutionGraph:
    """A pure ping-pong chain: no relevant cycle at all."""
    b = GraphBuilder()
    b.message((0, 0), (1, 0))
    b.message((1, 0), (0, 1))
    b.message((0, 1), (1, 1))
    return b.build()


@pytest.fixture(scope="session")
def small_clock_run():
    """A cached Algorithm-1 run: n=4, f=1 (no actual faults), Theta=1.5."""
    trace, processes = clock_sync_run(n=4, f=1, theta=1.5, max_tick=10, seed=11)
    return trace, processes


@pytest.fixture(scope="session")
def xi() -> Fraction:
    return Fraction(2)

"""Profile the monitor hot path with cProfile/pstats.

Where does an observed record's time actually go?  This harness runs
the same workloads the acceptance benchmarks gate -- the 200-event
``bench_kernel`` monitor replay, and the ``bench_e2e`` wire-to-kernel
ingest span -- under ``cProfile`` and prints the top functions, so a
perf regression shows up as a *named function* rather than a bare
ratio.  Three targets:

* ``monitor`` (default) -- the ``bench_kernel`` gate workload replayed
  record by record through ``OnlineAbcMonitor.observe``.  Expect the
  ratio-search oracle (``_has_negative_cycle`` and the kernel under
  it) to dominate; that split is exactly why the e2e benchmark times
  the ingest span separately.
* ``ingest-object`` -- the per-record object path of ``bench_e2e``
  (decode records, absorb through ``add_event``/``add_message``).
* ``ingest-columnar`` -- the columnar path (``decode_records_columnar``
  + ``absorb_batch``); compare against ``ingest-object`` to see the
  object-construction and dict-bookkeeping time the columnar path
  removed.

Usage::

    python tools/profile_hotpath.py                      # monitor, top 25
    python tools/profile_hotpath.py --target ingest-object --top 15
    python tools/profile_hotpath.py --target ingest-columnar --sort tottime
    python tools/profile_hotpath.py --kernel py_object --events 100
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
for entry in (str(REPO / "src"), str(REPO / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

TARGETS = ("monitor", "ingest-object", "ingest-columnar")


def monitor_workload(events: int, kernel: str):
    from bench_table_incremental import make_workload

    from repro.analysis.online import OnlineAbcMonitor

    trace, _prefixes = make_workload(events)

    def body():
        monitor = OnlineAbcMonitor(kernel=kernel)
        for record in trace.records:
            monitor.observe(record)
        return monitor.worst_ratio

    return body, f"monitor replay, {len(trace.records)} records ({kernel})"


def ingest_workload(events: int, kernel: str, columnar: bool):
    import bench_e2e

    wires = bench_e2e.gate_workload(bench_e2e.DEFAULT_GATE_TRACES, events)
    run = (
        bench_e2e.ingest_columnar if columnar else bench_e2e.ingest_object
    )
    n = sum(len(w) for w in wires)

    def body():
        return run(wires, bench_e2e.DEFAULT_BATCH, frozenset(), kernel)

    path = "columnar" if columnar else "object"
    return body, f"{path} ingest, {n} wire records ({kernel})"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the monitor/ingest hot paths on the "
        "acceptance-benchmark workloads"
    )
    parser.add_argument(
        "--target", choices=TARGETS, default="monitor",
        help="which hot path to profile (default: the bench_kernel "
        "monitor replay)",
    )
    parser.add_argument(
        "--events", type=int, default=200,
        help="workload size: records for monitor, events per gate "
        "trace for ingest targets",
    )
    parser.add_argument(
        "--kernel", default="flat_int",
        help="detection kernel (default flat_int; try py_object to "
        "profile the reference kernel)",
    )
    parser.add_argument(
        "--top", type=int, default=25,
        help="functions to print (default 25)",
    )
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort key (default cumulative)",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also dump raw pstats data to this path (for snakeviz "
        "or pstats.Stats post-processing)",
    )
    args = parser.parse_args(argv)

    random.seed(0)  # workload builders draw from seeded rngs anyway
    if args.target == "monitor":
        body, label = monitor_workload(args.events, args.kernel)
    else:
        body, label = ingest_workload(
            args.events, args.kernel, args.target == "ingest-columnar"
        )

    body()  # warm: imports, first-touch allocations, kernel dispatch
    profiler = cProfile.Profile()
    profiler.enable()
    body()
    profiler.disable()

    print(f"[profile_hotpath] {label}, sorted by {args.sort}")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Terminal viewer for the fleet telemetry plane.

Scrapes a running :class:`~repro.runtime.net.server.IngestServer` (the
one-shot ``metrics`` hello role -- answered from the server's staged
readings, so a scrape never barriers a front) and renders the readings
as a sorted table: counters and gauges with values, histograms with
count / mean / an ASCII bucket sparkline.  With ``--watch`` it
re-scrapes on an interval and redraws, ``top``-style.

Usage::

    python tools/obs_top.py HOST:PORT                # one scrape
    python tools/obs_top.py /path/to/unix.sock       # unix socket
    python tools/obs_top.py HOST:PORT --watch 2      # redraw every 2s
    python tools/obs_top.py HOST:PORT --prometheus   # exposition text
    python tools/obs_top.py HOST:PORT --json         # to_json dict

Only useful against a server started with ``REPRO_OBS=1`` (a disabled
server answers with zero rows, which is rendered as exactly that).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import MetricsRegistry, rows_to_json  # noqa: E402
from repro.runtime.net.client import fetch_metrics  # noqa: E402

SPARKS = " .:-=+*#%@"


def parse_address(raw: str):
    if ":" in raw and not raw.startswith("/"):
        host, _colon, port = raw.rpartition(":")
        return (host or "127.0.0.1", int(port))
    return raw  # unix socket path


def sparkline(counts) -> str:
    peak = max(counts) if counts else 0
    if peak == 0:
        return " " * len(counts)
    return "".join(
        SPARKS[min(len(SPARKS) - 1, (c * (len(SPARKS) - 1) + peak - 1) // peak)]
        for c in counts
    )


def render_table(rows) -> str:
    if not rows:
        return "(no metrics -- is the server running with REPRO_OBS=1?)\n"
    snapshot = rows_to_json(rows)
    name_width = min(72, max(len(name) for name in snapshot))
    lines = [f"{'metric':<{name_width}}  {'value':>14}  detail"]
    lines.append("-" * (name_width + 30))
    for name in sorted(snapshot):
        entry = snapshot[name]
        marker = "=" if entry["deterministic"] else "~"
        if entry["kind"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            counts = [c for _bound, c in entry["buckets"]]
            counts.append(entry["overflow"])
            lines.append(
                f"{name:<{name_width}}  {count:>14}  "
                f"{marker} mean={mean:,.0f} [{sparkline(counts)}]"
            )
        else:
            lines.append(
                f"{name:<{name_width}}  {entry['value']:>14}  "
                f"{marker} {entry['kind']}"
            )
    lines.append("")
    lines.append("(= deterministic across backends, ~ wall-clock shaped)")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scrape and render a fleet's telemetry"
    )
    parser.add_argument("address", help="HOST:PORT or a unix socket path")
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-scrape and redraw on this interval",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus exposition text instead of the table",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON snapshot instead of the table",
    )
    args = parser.parse_args(argv)
    address = parse_address(args.address)

    def render() -> str:
        rows = fetch_metrics(address)
        if args.prometheus:
            registry = MetricsRegistry()
            registry.merge_rows(rows)
            return registry.render_prometheus()
        if args.json:
            return json.dumps(rows_to_json(rows), indent=2, sort_keys=True)
        return render_table(rows)

    if args.watch is None:
        sys.stdout.write(render())
        return 0
    try:
        while True:
            output = render()
            sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            sys.stdout.write(output)
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Stdlib-only documentation checker: markdown links and anchors.

Validates every inline markdown link in the given files:

* relative links must resolve to an existing file or directory
  (relative to the linking file);
* ``#fragment`` targets -- own-file or cross-file -- must match a
  heading's GitHub-style anchor slug in the target markdown file;
* external (``http``/``https``/``mailto``) links are skipped: CI for
  this repo runs offline, and a link checker that needs the network
  flakes more than it catches.

Used by the CI docs job together with ``python -m doctest README.md``
(which executes the README's code blocks), and imported by
``tests/test_docs.py`` so link rot fails tier-1 locally too::

    python tools/check_docs.py README.md docs/*.md ROADMAP.md CHANGES.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) -- tolerates one level of nested
# brackets in the text, strips an optional title from the target.
_LINK = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: resolve markdown links to
    their text, strip emphasis/code/bracket *characters* (the enclosed
    text stays -- '## Setup (offline)' -> 'setup-offline'), lowercase,
    drop punctuation, hyphenate spaces."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"[`*_\[\]()]", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" ", "-", text)


def iter_links(markdown: str):
    """Yield link targets, with fenced code blocks masked out (code
    samples legitimately contain bracket-paren sequences)."""
    masked = _CODE_FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), markdown)
    for match in _LINK.finditer(masked):
        yield match.group(1)


def anchors_of(path: Path) -> set[str]:
    return {github_slug(h) for h in _HEADING.findall(path.read_text())}


def check_file(path: Path) -> list[str]:
    """All broken links in one markdown file, as human-readable errors."""
    errors: list[str] = []
    text = path.read_text()
    for target in iter_links(text):
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path.resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    errors: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    if not errors:
        print(f"checked {len(argv)} files, all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Aggregate BENCH_*.json artifacts into one markdown table.

Every acceptance benchmark writes a ``BENCH_<name>.json`` metrics dict
(``--json``); CI uploads them per run.  This tool collects whatever
subset exists and renders the headline numbers as a markdown table --
pasteable into a PR description, or appended to the CI job summary
(``$GITHUB_STEP_SUMMARY``) so the perf trajectory is visible on every
run without downloading artifacts.

The schemas are heterogeneous (each benchmark reports the quantities
it gates), so extraction is structural: every numeric leaf whose key
names a comparison -- ``*speedup*``, ``*ratio*`` (recovery's is a
cost *ceiling*, lower is better), ``*records_per_s`` -- is collected
with its JSON path.  Headline rows (the gated quantity per benchmark,
when known) are marked and listed first.

Usage::

    python tools/bench_summary.py                       # ./BENCH_*.json
    python tools/bench_summary.py artifacts/BENCH_*.json
    python tools/bench_summary.py --out summary.md
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from pathlib import Path

# The gated quantity per benchmark: JSON path suffix of the number the
# CI step floors (or ceilings).  Everything else is supporting detail.
HEADLINES = {
    "abc_enforcer": "speedup",
    "fleet": "speedup",
    "parallel": "speedup",
    "recovery": "ratio",
    "ingest": "speedup",
    "kernel": "gate.oracle_speedup",
    "e2e": "gate.e2e_speedup",
    # lower is better: the telemetry residue with instruments off,
    # ceilinged at 0.02 in CI
    "obs": "gate.disabled_overhead_ratio",
}

METRIC_KEYS = ("speedup", "ratio", "records_per_s")


def numeric_leaves(value, path=""):
    """Yield ``(dotted.path, number)`` for comparison-shaped leaves."""
    if isinstance(value, dict):
        for key, item in value.items():
            sub = f"{path}.{key}" if path else str(key)
            yield from numeric_leaves(item, sub)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        leaf = path.rsplit(".", 1)[-1]
        if any(key in leaf for key in METRIC_KEYS):
            yield path, value


def bench_name(path: Path) -> str:
    stem = path.stem  # BENCH_kernel -> kernel
    return stem[6:] if stem.startswith("BENCH_") else stem


def fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def summarize(paths: list[Path]) -> str:
    rows = []
    for path in sorted(paths):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append((bench_name(path), "(unreadable)", "", str(exc)))
            continue
        name = bench_name(path)
        headline = HEADLINES.get(name)
        metrics = list(numeric_leaves(data))
        if not metrics:
            rows.append((name, "(no metrics)", "", ""))
            continue
        head = [
            (p, v)
            for p, v in metrics
            if headline is not None and (p == headline or p.endswith(headline))
        ]
        rest = [(p, v) for p, v in metrics if (p, v) not in head]
        for p, v in head:
            rows.append((name, p, fmt(v), "**gated**"))
        for p, v in rest:
            rows.append((name, p, fmt(v), ""))
    lines = [
        "| benchmark | metric | value | note |",
        "|---|---|---:|---|",
    ]
    for name, metric, value, note in rows:
        lines.append(f"| {name} | {metric} | {value} | {note} |")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="render BENCH_*.json artifacts as one markdown table"
    )
    parser.add_argument(
        "paths", nargs="*",
        help="JSON artifacts (default: ./BENCH_*.json)",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the table to this path (append mode, so it "
        "can target $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [Path(p) for p in glob.glob("BENCH_*.json")]
    if not paths:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    table = summarize(paths)
    print(table)
    if args.out:
        with open(args.out, "a") as fh:
            fh.write("\n## Benchmark summary\n\n")
            fh.write(table)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Telemetry-plane acceptance benchmark: cost, determinism, transparency.

The observability PR's contract has three legs, each gated here:

* **Disabled cost (the gated number).**  Telemetry off must be near
  free.  Components bind an instrument bundle (or ``None``) at
  construction, so the disabled residue is one attribute load plus an
  ``is None`` test per instrumented call site.  That residue is
  micro-measured directly (hooked loop minus empty loop, min over
  reps), scaled by a conservative hooks-per-record estimate, and
  divided by the measured per-record time of ``bench_e2e``'s
  wire-to-kernel ingest span -- the hottest span the hooks ride.  CI
  ceilings the ratio (``--max-overhead``, default 0.02 = the <2%%
  promise; nominal is well under 0.5%%).
* **Deterministic merge.**  A 2-worker :class:`ParallelFleet`'s
  deterministic metrics dump (``deterministic_only=True`` -- counters
  and histograms declared stream-shaped, never wall-clock) must be
  **bit-identical** between the process and thread backends, and stay
  so when one worker is crashed mid-run (the dead worker contributes
  its last-synced rows, exactly like ``report()``).
* **Transparency.**  Telemetry must not perturb results: per-trace
  worst ratios and the violating-trace set are asserted bit-identical
  with telemetry on vs off, and a disabled fleet must export zero
  rows.

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_obs.py --gate-events 40 --traces 6 --reps 2
    python benchmarks/bench_obs.py --json BENCH_obs.json
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from fractions import Fraction

from repro.core.events import Event
from repro.obs import metrics as obs_metrics
from repro.runtime.parallel import ParallelFleet
from repro.scenarios.generators import concurrent_workload
from repro.sim.trace import ReceiveRecord

import bench_e2e

DEFAULT_GATE_TRACES = 10
DEFAULT_GATE_EVENTS = 150
DEFAULT_TRACES = 10
DEFAULT_REPS = 3
DEFAULT_BATCH = 64
DEFAULT_KERNEL = "flat_int"
DEFAULT_MAX_OVERHEAD = 0.02
HOOK_ITERS = 200_000
# Disabled hooks actually riding the per-record ingest path, counted
# generously: the worker's per-batch span amortizes to well under one
# per record, the monitor refresh hook fires once per observe, the
# group flush hooks once per watermark flush, the dispatcher hooks
# once per wire batch.  Four per record over-counts every
# configuration shipped.
HOOKS_PER_RECORD = 4
WORKLOAD_SEED = 11
XI = Fraction("1.2")


class _Hooked:
    __slots__ = ("_obs",)

    def __init__(self) -> None:
        self._obs = None


def hook_cost_ns(iters: int = HOOK_ITERS, reps: int = 5) -> float:
    """The disabled-hook residue: (attribute load + ``is None`` test)
    per call site, isolated as hooked-loop minus empty-loop time."""
    holder = _Hooked()
    span = range(iters)
    best_hooked = best_empty = float("inf")
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _rep in range(reps):
            start = time.perf_counter_ns()
            for _ in span:
                if holder._obs is not None:  # the disabled hook
                    raise AssertionError
            best_hooked = min(best_hooked, time.perf_counter_ns() - start)
            start = time.perf_counter_ns()
            for _ in span:
                pass
            best_empty = min(best_empty, time.perf_counter_ns() - start)
    finally:
        if enabled:
            gc.enable()
    return max(0.0, (best_hooked - best_empty) / iters)


def ingest_span_ns(
    gate_traces: int, gate_events: int, reps: int, batch: int, kernel: str
) -> tuple[float, int]:
    """Per-record time of bench_e2e's columnar wire-to-kernel ingest
    span (min over reps), the denominator of the overhead ratio."""
    wires = bench_e2e.gate_workload(gate_traces, gate_events)
    n_records = sum(len(w) for w in wires)
    best = float("inf")
    for _rep in range(reps):
        elapsed, _stats = bench_e2e.ingest_columnar(
            wires, batch, frozenset(), kernel
        )
        best = min(best, elapsed)
    return best * 1e9 / n_records, n_records


def disabled_overhead(
    gate_traces: int, gate_events: int, reps: int, batch: int, kernel: str
) -> dict:
    hook_ns = hook_cost_ns()
    span_ns, n_records = ingest_span_ns(
        gate_traces, gate_events, reps, batch, kernel
    )
    ratio = (hook_ns * HOOKS_PER_RECORD) / span_ns if span_ns else 0.0
    return {
        "hook_ns": round(hook_ns, 3),
        "hooks_per_record": HOOKS_PER_RECORD,
        "ingest_span_ns_per_record": round(span_ns, 1),
        "ingest_records": n_records,
        "disabled_overhead_ratio": round(ratio, 6),
    }


# ----------------------------------------------------------------------
# determinism + transparency fleets
# ----------------------------------------------------------------------


def workload(n_traces: int) -> list[tuple]:
    return list(
        concurrent_workload(
            random.Random(WORKLOAD_SEED),
            n_traces=n_traces,
            records_per_trace=(30, 60),
        )
    )


def poison_record() -> ReceiveRecord:
    """An event at index 7 with no predecessors: ValueError in the
    shard engine, the deterministic worker-crash injection the
    parallel tests use."""
    return ReceiveRecord(
        event=Event(0, 7),
        time=1.0,
        sender=None,
        send_event=None,
        send_time=None,
        payload=None,
        processed=True,
        sends=(),
    )


def doomed_trace(fleet: ParallelFleet) -> str:
    """A fresh trace id the fleet's placement routes to worker 0 (the
    one the poison kills)."""
    return next(
        f"d{i}"
        for i in range(1000)
        if fleet.worker_of(fleet.shard_of(f"d{i}")) == 0
    )


def run_fleet(
    stream: list[tuple],
    backend: str,
    *,
    enabled: bool,
    crash: bool,
) -> dict:
    """One instrumented (or not) fleet pass; returns the canonical
    deterministic dump plus the result surface for identity checks."""
    previous = obs_metrics.set_enabled(enabled)
    obs_metrics.reset_global_registry()
    try:
        with ParallelFleet(
            XI,
            n_shards=4,
            n_workers=2,
            batch_size=8,
            backend=backend,
            wire_batch=16,
        ) as fleet:
            for trace_id, record in stream:
                fleet.ingest(trace_id, record)
            fleet.flush()
            # Fill the per-worker caches at a barrier point -- the rows
            # a crashed worker will contribute afterwards.
            fleet.metrics_rows()
            crashed = ()
            if crash:
                fleet.ingest(doomed_trace(fleet), poison_record())
                fleet.flush()  # the barrier that discovers the crash
                crashed = fleet.report().crashed_shards
                if not crashed:
                    raise AssertionError("poison failed to crash a worker")
            dump = json.dumps(
                fleet.metrics_snapshot(deterministic_only=True),
                sort_keys=True,
                separators=(",", ":"),
            )
            rows = len(fleet.metrics_rows())
            ratios = tuple(
                sorted(
                    (str(tid), str(ratio))
                    for tid, ratio in fleet.all_ratios()
                )
            )
            violating = tuple(sorted(map(str, fleet.violating_traces())))
            return {
                "dump": dump,
                "rows": rows,
                "ratios": ratios,
                "violating": violating,
                "crashed_shards": crashed,
            }
    finally:
        obs_metrics.set_enabled(previous)
        obs_metrics.reset_global_registry()


def run(
    gate_traces: int,
    gate_events: int,
    reps: int,
    batch: int,
    kernel: str,
    n_traces: int,
) -> dict:
    stream = workload(n_traces)

    overhead = disabled_overhead(
        gate_traces, gate_events, reps, batch, kernel
    )

    # Deterministic merge: process vs thread, clean and crashed.
    clean = {
        backend: run_fleet(stream, backend, enabled=True, crash=False)
        for backend in ("thread", "process")
    }
    crashed = {
        backend: run_fleet(stream, backend, enabled=True, crash=True)
        for backend in ("thread", "process")
    }
    cross_identical = clean["thread"]["dump"] == clean["process"]["dump"]
    crash_identical = crashed["thread"]["dump"] == crashed["process"]["dump"]

    # Transparency: telemetry on vs off must not perturb results, and
    # a disabled fleet must export nothing.
    off = run_fleet(stream, "thread", enabled=False, crash=False)
    on = clean["thread"]
    on_off_identical = (
        on["ratios"] == off["ratios"] and on["violating"] == off["violating"]
    )

    return {
        "overhead": overhead,
        "determinism": {
            "dump_bytes": len(on["dump"]),
            "instrument_rows": on["rows"],
            "cross_backend_identical": cross_identical,
            "crash_tolerant_identical": crash_identical,
            "crashed_shards": list(crashed["thread"]["crashed_shards"]),
        },
        "transparency": {
            "on_off_identical": on_off_identical,
            "disabled_rows": off["rows"],
            "violations": len(on["violating"]),
        },
        "gate": {
            "disabled_overhead_ratio": overhead["disabled_overhead_ratio"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "telemetry-plane acceptance: disabled-cost ceiling, "
            "cross-backend deterministic-dump bit-identity (crash "
            "tolerance included), and on-vs-off result transparency"
        )
    )
    parser.add_argument(
        "--gate-traces", type=int, default=DEFAULT_GATE_TRACES,
        help="traces in the ingest-span denominator workload",
    )
    parser.add_argument(
        "--gate-events", type=int, default=DEFAULT_GATE_EVENTS,
        help="events per gate trace",
    )
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS,
        help="ingest-span repetitions; min over reps",
    )
    parser.add_argument(
        "--batch", type=int, default=DEFAULT_BATCH,
        help="records per wire batch in the ingest span",
    )
    parser.add_argument(
        "--kernel", default=DEFAULT_KERNEL,
        help="detection kernel for the ingest span",
    )
    parser.add_argument(
        "--traces", type=int, default=DEFAULT_TRACES,
        help="traces in the determinism/transparency fleet workload",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=DEFAULT_MAX_OVERHEAD,
        help=(
            "hard ceiling on the disabled-overhead ratio "
            "(0 disables; CI uses 0.02, the <2%% promise)"
        ),
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics dict to this path",
    )
    args = parser.parse_args(argv)

    result = run(
        args.gate_traces,
        args.gate_events,
        args.reps,
        args.batch,
        args.kernel,
        args.traces,
    )
    over = result["overhead"]
    det = result["determinism"]
    trans = result["transparency"]
    print(
        f"[bench_obs] disabled hooks: {over['hook_ns']:.2f}ns x "
        f"{over['hooks_per_record']}/record over "
        f"{over['ingest_span_ns_per_record']:.0f}ns/record ingest span "
        f"= {over['disabled_overhead_ratio']:.4%} overhead"
    )
    print(
        f"[bench_obs] deterministic dump ({det['dump_bytes']} bytes, "
        f"{det['instrument_rows']} rows): process vs thread "
        f"{'bit-identical' if det['cross_backend_identical'] else 'DIFFER'}"
        f"; with worker crash (shards {det['crashed_shards']}): "
        f"{'bit-identical' if det['crash_tolerant_identical'] else 'DIFFER'}"
    )
    print(
        f"[bench_obs] transparency: ratios + {trans['violations']} "
        f"violations on-vs-off "
        f"{'identical' if trans['on_off_identical'] else 'DIFFER'}, "
        f"{trans['disabled_rows']} rows exported while disabled"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")

    failed = False
    if args.max_overhead and (
        over["disabled_overhead_ratio"] >= args.max_overhead
    ):
        print(
            f"[bench_obs] FAIL: disabled overhead "
            f"{over['disabled_overhead_ratio']:.4%} at or above the "
            f"{args.max_overhead:.0%} ceiling"
        )
        failed = True
    if not det["cross_backend_identical"]:
        print("[bench_obs] FAIL: cross-backend dump differs")
        failed = True
    if not det["crash_tolerant_identical"]:
        print("[bench_obs] FAIL: crash-tolerant dump differs")
        failed = True
    if not trans["on_off_identical"]:
        print("[bench_obs] FAIL: telemetry perturbed results")
        failed = True
    if trans["disabled_rows"]:
        print("[bench_obs] FAIL: disabled fleet exported metric rows")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

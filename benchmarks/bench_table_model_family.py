"""T10 -- Section 5: the partially synchronous model family, side by side.

Paper claim (Sections 5.2-5.3): the ABC model tolerates zero delays and
continuously growing delays that break the Theta, FAR and Archimedean
assumptions; the MCM and MMR conditions are order-based like ABC's but
more demanding.  Measured: every checker on the same growing-delay
execution -- the ABC worst ratio saturates while the others' parameters
diverge.
"""

from fractions import Fraction

from repro.algorithms import ClockSyncProcess
from repro.core import worst_relevant_ratio
from repro.models import (
    measure_archimedean,
    measure_far,
    measure_mcm,
    measure_parsync,
    measure_theta_static,
    measure_wtl,
)
from repro.sim import (
    ClusterDelay,
    GrowingDelay,
    Network,
    SimulationLimits,
    Simulator,
    Topology,
    UniformDelay,
    build_execution_graph,
)


def growing_run(max_tick: int, seed: int = 3):
    n, f = 6, 1
    cluster_of = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
    delays = ClusterDelay(
        cluster_of,
        intra=UniformDelay(1.0, 1.3),
        inter=GrowingDelay(UniformDelay(1.0, 1.3), rate=0.3),
    )
    procs = [ClockSyncProcess(f, max_tick=max_tick) for _ in range(n)]
    net = Network(Topology.fully_connected(n), delays)
    trace = Simulator(procs, net, seed=seed).run(
        SimulationLimits(max_events=50_000)
    )
    return trace


def test_model_family_on_growing_delays(benchmark):
    def measure_all():
        short = growing_run(6)
        long = growing_run(14)
        return {
            "theta_short": measure_theta_static(short).ratio,
            "theta_long": measure_theta_static(long).ratio,
            "far_short": measure_far(short).final_average,
            "far_long": measure_far(long).final_average,
            "arch_long": measure_archimedean(long).ratio,
            "mcm_long": measure_mcm(long).classifiable,
            "parsync_long": measure_parsync(long),
            "wtl_long": measure_wtl(long, f=1, delta=2.0, after=0.0),
            "abc_short": worst_relevant_ratio(build_execution_graph(short)),
            "abc_long": worst_relevant_ratio(build_execution_graph(long)),
        }

    r = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    # Delay-based parameters diverge with the horizon...
    assert r["theta_long"] > r["theta_short"] * 2
    assert r["far_long"] > r["far_short"] * 2
    # ... while the ABC ratio saturates (pattern-dependent, not drift-
    # dependent): it grows by far less than the Theta blow-up.
    growth = Fraction(r["abc_long"]) / Fraction(r["abc_short"])
    assert float(growth) < r["theta_long"] / r["theta_short"]
    benchmark.extra_info["theta_short"] = round(r["theta_short"], 1)
    benchmark.extra_info["theta_long"] = round(r["theta_long"], 1)
    benchmark.extra_info["far_short"] = round(r["far_short"], 2)
    benchmark.extra_info["far_long"] = round(r["far_long"], 2)
    benchmark.extra_info["abc_short"] = str(r["abc_short"])
    benchmark.extra_info["abc_long"] = str(r["abc_long"])
    benchmark.extra_info["mcm_classifiable"] = r["mcm_long"]


def test_mmr_condition_on_probe_rounds(benchmark):
    """MMR needs a fixed always-fast quorum; with one systematically slow
    responder the remaining fast set provides it."""
    from repro.models import mmr_holds

    def build_orderings():
        # Response orders recorded from repeated query rounds where
        # process 3's link is slow: it always arrives last.
        return [
            [0, 1, 2, 3],
            [1, 0, 2, 3],
            [0, 2, 1, 3],
            [2, 0, 1, 3],
        ]

    orderings = benchmark(build_orderings)
    holds, quorum = mmr_holds(orderings, n=4, f=1)
    assert holds and 3 not in quorum
    benchmark.extra_info["winning_quorum"] = sorted(quorum)

"""T11+ -- Section 6 extension features built on the ABC condition.

Paper sketches reproduced as working systems:

* the **restricted-condition Omega**: "the ABC synchrony condition could
  be restricted to a fixed subset of f + 2 processes, which elect a
  leader among themselves and disseminate its id" -- implemented in
  `repro.algorithms.leader_election`;
* an **admissibility-enforcing scheduler** (the model's semantics made
  operational): with wildly skewed delays a plain scheduler produces
  inadmissible executions, the enforcer keeps them admissible by pulling
  stranded slow messages forward.
"""

from fractions import Fraction

import pytest

from repro.algorithms import CoreElector, LeaderFollower, PingPongMonitor, PongResponder
from repro.core import check_abc
from repro.sim import (
    AbcEnforcingSimulator,
    FixedDelay,
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
    build_execution_graph,
)
from repro.sim.faults import CrashAfter

XI = Fraction(2)


@pytest.mark.parametrize("crashed_leader", [False, True])
def test_omega_leader_election(benchmark, crashed_leader):
    n, f = 6, 1
    core = tuple(range(f + 2))
    others = tuple(range(f + 2, n))

    def run():
        procs: list = []
        for pid in range(n):
            if pid in core:
                elect = CoreElector(core, others, xi=XI, max_probes=8)
                if crashed_leader and pid == 0:
                    procs.append(CrashAfter(elect, steps=0))
                else:
                    procs.append(elect)
            else:
                procs.append(LeaderFollower())
        net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
        faulty = {0} if crashed_leader else set()
        Simulator(procs, net, faulty=faulty, seed=2).run(
            SimulationLimits(max_events=60_000)
        )
        return procs

    procs = benchmark(run)
    expected = 1 if crashed_leader else 0
    correct = [p for pid, p in enumerate(procs)
               if not (crashed_leader and pid == 0)]
    assert all(p.leader == expected for p in correct)
    benchmark.extra_info["crashed_leader"] = crashed_leader
    benchmark.extra_info["elected"] = expected


def test_enforcing_scheduler_vs_plain(benchmark):
    def setup():
        monitor = PingPongMonitor(targets=[1, 2], xi=XI, max_probes=3)
        procs = [monitor, PongResponder(), PongResponder()]
        delays = PerLinkDelay(
            {(0, 2): FixedDelay(30.0), (2, 0): FixedDelay(30.0)},
            default=FixedDelay(1.0),
        )
        net = Network(Topology.fully_connected(3), delays)
        return monitor, procs, net

    def run_both():
        _m1, procs1, net1 = setup()
        plain = Simulator(procs1, net1, seed=0)
        plain_trace = plain.run(SimulationLimits(max_events=400))
        m2, procs2, net2 = setup()
        enforcing = AbcEnforcingSimulator(procs2, net2, seed=0, xi=XI)
        enforced_trace = enforcing.run(SimulationLimits(max_events=400))
        return plain_trace, enforced_trace, enforcing.pulled_forward, m2

    plain_trace, enforced_trace, pulled, monitor = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert not check_abc(build_execution_graph(plain_trace), XI).admissible
    assert check_abc(build_execution_graph(enforced_trace), XI).admissible
    assert monitor.suspected == set()  # enforced accuracy
    benchmark.extra_info["pulled_forward"] = pulled

"""F4 -- Figure 4: the early reply closes only a non-relevant cycle.

Paper claim: if p_slow's reply arrives *before* the chain-closing event
psi, the cycle N through psi is non-relevant (a local edge follows the
orientation) and nothing is violated; the reply's own arrival phi closes
a smaller relevant cycle (ratio 1).  Measured: classification of every
cycle in the constructed graph.
"""

from repro.core import check_abc, classify, enumerate_cycles, worst_relevant_ratio
from repro.scenarios import fig4_graph


def test_fig4_graph_admissible(benchmark):
    graph = fig4_graph(2)

    def admissible():
        return check_abc(graph, 2).admissible

    assert benchmark(admissible)
    assert worst_relevant_ratio(graph) == 1  # phi's smaller relevant cycle
    benchmark.extra_info["worst_ratio"] = "1"


def test_fig4_cycle_census(benchmark):
    graph = fig4_graph(2)

    def census():
        relevant = nonrelevant = 0
        for cycle in enumerate_cycles(graph):
            if classify(cycle).relevant:
                relevant += 1
            else:
                nonrelevant += 1
        return relevant, nonrelevant

    relevant, nonrelevant = benchmark(census)
    assert relevant >= 1      # the smaller cycle closed by phi
    assert nonrelevant >= 1   # the cycle N closed by psi
    benchmark.extra_info["relevant_cycles"] = relevant
    benchmark.extra_info["nonrelevant_cycles"] = nonrelevant

"""T5 -- Theorem 5: correctness of the lock-step round simulation.

Paper claim: every correct process receives the round-r messages of all
correct processes before entering round r + 1.  Measured: the input
snapshots of every entered round over (n, f, Xi) sweeps with faults,
plus the cost per simulated round.
"""

from fractions import Fraction
from typing import Any, Mapping

import pytest

from repro.algorithms import (
    ByzantineTickSpammer,
    LockstepProcess,
    round_phases_for,
)
from repro.analysis import verify_lockstep
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
)


class _Echo:
    def __init__(self, pid: int) -> None:
        self.pid = pid

    def initial_message(self) -> Any:
        return (self.pid, 0)

    def on_round(self, r: int, received: Mapping[int, Any]) -> Any:
        return (self.pid, r)


def run(n, f, xi, rounds, byzantine=False, seed=0):
    phases = round_phases_for(xi)
    procs: list = [
        LockstepProcess(f, phases, _Echo(i), max_rounds=rounds)
        for i in range(n)
    ]
    faulty = set()
    if byzantine:
        procs[n - 1] = ByzantineTickSpammer(
            spread=phases * rounds, burst=2, seed=seed
        )
        faulty = {n - 1}
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    sim = Simulator(procs, net, faulty=faulty, seed=seed)
    trace = sim.run(SimulationLimits(max_events=300_000))
    return trace, procs


@pytest.mark.parametrize("n,f,xi", [(4, 1, Fraction(2)), (7, 2, Fraction(2)),
                                    (4, 1, Fraction(5, 2))])
def test_theorem5_lockstep(benchmark, n, f, xi):
    def simulate():
        return run(n, f, xi, rounds=4, seed=n)

    trace, procs = benchmark(simulate)
    holds, checked = verify_lockstep(trace, procs)
    assert holds
    benchmark.extra_info["n,f,Xi"] = f"{n},{f},{xi}"
    benchmark.extra_info["round_entries_checked"] = checked
    benchmark.extra_info["events"] = len(trace.records)


def test_theorem5_with_byzantine(benchmark):
    def simulate():
        return run(4, 1, Fraction(2), rounds=4, byzantine=True, seed=9)

    trace, procs = benchmark(simulate)
    holds, checked = verify_lockstep(trace, procs)
    assert holds and checked > 0
    benchmark.extra_info["fault"] = "byzantine ticker"

"""F6 -- Figure 6: the linear system A x < b and its solution.

Paper claim: the system (2k bound rows + one row per constrained cycle)
is solvable for every ABC-admissible finite execution graph (Theorem 12).
Measured: construction + LP solve on the explicit (exponential) system
for small graphs, and the compact potential formulation's scaling on
simulated executions of growing size.
"""

from fractions import Fraction

import pytest

from repro.core import (
    build_farkas_system,
    normalized_assignment,
    solve_farkas_lp,
)
from repro.scenarios import fig3_graph
from repro.scenarios.generators import theta_band_trace
from repro.sim import build_execution_graph

XI = Fraction(2)


def test_explicit_farkas_system(benchmark):
    graph, _ = fig3_graph(2)

    def build_and_solve():
        system = build_farkas_system(graph, Fraction(5, 2))
        return system, solve_farkas_lp(system)

    system, x = benchmark(build_and_solve)
    assert x is not None
    benchmark.extra_info["rows"] = int(system.matrix.shape[0])
    benchmark.extra_info["cols"] = int(system.matrix.shape[1])
    benchmark.extra_info["relevant_rows"] = system.n_relevant
    benchmark.extra_info["nonrelevant_rows"] = system.n_nonrelevant


@pytest.mark.parametrize("max_tick", [3, 6, 9])
def test_potential_formulation_scaling(benchmark, max_tick):
    trace = theta_band_trace(n=4, f=1, theta=1.5, max_tick=max_tick, seed=1)
    graph = build_execution_graph(trace)

    def assign():
        return normalized_assignment(graph, XI)

    assignment = benchmark(assign)
    assert assignment is not None
    benchmark.extra_info["events"] = graph.n_events
    benchmark.extra_info["messages"] = len(graph.messages)
    benchmark.extra_info["epsilon"] = str(assignment.epsilon)

"""F8 -- Figure 8 / Section 5.1: the ABC-vs-ParSync separation game.

Paper claim: the Prover (choosing Xi first) beats any Adversary-chosen
(Phi, Delta): an execution exists that satisfies the ABC condition for
*any* Xi > 1 while violating the DLS bounds -- processes p and q make
progress bounded only by |Z-| while r takes no step.  Measured: the
realized Phi and Delta of the prover's execution for an adversary sweep.
"""

import pytest

from repro.models import play_fig8_game
from repro.scenarios import fig8_trace


@pytest.mark.parametrize("phi,delta", [(3, 3), (8, 8), (16, 4), (4, 16)])
def test_prover_wins(benchmark, phi, delta):
    def play():
        trace = fig8_trace(phi, delta)
        return play_fig8_game(trace, phi, delta)

    outcome = benchmark(play)
    assert outcome.prover_wins
    assert outcome.parsync.phi > phi
    assert outcome.parsync.delta > delta
    assert outcome.worst_ratio is not None and outcome.worst_ratio <= 1
    benchmark.extra_info["adversary"] = f"phi={phi}, delta={delta}"
    benchmark.extra_info["realized_phi"] = outcome.parsync.phi
    benchmark.extra_info["realized_delta"] = outcome.parsync.delta
    benchmark.extra_info["worst_ratio"] = str(outcome.worst_ratio)

"""Benchmark-suite configuration.

Every benchmark asserts the paper claim it reproduces (the bench fails if
the reproduction breaks) and records the measured quantities in
``benchmark.extra_info`` so they appear in pytest-benchmark's JSON
output.  EXPERIMENTS.md summarizes paper-vs-measured for each entry.
"""

"""Benchmark-suite configuration.

Every benchmark asserts the paper claim it reproduces (the bench fails if
the reproduction breaks) and records the measured quantities in
``benchmark.extra_info`` so they appear in pytest-benchmark's JSON
output.  ``docs/benchmarks.md`` documents what each suite measures, how
to run it, and the CI gates.
"""

"""T7 -- Theorems 7 / 12: existence of normalized delay assignments.

Paper claim: *every* finite ABC-admissible execution graph admits message
delays in (1, Xi) preserving causal equivalence -- and (converse) no
inadmissible graph does.  Measured: the equivalence rate over random
graphs (must be 100% in both directions) and the exact-arithmetic
construction cost.
"""

import random
from fractions import Fraction

import pytest

from repro.core import (
    assignment_exists,
    check_abc,
    normalized_assignment,
    verify_normalized,
    worst_relevant_ratio,
)
from repro.scenarios.generators import random_execution_graph


@pytest.mark.parametrize("xi", [Fraction(3, 2), Fraction(2), Fraction(3)])
def test_equivalence_rate(benchmark, xi):
    rng = random.Random(int(xi * 6))
    graphs = [
        random_execution_graph(rng, 3, rng.randint(3, 9)) for _ in range(12)
    ]

    def sweep():
        agree = 0
        admissible_count = 0
        for graph in graphs:
            admissible = check_abc(graph, xi).admissible
            admissible_count += admissible
            if assignment_exists(graph, xi) == admissible:
                agree += 1
        return agree, admissible_count

    agree, admissible_count = benchmark(sweep)
    assert agree == len(graphs)  # 100% in both directions
    benchmark.extra_info["xi"] = str(xi)
    benchmark.extra_info["graphs"] = len(graphs)
    benchmark.extra_info["admissible"] = admissible_count


def test_certified_construction(benchmark):
    rng = random.Random(99)
    graph = random_execution_graph(rng, 4, 20)
    worst = worst_relevant_ratio(graph) or Fraction(1)
    xi = worst + Fraction(1, 2)

    def construct():
        return normalized_assignment(graph, xi)

    assignment = benchmark(construct)
    assert assignment is not None
    assert verify_normalized(graph, assignment)
    benchmark.extra_info["messages"] = len(graph.messages)
    benchmark.extra_info["xi"] = str(xi)
    benchmark.extra_info["epsilon"] = str(assignment.epsilon)

"""Incremental ABC-enforcing scheduler vs. rebuild-per-delivery seed.

Design choice called out in the speculative-enforcer rework: the
scheduler keeps ONE :class:`~repro.core.synchrony.AdmissibilityChecker`
mirroring the realized trace and evaluates every (tentative delivery,
pending message) pair by speculative extension
(``checkpoint``/``rollback`` on the live digraph, source-seeded
negative-cycle detection, settled-prefix tombstoning), instead of
rebuilding the execution graph and a fresh checker for every oracle call
the way the seed implementation did.  Measured: wall-clock of the
incremental enforcer against a frozen copy of the seed enforcer on the
enforcer-stressing scenario families (ping-pong storm, zero-delay burst,
long silence), with traces and ``pulled_forward`` counts required to be
byte-identical on every benchmarked scenario.

Also runnable as a script (CI smoke / the >=5x acceptance gate)::

    python benchmarks/bench_abc_enforcer.py --events 40 --min-speedup 0
    python benchmarks/bench_abc_enforcer.py --events 200 --min-speedup 5 \
        --json BENCH_abc_enforcer.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from fractions import Fraction

from seed_abc_enforcer import SeedAbcEnforcingSimulator

from repro.core.synchrony import has_relevant_cycle_with_ratio_at_least
from repro.scenarios.generators import (
    long_silence,
    ping_pong_storm,
    zero_delay_burst,
)
from repro.sim.abc_scheduler import AbcEnforcingSimulator
from repro.sim.engine import SimulationLimits
from repro.sim.trace import build_execution_graph

DEFAULT_EVENTS = 200
# Hard floor for automated runs.  Nominal speedups are >=9x, but
# wall-clock ratios on shared/noisy machines dip well below nominal, so
# hard gates (this pytest entry and the CI step) use 2x and leave the
# measured numbers as the informational record; the acceptance run is
# the CLI with --min-speedup 5 on a quiet machine.
HARD_SPEEDUP_FLOOR = 2.0
XI = Fraction(2)


# ----------------------------------------------------------------------
# Workloads and contenders
# ----------------------------------------------------------------------


SCENARIOS = {
    "ping_pong_storm": lambda: ping_pong_storm(
        n_responders=3, xi=XI, slow=25.0, fast=1.0, max_probes=50
    ),
    "zero_delay_burst": lambda: zero_delay_burst(
        n_responders=2, xi=XI, slow=15.0, max_probes=50
    ),
    "long_silence": lambda: long_silence(
        n_responders=2, xi=XI, silence=400.0, max_probes=60
    ),
}


def _run(simulator_cls, scenario, n_events, seed, **kwargs):
    processes, network = SCENARIOS[scenario]()
    sim = simulator_cls(processes, network, seed=seed, xi=XI, **kwargs)
    trace = sim.run(SimulationLimits(max_events=n_events))
    return sim, trace


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def compare_scenario(scenario, n_events, seed=3):
    """Run seed and incremental enforcers; returns the metrics dict.

    Raises ``AssertionError`` unless traces are byte-identical and the
    ``pulled_forward`` counts agree.
    """
    (seed_sim, seed_trace), seed_s = _timed(
        _run, SeedAbcEnforcingSimulator, scenario, n_events, seed
    )
    (incr_sim, incr_trace), incr_s = _timed(
        _run, AbcEnforcingSimulator, scenario, n_events, seed
    )
    assert repr(seed_trace.records) == repr(incr_trace.records), (
        f"{scenario}: traces differ"
    )
    assert seed_trace.records == incr_trace.records
    assert seed_sim.pulled_forward == incr_sim.pulled_forward, (
        f"{scenario}: pulled_forward {seed_sim.pulled_forward} != "
        f"{incr_sim.pulled_forward}"
    )
    assert not incr_sim.violation_detected
    # The enforcer's whole point: the realized execution is admissible.
    graph = build_execution_graph(incr_trace)
    assert not has_relevant_cycle_with_ratio_at_least(graph, XI)
    return {
        "scenario": scenario,
        "events": len(incr_trace.records),
        "pulled_forward": incr_sim.pulled_forward,
        "tombstoned_events": incr_sim.tombstoned_events,
        "live_digraph_events": incr_sim.live_digraph_events,
        "seed_s": seed_s,
        "incremental_s": incr_s,
        "speedup": seed_s / incr_s,
    }


# ----------------------------------------------------------------------
# pytest entries
# ----------------------------------------------------------------------


def test_enforcer_speedup_and_trace_identity():
    """Byte-identical traces and pulled_forward counts on every
    benchmarked scenario, and speedup over the seed enforcer above the
    noise-tolerant hard floor (nominal is >=9x; see HARD_SPEEDUP_FLOOR)."""
    results = [
        compare_scenario(name, DEFAULT_EVENTS) for name in SCENARIOS
    ]
    for r in results:
        sys.stderr.write(
            f"\n[bench_abc_enforcer] {r['scenario']} events={r['events']} "
            f"pulled={r['pulled_forward']} seed={r['seed_s']:.3f}s "
            f"incremental={r['incremental_s']:.3f}s "
            f"speedup={r['speedup']:.1f}x"
        )
    sys.stderr.write("\n")
    worst = min(r["speedup"] for r in results)
    assert worst >= HARD_SPEEDUP_FLOOR, (
        f"worst scenario speedup {worst:.1f}x below the "
        f"{HARD_SPEEDUP_FLOOR}x hard floor"
    )


def test_enforcer_benchmark(benchmark):
    def run():
        # Fresh processes per round: PingPongMonitor is stateful, so
        # reusing instances would shrink later rounds to near no-ops.
        processes, network = SCENARIOS["ping_pong_storm"]()
        sim = AbcEnforcingSimulator(processes, network, seed=3, xi=XI)
        return sim.run(SimulationLimits(max_events=DEFAULT_EVENTS))

    trace = benchmark(run)
    assert len(trace.records) == DEFAULT_EVENTS
    benchmark.extra_info["events"] = len(trace.records)


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Compare the incremental ABC-enforcing scheduler against the "
            "frozen rebuild-per-delivery seed enforcer."
        )
    )
    parser.add_argument(
        "--events", type=int, default=DEFAULT_EVENTS, help="events per run"
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless every scenario reaches this speedup",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the per-scenario metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    results = []
    for name in SCENARIOS:
        r = compare_scenario(name, args.events, args.seed)
        results.append(r)
        print(
            f"{name:18s} events={r['events']:4d} pulled={r['pulled_forward']:3d} "
            f"tombstoned={r['tombstoned_events']:3d} "
            f"seed={r['seed_s'] * 1e3:8.1f} ms "
            f"incremental={r['incremental_s'] * 1e3:7.1f} ms "
            f"({r['speedup']:5.1f}x)"
        )
    print("traces byte-identical, pulled_forward identical on every scenario")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {"events": args.events, "seed": args.seed, "results": results},
                fh,
                indent=2,
            )
        print(f"wrote {args.json}")
    if args.min_speedup is not None:
        worst = min(r["speedup"] for r in results)
        if worst < args.min_speedup:
            print(f"FAIL: worst speedup {worst:.1f}x < {args.min_speedup}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Detection-kernel shootout: ``flat_int`` vs the ``py_object`` reference.

The acceptance benchmark of the kernel layer (:mod:`repro.core.kernel`).
The 200-event growing-trace monitor workload of
``bench_table_incremental`` -- the gate every incremental-checker PR has
been measured on -- is replayed record by record through
:class:`~repro.analysis.online.OnlineAbcMonitor` once per kernel, and
two quantities are compared:

* **end-to-end** -- full monitor replay wall clock per kernel.  This
  includes graph ingestion, diff absorption, and ratio bookkeeping that
  no kernel can touch, so it understates the kernel win.
* **oracle-only** -- time spent inside
  ``AdmissibilityChecker._has_negative_cycle`` (the kernel dispatch
  point), accumulated by an identical timing shim installed for *both*
  kernels, so the shim overhead cancels.  This is the quantity the
  kernel actually owns, and the one the CI floor gates.

Both runs are interleaved min-of-N (per-rep alternation absorbs CPU
frequency drift) and every rep asserts the two kernels produced
**bit-identical** per-record worst-ratio sequences and oracle-call
counts -- the benchmark doubles as a 200-event differential test, and
fails loudly if the kernels ever disagree.

A per-profile sweep (storm / burst / idler / relay from
:mod:`repro.scenarios.generators`) is reported alongside: the speedup
is workload-shaped -- repin-heavy storm profiles (every record grows
the worst ratio) sit well below message-dense burst profiles -- and the
sweep keeps that spread visible instead of letting one shape hide in an
average.

CI gates **oracle-only >= 3x** (shared-runner floor); nominal on a
quiet machine is ~3.5-4x oracle-only and ~3x end-to-end, recorded in
the ``BENCH_kernel.json`` artifact.  The end-to-end blend additionally
carries a *soft* floor (``--min-e2e-speedup``, warn-only): e2e
includes ingestion and ratio bookkeeping the kernel cannot touch --
``bench_e2e`` owns and gates that span -- so a dip below the soft
floor flags early without failing unrelated PRs.

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_kernel.py --events 40 --reps 2 --min-speedup 0
    python benchmarks/bench_kernel.py --min-speedup 3 --json BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.analysis.online import OnlineAbcMonitor
from repro.core.synchrony import AdmissibilityChecker
from repro.scenarios.generators import profiled_trace_records
from repro.sim.trace import Trace

from bench_table_incremental import make_workload

DEFAULT_EVENTS = 200
DEFAULT_REPS = 5
DEFAULT_MIN_SPEEDUP = 3.0
PROFILES = ("storm", "burst", "idler", "relay")
PROFILE_EVENTS = 150
PROFILE_SEED = 3


class _OracleTimer:
    """Accumulates wall clock spent inside the kernel dispatch point.

    Installed identically for both kernels (one extra function call and
    two ``perf_counter`` reads per oracle query), so the shim's own
    overhead cancels out of the speedup ratio.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._original = AdmissibilityChecker._has_negative_cycle

    def __enter__(self) -> "_OracleTimer":
        original = self._original
        timer = self

        def timed(self, p, q, sources=None):
            start = time.perf_counter()
            try:
                return original(self, p, q, sources)
            finally:
                timer.seconds += time.perf_counter() - start

        AdmissibilityChecker._has_negative_cycle = timed
        return self

    def __exit__(self, *exc) -> None:
        AdmissibilityChecker._has_negative_cycle = self._original


def replay(trace: Trace, kernel: str):
    """One monitor replay; returns (e2e_s, oracle_s, ratios, calls)."""
    with _OracleTimer() as oracle:
        start = time.perf_counter()
        monitor = OnlineAbcMonitor(faulty=trace.faulty, kernel=kernel)
        ratios = [monitor.observe(record) for record in trace.records]
        e2e = time.perf_counter() - start
    return e2e, oracle.seconds, ratios, monitor.oracle_calls


def shootout(trace: Trace, reps: int) -> dict:
    """Interleaved min-of-``reps`` for both kernels, identity-checked."""
    best = {
        "py_object": {"e2e_s": float("inf"), "oracle_s": float("inf")},
        "flat_int": {"e2e_s": float("inf"), "oracle_s": float("inf")},
    }
    for _rep in range(reps):
        for kernel in ("py_object", "flat_int"):
            e2e, oracle_s, ratios, calls = replay(trace, kernel)
            slot = best[kernel]
            slot["e2e_s"] = min(slot["e2e_s"], e2e)
            slot["oracle_s"] = min(slot["oracle_s"], oracle_s)
            slot["ratios"] = ratios
            slot["oracle_calls"] = calls
        assert best["py_object"]["ratios"] == best["flat_int"]["ratios"], (
            "kernels disagree on the per-record worst-ratio sequence"
        )
        assert (
            best["py_object"]["oracle_calls"]
            == best["flat_int"]["oracle_calls"]
        ), "kernels disagree on oracle-call counts"
    py, flat = best["py_object"], best["flat_int"]
    return {
        "records": len(trace.records),
        "py_object_e2e_s": round(py["e2e_s"], 6),
        "flat_int_e2e_s": round(flat["e2e_s"], 6),
        "py_object_oracle_s": round(py["oracle_s"], 6),
        "flat_int_oracle_s": round(flat["oracle_s"], 6),
        "oracle_calls": py["oracle_calls"],
        "e2e_speedup": round(py["e2e_s"] / flat["e2e_s"], 3),
        "oracle_speedup": round(py["oracle_s"] / flat["oracle_s"], 3),
        "bit_identical": True,
    }


def profile_trace(profile: str, n_events: int) -> Trace:
    records = list(
        profiled_trace_records(
            random.Random(PROFILE_SEED), profile, n_events
        )
    )
    processes = {record.event.process for record in records}
    processes |= {
        record.send_event.process
        for record in records
        if record.send_event is not None
    }
    return Trace(n=len(processes), faulty=frozenset(), records=records)


def run(events: int, reps: int, profile_events: int, sweep: bool) -> dict:
    trace, _prefixes = make_workload(events)
    result = {"workload": f"monitor-{events}", **shootout(trace, reps)}
    out = {"gate": result, "profiles": {}}
    if sweep:
        for profile in PROFILES:
            out["profiles"][profile] = shootout(
                profile_trace(profile, profile_events), max(2, reps // 2)
            )
    return out


def test_kernel_bit_identity():
    """Pytest entry: smoke-size shootout on the gate workload and every
    profile.  Bit-identity (ratios + oracle-call counts) is asserted
    inside :func:`shootout` every rep; no speed floor is applied --
    wall-clock gating is the CLI's job, on quiet hardware or in the
    dedicated CI step.
    """
    result = run(events=60, reps=2, profile_events=40, sweep=True)
    assert result["gate"]["bit_identical"]
    assert result["gate"]["oracle_calls"] > 0
    for profile, row in result["profiles"].items():
        assert row["bit_identical"], profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "flat_int vs py_object kernel shootout on the 200-event "
            "monitor gate workload (bit-identity asserted every rep)"
        )
    )
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS,
        help="interleaved repetitions; min over reps is reported",
    )
    parser.add_argument(
        "--profile-events", type=int, default=PROFILE_EVENTS,
        help="events per profile in the per-profile sweep",
    )
    parser.add_argument(
        "--no-sweep", action="store_true",
        help="skip the per-profile sweep (smoke runs)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help=(
            "hard floor on the oracle-only speedup of the gate "
            "workload (0 disables; CI uses 3, nominal is ~3.5-4)"
        ),
    )
    parser.add_argument(
        "--min-e2e-speedup", type=float, default=0.0,
        help=(
            "soft floor on the end-to-end monitor speedup: prints a "
            "WARN below it but never fails the run (0 disables).  The "
            "e2e blend includes ingestion and ratio bookkeeping the "
            "kernel cannot touch -- bench_e2e gates that span -- so "
            "this floor is an early-warning trip wire, not a gate; "
            "nominal is ~2.5-3x"
        ),
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics dict to this path",
    )
    args = parser.parse_args(argv)

    result = run(
        args.events, args.reps, args.profile_events, not args.no_sweep
    )
    gate = result["gate"]
    print(
        f"[bench_kernel] {gate['workload']}: "
        f"e2e {gate['py_object_e2e_s'] * 1e3:.1f}ms -> "
        f"{gate['flat_int_e2e_s'] * 1e3:.1f}ms "
        f"({gate['e2e_speedup']:.2f}x), "
        f"oracle {gate['py_object_oracle_s'] * 1e3:.1f}ms -> "
        f"{gate['flat_int_oracle_s'] * 1e3:.1f}ms "
        f"({gate['oracle_speedup']:.2f}x), "
        f"{gate['oracle_calls']} oracle calls, bit-identical"
    )
    for profile, row in result["profiles"].items():
        print(
            f"[bench_kernel]   {profile:>6}: e2e {row['e2e_speedup']:.2f}x, "
            f"oracle {row['oracle_speedup']:.2f}x "
            f"({row['records']} records)"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")
    if args.min_e2e_speedup and gate["e2e_speedup"] < args.min_e2e_speedup:
        print(
            f"[bench_kernel] WARN: e2e speedup {gate['e2e_speedup']:.2f}x "
            f"below the {args.min_e2e_speedup:.1f}x soft floor (not "
            "gating; see bench_e2e for the gated ingest span)"
        )
    if args.min_speedup and gate["oracle_speedup"] < args.min_speedup:
        print(
            f"[bench_kernel] FAIL: oracle speedup "
            f"{gate['oracle_speedup']:.2f}x below the "
            f"{args.min_speedup:.1f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Incremental ?ABC monitoring vs. per-prefix batch recomputation.

Design choice called out in the incremental-checker rework: the running
worst relevant ratio of a growing execution is maintained by
:class:`~repro.analysis.online.OnlineAbcMonitor` (traversal digraph
extended in place, one Farey-successor oracle call per new message)
instead of re-running a full Stern-Brocot search per prefix.  Measured:
wall-clock of the monitor against (a) the frozen seed implementation --
edge-list Bellman-Ford with the digraph rebuilt on every oracle call and
an unclamped gallop -- and (b) the current batch checker re-run per
prefix, plus exactness of the monitor against batch on every prefix.

Also runnable as a script (CI smoke / tiny sizes)::

    python benchmarks/bench_table_incremental.py --events 40
"""

from __future__ import annotations

import argparse
import sys
import time
from fractions import Fraction

from repro.analysis.online import OnlineAbcMonitor
from repro.core.execution_graph import ExecutionGraph
from repro.core.synchrony import worst_relevant_ratio
from repro.scenarios.generators import streaming_trace
from repro.sim.trace import Trace, build_execution_graph

DEFAULT_EVENTS = 200
SPEEDUP_FLOOR = 5.0


# ----------------------------------------------------------------------
# Frozen seed implementation (the pre-rework quadratic baseline).
# Kept verbatim so the benchmark keeps measuring the same thing as the
# library evolves; do not "fix" it.
# ----------------------------------------------------------------------


class _SeedTraversalDigraph:
    def __init__(self, graph: ExecutionGraph, p: int, q: int) -> None:
        self.nodes = list(graph.events())
        self.index = {ev: i for i, ev in enumerate(self.nodes)}
        scale = len(graph.local_edges) + 1
        self.edges: list[tuple[int, int, int]] = []
        for m in graph.messages:
            u, v = self.index[m.src], self.index[m.dst]
            self.edges.append((u, v, p * scale))
            self.edges.append((v, u, -q * scale))
        for loc in graph.local_edges:
            u, v = self.index[loc.src], self.index[loc.dst]
            self.edges.append((v, u, -1))

    def has_negative_cycle(self) -> bool:
        n = len(self.nodes)
        if n == 0 or not self.edges:
            return False
        dist = [0] * n
        for _ in range(n):
            updated = False
            for tail, head, weight in self.edges:
                if dist[tail] + weight < dist[head]:
                    dist[head] = dist[tail] + weight
                    updated = True
            if not updated:
                return False
        return True


def _seed_oracle(graph: ExecutionGraph, ratio: Fraction) -> bool:
    r = max(ratio, Fraction(1))
    return _SeedTraversalDigraph(
        graph, r.numerator, r.denominator
    ).has_negative_cycle()


def seed_worst_relevant_ratio(graph: ExecutionGraph) -> Fraction | None:
    if not _seed_oracle(graph, Fraction(1)):
        return None
    max_den = max(len(graph.messages), 1)

    def oracle(num: int, den: int) -> bool:
        return _seed_oracle(graph, Fraction(num, den))

    def max_k(true_for: int, probe) -> int:
        k = max(true_for, 1)
        while probe(2 * k):
            k *= 2
        lo, hi = k, 2 * k
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if probe(mid):
                lo = mid
            else:
                hi = mid
        return lo

    lo_num, lo_den = 1, 1
    hi_num, hi_den = 1, 0
    while lo_den + hi_den <= max_den:
        if oracle(lo_num + hi_num, lo_den + hi_den):
            k = max_k(1, lambda k: oracle(lo_num + k * hi_num, lo_den + k * hi_den))
            lo_num, lo_den = lo_num + k * hi_num, lo_den + k * hi_den
        else:

            def still_false(k: int) -> bool:
                num, den = k * lo_num + hi_num, k * lo_den + hi_den
                return den <= max_den and not oracle(num, den)

            if not still_false(1):
                hi_num, hi_den = lo_num + hi_num, lo_den + hi_den
                continue
            k = max_k(1, still_false)
            hi_num, hi_den = k * lo_num + hi_num, k * lo_den + hi_den
    return Fraction(lo_num, lo_den)


# ----------------------------------------------------------------------
# Workload and contenders
# ----------------------------------------------------------------------


def make_workload(
    n_events: int, n_processes: int = 4, seed: int = 7
) -> tuple[Trace, list[ExecutionGraph]]:
    """A growing random trace plus its per-record prefix graphs."""
    import random

    trace = streaming_trace(
        random.Random(seed), n_processes=n_processes, n_records=n_events
    )
    prefixes = [
        build_execution_graph(Trace(trace.n, trace.faulty, trace.records[:k]))
        for k in range(1, len(trace.records) + 1)
    ]
    return trace, prefixes


def run_monitor(trace: Trace) -> list[Fraction | None]:
    monitor = OnlineAbcMonitor(faulty=trace.faulty)
    return [monitor.observe(record) for record in trace.records]


def run_batch(prefixes: list[ExecutionGraph]) -> list[Fraction | None]:
    return [worst_relevant_ratio(g) for g in prefixes]


def run_seed(prefixes: list[ExecutionGraph]) -> list[Fraction | None]:
    return [seed_worst_relevant_ratio(g) for g in prefixes]


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# pytest-benchmark entries
# ----------------------------------------------------------------------


def test_monitor_vs_seed_speedup_and_exactness():
    """The acceptance gate: >=5x over the seed on 200 growing events,
    with the monitor exact on every prefix."""
    trace, prefixes = make_workload(DEFAULT_EVENTS)
    monitor_result, monitor_s = _timed(run_monitor, trace)
    batch_result, batch_s = _timed(run_batch, prefixes)
    seed_result, seed_s = _timed(run_seed, prefixes)
    assert monitor_result == batch_result == seed_result
    speedup = seed_s / monitor_s
    assert speedup >= SPEEDUP_FLOOR, (
        f"monitor {monitor_s:.3f}s vs seed {seed_s:.3f}s = {speedup:.1f}x, "
        f"need >= {SPEEDUP_FLOOR}x"
    )
    sys.stderr.write(
        f"\n[bench_table_incremental] events={DEFAULT_EVENTS} "
        f"seed={seed_s:.3f}s batch={batch_s:.3f}s monitor={monitor_s:.3f}s "
        f"speedup(seed/monitor)={speedup:.1f}x "
        f"(batch/monitor)={batch_s / monitor_s:.1f}x\n"
    )


def test_monitor_running_ratio(benchmark):
    trace, prefixes = make_workload(DEFAULT_EVENTS)
    expected = run_batch(prefixes)

    result = benchmark(run_monitor, trace)
    assert result == expected
    benchmark.extra_info["events"] = len(trace.records)
    benchmark.extra_info["messages"] = len(prefixes[-1].messages)
    benchmark.extra_info["final_worst"] = str(result[-1])


def test_batch_running_ratio(benchmark):
    trace, prefixes = make_workload(DEFAULT_EVENTS)

    result = benchmark(run_batch, prefixes)
    benchmark.extra_info["events"] = len(trace.records)
    benchmark.extra_info["final_worst"] = str(result[-1])


def test_checker_reuse_single_graph(benchmark):
    """Stern-Brocot search on one large graph: the AdmissibilityChecker
    builds the traversal digraph once for all oracle calls."""
    from repro.core.synchrony import AdmissibilityChecker

    _trace, prefixes = make_workload(DEFAULT_EVENTS)
    graph = prefixes[-1]

    def run():
        checker = AdmissibilityChecker(graph)
        worst = checker.worst_relevant_ratio()
        return worst, checker.oracle_calls

    (worst, calls) = benchmark(run)
    assert worst == seed_worst_relevant_ratio(graph)
    benchmark.extra_info["oracle_calls"] = calls
    benchmark.extra_info["worst"] = str(worst)


# ----------------------------------------------------------------------
# script mode (CI smoke, manual sizing)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Compare incremental ?ABC monitoring against per-prefix "
            "batch recomputation on a growing random trace."
        )
    )
    parser.add_argument(
        "--events", type=int, default=DEFAULT_EVENTS, help="trace length"
    )
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--skip-seed-baseline",
        action="store_true",
        help="only run monitor and current batch (the seed baseline is slow)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless seed/monitor speedup reaches this",
    )
    args = parser.parse_args(argv)

    trace, prefixes = make_workload(args.events, args.processes, args.seed)
    monitor_result, monitor_s = _timed(run_monitor, trace)
    batch_result, batch_s = _timed(run_batch, prefixes)
    if monitor_result != batch_result:
        print("MISMATCH between monitor and batch results")
        return 1
    print(
        f"events={args.events} messages={len(prefixes[-1].messages)} "
        f"final_worst={monitor_result[-1]}"
    )
    print(f"monitor        {monitor_s * 1e3:10.1f} ms")
    print(
        f"batch          {batch_s * 1e3:10.1f} ms "
        f"({batch_s / monitor_s:6.1f}x slower)"
    )
    if not args.skip_seed_baseline:
        seed_result, seed_s = _timed(run_seed, prefixes)
        if seed_result != monitor_result:
            print("MISMATCH between monitor and seed results")
            return 1
        speedup = seed_s / monitor_s
        print(f"seed baseline  {seed_s * 1e3:10.1f} ms ({speedup:6.1f}x slower)")
        if args.min_speedup is not None and speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.1f}x < {args.min_speedup}x")
            return 1
    print("results exact on every prefix")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Multi-trace fleet monitor vs. the naive one-monitor-per-trace loop.

The production-monitoring workload: 200+ concurrent executions (mixed
ping-pong storms, clustered bursts, long-silence idlers) interleaved
into one arrival-ordered stream.  The naive contender keeps one
:class:`~repro.analysis.online.OnlineAbcMonitor` per trace and feeds it
record by record -- exact, but one Farey-successor oracle call per
message record and every digraph live forever.  The fleet
(:class:`~repro.analysis.fleet.MonitorFleet`) batches each trace's
bursts into one deferred refresh per flush, retires finished traces,
and evicts settled prefixes to stay under a global live-event budget.

Measured: ingest throughput (records/sec) for both contenders, the
oracle-call counts that explain the gap, and the fleet's peak live-event
watermark against its configured budget -- with every per-trace worst
ratio required to be bit-identical between the two contenders.

Also runnable as a script (CI smoke / the >=3x acceptance gate)::

    python benchmarks/bench_fleet.py --traces 40 --max-records 60 --min-speedup 0
    python benchmarks/bench_fleet.py --min-speedup 3 --json BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import Counter

from repro.analysis.fleet import MonitorFleet
from repro.analysis.online import OnlineAbcMonitor
from repro.scenarios.generators import concurrent_workload

DEFAULT_TRACES = 220
DEFAULT_RECORDS = (80, 200)
DEFAULT_BATCH = 64
DEFAULT_SHARDS = 8
DEFAULT_BUDGET = 4000
DEFAULT_SEED = 7
# Hard floors for automated runs.  Nominal speedups are >=3x on the
# default workload (typically 4-5x), but wall-clock ratios on shared
# runners are noisy, so the hard gates stay below nominal: this pytest
# entry uses 1.5x, the CI "Fleet speedup gate" step runs the CLI at
# --min-speedup 2, and both leave the measured numbers as the
# informational record; the acceptance run is the CLI with
# --min-speedup 3 on a quiet machine.
HARD_SPEEDUP_FLOOR = 1.5


def build_workload(seed, n_traces, records_per_trace):
    """The interleaved (trace_id, record) stream, materialized."""
    rng = random.Random(seed)
    return list(
        concurrent_workload(
            rng, n_traces=n_traces, records_per_trace=records_per_trace
        )
    )


def run_naive(stream):
    """One monitor per trace, record at a time; returns (ratios, calls)."""
    monitors = {}
    for trace_id, record in stream:
        monitor = monitors.get(trace_id)
        if monitor is None:
            monitor = monitors[trace_id] = OnlineAbcMonitor()
        monitor.observe(record)
    return (
        {tid: m.worst_ratio for tid, m in monitors.items()},
        sum(m.oracle_calls for m in monitors.values()),
    )


def run_fleet(stream, batch_size, n_shards, event_budget):
    """Fleet ingestion with close-at-last-record; returns the fleet."""
    remaining = Counter(trace_id for trace_id, _record in stream)
    fleet = MonitorFleet(
        n_shards=n_shards, batch_size=batch_size, event_budget=event_budget
    )
    for trace_id, record in stream:
        fleet.ingest(trace_id, record)
        remaining[trace_id] -= 1
        if not remaining[trace_id]:
            fleet.close(trace_id)
    fleet.flush()
    return fleet


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def compare(
    seed=DEFAULT_SEED,
    n_traces=DEFAULT_TRACES,
    records_per_trace=DEFAULT_RECORDS,
    batch_size=DEFAULT_BATCH,
    n_shards=DEFAULT_SHARDS,
    event_budget=DEFAULT_BUDGET,
):
    """Run both contenders; returns the metrics dict.

    Raises ``AssertionError`` unless every per-trace worst ratio is
    bit-identical, no trace was degraded, and (with a budget configured)
    the peak live-event watermark stayed within the budget with no
    overruns.
    """
    stream = build_workload(seed, n_traces, records_per_trace)
    (naive_ratios, naive_calls), naive_s = _timed(run_naive, stream)
    fleet, fleet_s = _timed(
        run_fleet, stream, batch_size, n_shards, event_budget
    )
    report = fleet.report()
    for trace_id, ratio in naive_ratios.items():
        fleet_ratio = fleet.worst_ratio(trace_id)
        assert fleet_ratio == ratio, (
            f"{trace_id}: fleet {fleet_ratio} != standalone {ratio}"
        )
    assert report.degraded_traces == 0, "exact workload must not degrade"
    if event_budget is not None:
        assert report.budget_overruns == 0, (
            f"{report.budget_overruns} budget overruns"
        )
        assert report.peak_live_events <= event_budget, (
            f"peak {report.peak_live_events} exceeds budget {event_budget}"
        )
    return {
        "traces": n_traces,
        "records": len(stream),
        "batch_size": batch_size,
        "n_shards": n_shards,
        "event_budget": event_budget,
        "naive_s": naive_s,
        "fleet_s": fleet_s,
        "speedup": naive_s / fleet_s,
        "naive_records_per_s": len(stream) / naive_s,
        "fleet_records_per_s": len(stream) / fleet_s,
        "naive_oracle_calls": naive_calls,
        "fleet_oracle_calls": report.oracle_calls,
        "flushes": report.flushes,
        "peak_live_events": report.peak_live_events,
        "tombstoned_events": report.tombstoned_events,
        "evictions": report.evictions,
        "retired_traces": report.retired_traces,
    }


# ----------------------------------------------------------------------
# pytest entries
# ----------------------------------------------------------------------


def test_fleet_exactness_and_speedup():
    """Bit-identical per-trace worst ratios, peak live events within the
    budget, and ingest throughput over the naive loop above the
    noise-tolerant hard floor (nominal is >=3x; see HARD_SPEEDUP_FLOOR)."""
    r = compare()
    sys.stderr.write(
        f"\n[bench_fleet] traces={r['traces']} records={r['records']} "
        f"naive={r['naive_s']:.2f}s ({r['naive_records_per_s']:.0f} rec/s) "
        f"fleet={r['fleet_s']:.2f}s ({r['fleet_records_per_s']:.0f} rec/s) "
        f"speedup={r['speedup']:.1f}x peak={r['peak_live_events']} "
        f"oracle {r['naive_oracle_calls']} -> {r['fleet_oracle_calls']}\n"
    )
    assert r["speedup"] >= HARD_SPEEDUP_FLOOR, (
        f"fleet speedup {r['speedup']:.1f}x below the "
        f"{HARD_SPEEDUP_FLOOR}x hard floor"
    )


def test_fleet_benchmark(benchmark):
    stream = build_workload(DEFAULT_SEED, 60, (40, 80))

    def run():
        return run_fleet(stream, DEFAULT_BATCH, DEFAULT_SHARDS, 2000)

    fleet = benchmark(run)
    report = fleet.report()
    assert report.records == len(stream)
    benchmark.extra_info["records"] = report.records
    benchmark.extra_info["oracle_calls"] = report.oracle_calls


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Compare MonitorFleet ingestion against the naive "
            "one-monitor-per-trace loop on a concurrent workload."
        )
    )
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--min-records", type=int, default=DEFAULT_RECORDS[0],
        help="minimum records per trace",
    )
    parser.add_argument(
        "--max-records", type=int, default=DEFAULT_RECORDS[1],
        help="maximum records per trace",
    )
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="global live-event budget (0 disables eviction)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the fleet reaches this speedup",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    budget = args.budget if args.budget else None
    records = (min(args.min_records, args.max_records), args.max_records)
    if budget is not None and args.traces < 100:
        # Small smoke runs hold fewer live events than the default
        # budget; scale it down (below the workload's natural peak) so
        # budget enforcement and eviction are genuinely exercised.
        budget = min(budget, args.traces * args.max_records // 8)
    r = compare(
        seed=args.seed,
        n_traces=args.traces,
        records_per_trace=records,
        batch_size=args.batch,
        n_shards=args.shards,
        event_budget=budget,
    )
    print(
        f"workload: {r['traces']} traces, {r['records']} records "
        f"(batch={r['batch_size']}, shards={r['n_shards']}, "
        f"budget={r['event_budget']})"
    )
    print(
        f"naive : {r['naive_s'] * 1e3:8.1f} ms  "
        f"{r['naive_records_per_s']:8.0f} rec/s  "
        f"{r['naive_oracle_calls']:6d} oracle calls"
    )
    print(
        f"fleet : {r['fleet_s'] * 1e3:8.1f} ms  "
        f"{r['fleet_records_per_s']:8.0f} rec/s  "
        f"{r['fleet_oracle_calls']:6d} oracle calls  "
        f"({r['speedup']:.1f}x)"
    )
    print(
        f"memory: peak {r['peak_live_events']} live events "
        f"(budget {r['event_budget']}), {r['tombstoned_events']} tombstoned "
        f"across {r['evictions']} evictions, "
        f"{r['retired_traces']} traces retired"
    )
    print("per-trace worst ratios bit-identical to standalone monitors")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"wrote {args.json}")
    if args.min_speedup is not None and r["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {r['speedup']:.1f}x < {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation -- the polynomial admissibility checker vs. enumeration.

Design choice called out in DESIGN.md: "for every relevant cycle" is
decided by negative-cycle detection instead of exhaustive enumeration.
Measured: wall-clock scaling of both deciders on growing executions (the
exhaustive one is capped at small sizes -- it is exponential), plus
checker throughput on a large trace.
"""

from fractions import Fraction

import pytest

from repro.core import check_abc, check_abc_exhaustive
from repro.scenarios.generators import theta_band_trace
from repro.sim import build_execution_graph

XI = Fraction(2)


@pytest.mark.parametrize("max_tick", [2, 3, 4])
def test_exhaustive_checker_small(benchmark, max_tick):
    trace = theta_band_trace(n=3, f=0, theta=1.5, max_tick=max_tick, seed=0)
    graph = build_execution_graph(trace)

    def run():
        return check_abc_exhaustive(graph, XI, max_length=10)

    result = benchmark(run)
    assert result.admissible
    benchmark.extra_info["events"] = graph.n_events
    benchmark.extra_info["messages"] = len(graph.messages)


@pytest.mark.parametrize("max_tick", [4, 16, 48])
def test_polynomial_checker_scaling(benchmark, max_tick):
    trace = theta_band_trace(n=4, f=1, theta=1.5, max_tick=max_tick, seed=0)
    graph = build_execution_graph(trace)

    def run():
        return check_abc(graph, XI)

    result = benchmark(run)
    assert result.admissible
    benchmark.extra_info["events"] = graph.n_events
    benchmark.extra_info["messages"] = len(graph.messages)

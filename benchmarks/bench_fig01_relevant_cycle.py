"""F1 -- Figure 1: a slow chain C1 spanning a fast chain C2.

Paper claim: the two chains close a relevant cycle with |Z-| = 5 backward
and |Z+| = 4 forward messages (ratio 5/4); zero-delay messages (m3) are
allowed.  Measured: the exact worst relevant ratio of the constructed
graph, plus checker latency, and a zero-delay assignment existence check.
"""

from fractions import Fraction

from repro.core import check_abc, normalized_assignment, worst_relevant_ratio
from repro.scenarios import fig1_graph


def test_fig1_ratio_and_admissibility(benchmark):
    graph, expected = fig1_graph()

    def measure():
        return worst_relevant_ratio(graph)

    worst = benchmark(measure)
    assert worst == expected == Fraction(5, 4)
    assert not check_abc(graph, Fraction(5, 4)).admissible
    assert check_abc(graph, Fraction(4, 3)).admissible
    benchmark.extra_info["worst_ratio"] = str(worst)
    benchmark.extra_info["admissible_at_4_3"] = True


def test_fig1_zero_delay_messages_are_realizable(benchmark):
    """The figure shows m3 with zero delay: the graph indeed admits a
    normalized assignment (Theorem 7) once Xi exceeds 5/4 -- delays can
    then be *scaled* so that m3's share is arbitrarily small."""
    graph, _ = fig1_graph()

    def assign():
        return normalized_assignment(graph, Fraction(3, 2))

    assignment = benchmark(assign)
    assert assignment is not None
    ratio = assignment.message_delay_ratio(graph)
    assert ratio < Fraction(3, 2)
    benchmark.extra_info["effective_theta"] = str(ratio)

"""Summary compaction vs. unbounded growth on relay-chain workloads.

The adversarial memory shape for the monitoring stack: a relay chain
threads every event of a trace into one causal chain, so the exact
no-crossing eviction criterion can never remove anything -- at the
seed, a budget-bounded :class:`~repro.analysis.fleet.MonitorFleet`
could only count ``budget_overruns`` while its digraphs grew without
bound.  Summary compaction (PR 4) replaces the settled past of such a
chain by boundary-to-boundary summary edges, so the fleet's
``event_budget`` becomes a real bound with every per-trace worst ratio
still bit-identical to an unbudgeted standalone monitor.

Measured and gated:

* the budget-bounded fleet's ``peak_live_events`` stays within its
  configured budget, with zero overruns and zero degraded traces, and
  summary compaction genuinely engaged (exact eviction alone cannot
  bound this shape);
* every per-trace worst ratio is bit-identical to the unbudgeted
  standalone monitors (whose peak live events -- the whole history --
  are reported as the growth contrast);
* a single periodically-compacted monitor's live events stay
  O(boundary + compaction interval), independent of trace length.

Also runnable as a script (CI smoke / the acceptance gate)::

    python benchmarks/bench_compaction.py --traces 8 --records 120
    python benchmarks/bench_compaction.py --json BENCH_compaction.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.analysis.fleet import MonitorFleet
from repro.analysis.online import OnlineAbcMonitor
from repro.scenarios.generators import relay_chain_workload

DEFAULT_TRACES = 16
DEFAULT_RECORDS = 400
DEFAULT_BATCH = 16
DEFAULT_SHARDS = 4
DEFAULT_BUDGET = 400
DEFAULT_SEED = 13
# A compacted monitor's live events are bounded by its pinned core (the
# per-process frontiers plus in-flight sends) plus one compaction
# interval of growth -- independent of how long the chain runs.
MONITOR_COMPACT_EVERY = 32
MONITOR_PEAK_BOUND = MONITOR_COMPACT_EVERY + 16


def build_workload(seed, n_traces, n_records):
    """Per-trace relay-chain record lists, plus the interleaved stream."""
    rng = random.Random(seed)
    traces = {
        f"relay-{k}": relay_chain_workload(rng, n_records)
        for k in range(n_traces)
    }
    offsets = {tid: rng.uniform(0.0, 50.0) for tid in traces}
    stream = sorted(
        (
            (offsets[tid] + record.time, tid, record)
            for tid, records in traces.items()
            for record in records
        ),
        key=lambda item: (item[0], item[1]),
    )
    return traces, [(tid, record) for _at, tid, record in stream]


def run_standalone(traces):
    """Unbudgeted monitors (the seed behavior): ratios + peak live."""
    ratios = {}
    peak = 0
    calls = 0
    for tid, records in traces.items():
        monitor = OnlineAbcMonitor()
        for record in records:
            monitor.observe(record)
        ratios[tid] = monitor.worst_ratio
        peak += monitor.n_events  # every digraph lives forever
        calls += monitor.oracle_calls
    return ratios, peak, calls


def run_fleet(stream, batch_size, n_shards, event_budget):
    fleet = MonitorFleet(
        n_shards=n_shards, batch_size=batch_size, event_budget=event_budget
    )
    fleet.ingest_many(stream)
    fleet.flush()
    return fleet


def run_compacting_monitor(records, compact_every=MONITOR_COMPACT_EVERY):
    """One monitor, summary-compacted on a fixed cadence; returns
    (worst ratio, peak live events)."""
    monitor = OnlineAbcMonitor()
    in_flight: dict = {}
    peak = 0
    for i, record in enumerate(records):
        monitor.observe(record)
        src = record.send_event
        if src is not None and in_flight.get(src, 0) > 0:
            in_flight[src] -= 1
            if not in_flight[src]:
                del in_flight[src]
        if record.sends:
            in_flight[record.event] = in_flight.get(record.event, 0) + len(
                record.sends
            )
        peak = max(peak, monitor.n_events)
        if (i + 1) % compact_every == 0:
            monitor.forget_prefix(
                monitor.compactable_prefix(in_flight), summarize=True
            )
    assert monitor.forgotten_message_edges == 0
    return monitor.worst_ratio, peak


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def compare(
    seed=DEFAULT_SEED,
    n_traces=DEFAULT_TRACES,
    n_records=DEFAULT_RECORDS,
    batch_size=DEFAULT_BATCH,
    n_shards=DEFAULT_SHARDS,
    event_budget=DEFAULT_BUDGET,
):
    """Run both contenders; returns the metrics dict.

    Raises ``AssertionError`` unless the budget genuinely bounds peak
    live events on the chain shape (no overruns, compaction engaged,
    seed growth well beyond the budget) with every per-trace worst
    ratio bit-identical and nontrivial, and the single compacted
    monitor's peak stays under the trace-length-independent bound.
    """
    traces, stream = build_workload(seed, n_traces, n_records)
    (naive_ratios, naive_peak, naive_calls), naive_s = _timed(
        run_standalone, traces
    )
    fleet, fleet_s = _timed(
        run_fleet, stream, batch_size, n_shards, event_budget
    )
    report = fleet.report()
    for trace_id, ratio in naive_ratios.items():
        assert ratio is not None and ratio > 1, (
            f"{trace_id}: relay workload must close relevant cycles"
        )
        fleet_ratio = fleet.worst_ratio(trace_id)
        assert fleet_ratio == ratio, (
            f"{trace_id}: fleet {fleet_ratio} != standalone {ratio}"
        )
    assert report.degraded_traces == 0, "exact workload must not degrade"
    assert report.summary_compactions > 0, (
        "relay chains are never exactly settleable; the summary "
        "fallback must engage"
    )
    assert report.budget_overruns == 0, (
        f"{report.budget_overruns} budget overruns"
    )
    assert report.peak_live_events <= event_budget, (
        f"peak {report.peak_live_events} exceeds budget {event_budget}"
    )
    assert naive_peak >= 2 * event_budget, (
        f"seed-growth contrast too small: standalone peak {naive_peak} "
        f"vs budget {event_budget}"
    )
    mono_ratio, mono_peak = run_compacting_monitor(
        next(iter(traces.values()))
    )
    assert mono_ratio == naive_ratios["relay-0"]
    assert mono_peak <= MONITOR_PEAK_BOUND, (
        f"compacted monitor peak {mono_peak} exceeds the O(boundary) "
        f"bound {MONITOR_PEAK_BOUND}"
    )
    return {
        "traces": n_traces,
        "records": len(stream),
        "batch_size": batch_size,
        "n_shards": n_shards,
        "event_budget": event_budget,
        "naive_s": naive_s,
        "fleet_s": fleet_s,
        "naive_peak_live_events": naive_peak,
        "fleet_peak_live_events": report.peak_live_events,
        "memory_shrink": naive_peak / report.peak_live_events,
        "naive_oracle_calls": naive_calls,
        "fleet_oracle_calls": report.oracle_calls,
        "summary_compactions": report.summary_compactions,
        "summary_edges": report.summary_edges,
        "tombstoned_events": report.tombstoned_events,
        "evictions": report.evictions,
        "monitor_peak_live_events": mono_peak,
        "monitor_peak_bound": MONITOR_PEAK_BOUND,
    }


# ----------------------------------------------------------------------
# pytest entry
# ----------------------------------------------------------------------


def test_compaction_bounds_memory_bit_identically():
    """Budget-bounded fleet on relay chains: peak within budget, summary
    compaction engaged, ratios bit-identical to unbudgeted monitors."""
    r = compare(n_traces=8, n_records=200, event_budget=200)
    sys.stderr.write(
        f"\n[bench_compaction] traces={r['traces']} records={r['records']} "
        f"peak {r['naive_peak_live_events']} -> "
        f"{r['fleet_peak_live_events']} ({r['memory_shrink']:.1f}x shrink), "
        f"{r['summary_compactions']} summary compactions\n"
    )


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Gate the summary-compaction memory bound on a relay-chain "
            "workload: budgeted MonitorFleet vs unbudgeted monitors."
        )
    )
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--records", type=int, default=DEFAULT_RECORDS,
        help="records per relay trace",
    )
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument(
        "--budget", type=int, default=None,
        help="global live-event budget (default: 25 events per trace)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    budget = args.budget
    if budget is None:
        # Scale with the population, not the trace length: that IS the
        # memory guarantee under test.
        budget = max(50, 25 * args.traces)
    r = compare(
        seed=args.seed,
        n_traces=args.traces,
        n_records=args.records,
        batch_size=args.batch,
        n_shards=args.shards,
        event_budget=budget,
    )
    print(
        f"workload: {r['traces']} relay traces x {args.records} records "
        f"(batch={r['batch_size']}, shards={r['n_shards']}, "
        f"budget={r['event_budget']})"
    )
    print(
        f"standalone: peak {r['naive_peak_live_events']:6d} live events "
        f"(unbounded growth), {r['naive_oracle_calls']} oracle calls, "
        f"{r['naive_s'] * 1e3:.1f} ms"
    )
    print(
        f"fleet     : peak {r['fleet_peak_live_events']:6d} live events "
        f"(<= budget), {r['fleet_oracle_calls']} oracle calls, "
        f"{r['fleet_s'] * 1e3:.1f} ms"
    )
    print(
        f"memory shrink {r['memory_shrink']:.1f}x via "
        f"{r['summary_compactions']} summary compactions "
        f"({r['summary_edges']} live summary edges, "
        f"{r['tombstoned_events']} events compacted away)"
    )
    print(
        f"single compacted monitor: peak {r['monitor_peak_live_events']} "
        f"live events (bound {r['monitor_peak_bound']}, "
        f"independent of trace length)"
    )
    print("per-trace worst ratios bit-identical to standalone monitors")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

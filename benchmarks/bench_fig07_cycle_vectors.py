"""F7 -- Figure 7: cycle vectors of a relevant and a non-relevant cycle.

Paper claim: a relevant cycle's vector has +1 per backward and -1 per
forward message (e.g. z1 = (1,1,1,1,-1,-1,0,...)), and footnote 12's
identities |S-| = s- and |S+| = -s+ hold.  Measured: vector extraction on
the Figure-3 graph (whose worst cycle has the same 4-backward/2-forward
shape as z1) and the identity checked across every relevant cycle of a
simulated run.
"""

from repro.core import relevant_cycles, vector_of, worst_relevant_ratio
from repro.scenarios import fig3_graph
from repro.scenarios.generators import theta_band_trace
from repro.sim import build_execution_graph


def test_fig7_vector_shape(benchmark):
    graph, _ = fig3_graph(2)

    def extract():
        worst = max(relevant_cycles(graph), key=lambda i: i.ratio)
        return worst, vector_of(worst)

    info, vec = benchmark(extract)
    coeffs = sorted(vec.coefficients.values(), reverse=True)
    assert coeffs == [1, 1, 1, 1, -1, -1]  # the z1 of Figure 7
    assert vec.s_minus == info.backward_messages == 4
    assert -vec.s_plus == info.forward_messages == 2
    benchmark.extra_info["coefficients"] = coeffs


def test_footnote12_identity_on_simulated_run(benchmark):
    trace = theta_band_trace(n=3, f=0, theta=1.5, max_tick=4, seed=4)
    graph = build_execution_graph(trace)

    def check_all():
        count = 0
        for info in relevant_cycles(graph, max_length=8):
            vec = vector_of(info)
            assert vec.s_minus == info.backward_messages
            assert -vec.s_plus == info.forward_messages
            count += 1
        return count

    count = benchmark(check_all)
    assert count > 0
    benchmark.extra_info["cycles_checked"] = count

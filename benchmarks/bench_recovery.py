"""Crash recovery vs. from-origin replay on the durable parallel fleet.

The acceptance benchmark of the durability plane: a >=400-trace
concurrent workload is ingested by a durable
:class:`~repro.runtime.ParallelFleet` up to a checkpoint at 90% of the
stream, the remaining 10% lands in the write-ahead journals, and then
every worker process is SIGKILLed with no shutdown -- the crash the
plane exists for.  Two runs are timed:

* **from-origin** -- a fresh durable fleet ingests the full stream
  (journaling included, so the comparison is apples to apples);
* **recovery** -- :meth:`ParallelFleet.restore` rebuilds the fleet
  from the abandoned directory (snapshot load + WAL suffix replay),
  the producer resumes at ``fleet.ingested_records``, and a final
  flush absorbs anything the ragged journal tails cut.

Two claims are gated:

* **bit-identity** -- the recovered fleet reports every per-trace
  worst ratio, every degradation flag, and the violating-trace set
  exactly equal to the from-origin fleet, with zero crashed shards
  and zero dropped records;
* **recovery cost** -- recovery completes in at most ``--max-ratio``
  of the from-origin wall clock.  The CI gate runs ``--max-ratio
  0.25`` (the ISSUE ceiling): the checkpoint covers 90% of the
  oracle work, so recovery pays only worker respawn, snapshot
  decode, and the 10% WAL replay -- nominal is ~0.12-0.18x.
  Regressing above 0.25x means restore started recomputing
  checkpointed state (or WAL replay stopped batching).

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_recovery.py --traces 40 --max-records 60
    python benchmarks/bench_recovery.py --max-ratio 0.25 --json BENCH_recovery.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from fractions import Fraction

from repro.runtime import Durability, ParallelFleet
from repro.scenarios.generators import concurrent_workload

DEFAULT_TRACES = 420
DEFAULT_RECORDS = (160, 280)
DEFAULT_BATCH = 32
DEFAULT_SHARDS = 8
DEFAULT_WORKERS = 2
DEFAULT_WIRE_BATCH = 512
DEFAULT_BUDGET = 24000
DEFAULT_SEED = 17
DEFAULT_XI = Fraction(3)
# Fraction of the stream committed by the pre-crash checkpoint; the
# rest rides the write-ahead journals into the crash.
CHECKPOINT_AT = 0.90
# The ISSUE's hard CI ceiling.  Both sides pay the same journaling
# overhead and the same spawn cost, so the ratio isolates exactly the
# work restore is supposed to skip.
HARD_RATIO_CEILING = 0.25


def build_workload(seed, n_traces, records_per_trace):
    rng = random.Random(seed)
    return list(
        concurrent_workload(
            rng,
            n_traces=n_traces,
            records_per_trace=records_per_trace,
            # Same storm-heavy mix as bench_parallel: the measurement
            # targets the compute-bound regime where from-origin replay
            # is dominated by oracle work -- the cost checkpointing
            # exists to amortize.
            profile_weights={"storm": 0.5, "burst": 0.35, "idler": 0.15},
        )
    )


def make_fleet(
    root, xi, batch_size, n_shards, n_workers, wire_batch, event_budget
):
    return ParallelFleet(
        xi=xi,
        n_workers=n_workers,
        n_shards=n_shards,
        batch_size=batch_size,
        event_budget=event_budget,
        backend="process",
        wire_batch=wire_batch,
        # Explicit checkpoints only: the benchmark controls exactly how
        # much of the stream the snapshot covers.
        durability=Durability(root=root, checkpoint_every=None),
    )


def crash(fleet):
    """SIGKILL every worker process and abandon the fleet unshutdown.

    This is the crash the durability plane recovers from: no final
    checkpoint, no queue draining -- the journals and the last
    committed snapshot are all that survives.
    """
    processes = list(getattr(fleet._backend, "_processes", []))
    for process in processes:
        process.kill()
    for process in processes:
        process.join()


def prepare_crashed_fleet(
    root, stream, xi, batch, shards, workers, wire, budget
):
    """Ingest 90%, checkpoint, ingest the rest, flush the WAL, crash."""
    cut = int(len(stream) * CHECKPOINT_AT)
    fleet = make_fleet(root, xi, batch, shards, workers, wire, budget)
    fleet.ingest_many(stream[:cut])
    fleet.checkpoint()
    fleet.ingest_many(stream[cut:])
    # Ship every buffered record so its journal frame is on disk; the
    # records themselves die in the worker queues with the SIGKILL and
    # come back only through WAL replay.
    fleet.flush()
    crash(fleet)
    return cut


def run_from_origin(root, stream, xi, batch, shards, workers, wire, budget):
    fleet = make_fleet(root, xi, batch, shards, workers, wire, budget)
    fleet.ingest_many(stream)
    fleet.flush()
    return fleet


def run_recovery(root, stream):
    fleet = ParallelFleet.restore(root)
    resume = fleet.ingested_records
    fleet.ingest_many(stream[resume:])
    fleet.flush()
    return fleet, resume


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def compare(
    seed=DEFAULT_SEED,
    n_traces=DEFAULT_TRACES,
    records_per_trace=DEFAULT_RECORDS,
    batch_size=DEFAULT_BATCH,
    n_shards=DEFAULT_SHARDS,
    n_workers=DEFAULT_WORKERS,
    wire_batch=DEFAULT_WIRE_BATCH,
    event_budget=DEFAULT_BUDGET,
    xi=DEFAULT_XI,
):
    """Crash a durable fleet, recover it, race from-origin replay.

    Returns the metrics dict; raises ``AssertionError`` unless the
    recovered fleet is bit-identical to the from-origin fleet with
    zero crashed shards and zero dropped records.
    """
    stream = build_workload(seed, n_traces, records_per_trace)
    trace_ids = sorted({trace_id for trace_id, _record in stream})
    assert len(trace_ids) >= 400 or n_traces < 400, "workload shrank"

    workdir = tempfile.mkdtemp(prefix="bench_recovery_")
    crashed_root = os.path.join(workdir, "crashed")
    origin_root = os.path.join(workdir, "origin")
    origin = recovered = None
    try:
        checkpoint_cut = prepare_crashed_fleet(
            crashed_root, stream, xi, batch_size, n_shards, n_workers,
            wire_batch, event_budget,
        )
        origin, origin_s = _timed(
            run_from_origin, origin_root, stream, xi, batch_size, n_shards,
            n_workers, wire_batch, event_budget,
        )
        (recovered, resume), recovery_s = _timed(
            run_recovery, crashed_root, stream
        )

        origin_report = origin.report()
        recovered_report = recovered.report()
        assert recovered_report.crashed_shards == ()
        assert recovered.dropped_records == 0
        assert recovered_report.records == len(stream)
        mismatches = []
        for trace_id in trace_ids:
            if recovered.worst_ratio(trace_id) != origin.worst_ratio(
                trace_id
            ):
                mismatches.append(trace_id)
            if recovered.is_degraded(trace_id) != origin.is_degraded(
                trace_id
            ):
                mismatches.append(f"{trace_id} (degraded flag)")
        assert not mismatches, f"per-trace divergence: {mismatches[:5]}"
        assert set(recovered_report.violating_traces) == set(
            origin_report.violating_traces
        ), "violation sets diverged"
    finally:
        if origin is not None:
            origin.shutdown()
        if recovered is not None:
            recovered.shutdown()
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "traces": len(trace_ids),
        "records": len(stream),
        "checkpoint_at": checkpoint_cut,
        "resume_point": resume,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "n_workers": n_workers,
        "wire_batch": wire_batch,
        "event_budget": event_budget,
        "xi": str(xi),
        "origin_s": origin_s,
        "recovery_s": recovery_s,
        "ratio": recovery_s / origin_s,
        "origin_records_per_s": len(stream) / origin_s,
        "violating_traces": len(recovered_report.violating_traces),
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# pytest entry
# ----------------------------------------------------------------------


def test_recovery_bit_identity():
    """SIGKILL-then-restore equals from-origin replay bit for bit on a
    small workload; the wall-clock ceiling is left to the script gate
    (worker spawn cost dominates at smoke sizes)."""
    r = compare(
        n_traces=48, records_per_trace=(30, 60), event_budget=1200
    )
    sys.stderr.write(
        f"\n[bench_recovery] traces={r['traces']} records={r['records']} "
        f"origin={r['origin_s']:.2f}s recovery={r['recovery_s']:.2f}s "
        f"({r['ratio']:.2f}x, resume at {r['resume_point']})\n"
    )


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Gate crash recovery on the durable parallel fleet: "
            "SIGKILL-then-restore must be bit-identical to from-origin "
            "replay and cost at most --max-ratio of its wall clock."
        )
    )
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--min-records", type=int, default=DEFAULT_RECORDS[0],
        help="minimum records per trace",
    )
    parser.add_argument(
        "--max-records", type=int, default=DEFAULT_RECORDS[1],
        help="maximum records per trace",
    )
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--wire-batch", type=int, default=DEFAULT_WIRE_BATCH,
        help="records per shard batch on the wire",
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="global live-event budget (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--max-ratio", type=float, default=None,
        help="exit non-zero if recovery_s / origin_s exceeds this",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    records = (min(args.min_records, args.max_records), args.max_records)
    budget = args.budget if args.budget else None
    if budget is not None and args.traces < 100:
        # Small smoke runs: scale the budget down so enforcement is
        # genuinely exercised (mirrors bench_parallel).
        budget = max(
            args.workers, min(budget, args.traces * args.max_records // 8)
        )
    r = compare(
        seed=args.seed,
        n_traces=args.traces,
        records_per_trace=records,
        batch_size=args.batch,
        n_shards=args.shards,
        n_workers=args.workers,
        wire_batch=args.wire_batch,
        event_budget=budget,
    )
    print(
        f"workload : {r['traces']} traces, {r['records']} records "
        f"(batch={r['batch_size']}, shards={r['n_shards']}, "
        f"workers={r['n_workers']}, budget={r['event_budget']}, Xi={r['xi']}); checkpoint at record "
        f"{r['checkpoint_at']}, crash after {r['records']}"
    )
    print(
        f"origin   : {r['origin_s'] * 1e3:8.1f} ms  "
        f"{r['origin_records_per_s']:8.0f} rec/s (full replay)"
    )
    print(
        f"recovery : {r['recovery_s'] * 1e3:8.1f} ms  "
        f"(restore + WAL replay + resume at {r['resume_point']}; "
        f"{r['ratio']:.2f}x of from-origin)"
    )
    print(
        f"bit-identical: per-trace ratios, degradation flags, and the "
        f"violating set ({r['violating_traces']} traces); zero crashed "
        f"shards, zero dropped records"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"wrote {args.json}")
    if args.max_ratio is not None and r["ratio"] > args.max_ratio:
        print(f"FAIL: recovery ratio {r['ratio']:.2f}x > {args.max_ratio}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Parallel fleet (process workers) vs. the serial fleet, bit for bit.

The acceptance benchmark of the parallel runtime: a >=400-trace
concurrent workload (storms, bursts, idlers) ingested once by the
serial :class:`~repro.analysis.fleet.MonitorFleet` and once by a
:class:`~repro.runtime.ParallelFleet` on process workers.  Two claims
are gated:

* **bit-identity** -- every per-trace worst ratio, every degradation
  flag, and the *set* of violating traces agree exactly between the
  two front ends (and, with a budget configured, the parallel epoch
  watermark respects the global budget with zero overruns);
* **speedup** -- with 2 workers the parallel fleet ingests the stream
  at least ``--min-speedup`` times faster than the serial fleet on
  wall clock.  The CI gate runs ``--min-speedup 1.5`` on 2 workers
  (the ISSUE's hard floor); nominal on a quiet multi-core machine is
  ~1.7-1.9x at 2 workers, scaling with worker count until the
  dispatcher's routing/encoding thread saturates.  The pytest entry
  asserts bit-identity always but skips the speedup floor on
  single-core machines, where no parallel speedup is physically
  available.

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_parallel.py --traces 60 --max-records 60 --min-speedup 0
    python benchmarks/bench_parallel.py --min-speedup 1.5 --json BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from fractions import Fraction

from repro.analysis.fleet import MonitorFleet
from repro.runtime import ParallelFleet
from repro.scenarios.generators import concurrent_workload

DEFAULT_TRACES = 420
DEFAULT_RECORDS = (160, 280)
DEFAULT_BATCH = 32
DEFAULT_SHARDS = 8
DEFAULT_WORKERS = 2
DEFAULT_BUDGET = 24000
DEFAULT_WIRE_BATCH = 512
DEFAULT_SEED = 11
DEFAULT_XI = Fraction(3)
# The ISSUE's hard CI floor at 2 workers.  Wall-clock ratios on shared
# runners are noisy, but unlike the other suites both contenders here
# are bound by the same oracle workload, and the parallel side has two
# cores' worth of it in flight; regressing below 1.5x on 2 workers
# means the runtime stopped parallelizing, not that the runner jittered.
HARD_SPEEDUP_FLOOR = 1.5


def build_workload(seed, n_traces, records_per_trace):
    rng = random.Random(seed)
    return list(
        concurrent_workload(
            rng,
            n_traces=n_traces,
            records_per_trace=records_per_trace,
            # Storm-heavy: the gate measures the compute-bound
            # monitoring regime (dense digraphs, frequent worst-ratio
            # refreshes), where the wall clock is oracle work -- the
            # thing worker parallelism actually scales.  Lighter mixes
            # shift the measurement towards fixed wire overhead and
            # understate (or mask) a real parallelism regression.
            profile_weights={"storm": 0.5, "burst": 0.35, "idler": 0.15},
        )
    )


def run_serial(stream, xi, batch_size, n_shards, event_budget):
    fleet = MonitorFleet(
        xi=xi,
        n_shards=n_shards,
        batch_size=batch_size,
        event_budget=event_budget,
    )
    fleet.ingest_many(stream)
    fleet.flush()
    return fleet


def run_parallel(
    stream, xi, batch_size, n_shards, event_budget, n_workers, wire_batch
):
    fleet = ParallelFleet(
        xi=xi,
        n_workers=n_workers,
        n_shards=n_shards,
        batch_size=batch_size,
        event_budget=event_budget,
        backend="process",
        wire_batch=wire_batch,
    )
    fleet.ingest_many(stream)
    fleet.flush()
    return fleet


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def compare(
    seed=DEFAULT_SEED,
    n_traces=DEFAULT_TRACES,
    records_per_trace=DEFAULT_RECORDS,
    batch_size=DEFAULT_BATCH,
    n_shards=DEFAULT_SHARDS,
    n_workers=DEFAULT_WORKERS,
    event_budget=DEFAULT_BUDGET,
    wire_batch=DEFAULT_WIRE_BATCH,
    xi=DEFAULT_XI,
):
    """Run both front ends; returns the metrics dict.

    Raises ``AssertionError`` unless every per-trace worst ratio and
    degradation flag is bit-identical, the violating-trace sets agree,
    and (with a budget) the parallel epoch watermark respects it with
    zero overruns.
    """
    stream = build_workload(seed, n_traces, records_per_trace)
    trace_ids = sorted({trace_id for trace_id, _record in stream})
    assert len(trace_ids) >= 400 or n_traces < 400, "workload shrank"

    serial, serial_s = _timed(
        run_serial, stream, xi, batch_size, n_shards, event_budget
    )
    parallel, parallel_s = _timed(
        run_parallel,
        stream,
        xi,
        batch_size,
        n_shards,
        event_budget,
        n_workers,
        wire_batch,
    )
    try:
        serial_report = serial.report()
        parallel_report = parallel.report()
        assert parallel_report.crashed_shards == ()
        assert parallel_report.records == len(stream)
        mismatches = []
        for trace_id in trace_ids:
            if parallel.worst_ratio(trace_id) != serial.worst_ratio(trace_id):
                mismatches.append(trace_id)
            if parallel.is_degraded(trace_id) != serial.is_degraded(trace_id):
                mismatches.append(f"{trace_id} (degraded flag)")
        assert not mismatches, f"per-trace divergence: {mismatches[:5]}"
        assert set(parallel_report.violating_traces) == set(
            serial_report.violating_traces
        ), "violation sets diverged"
        assert serial_report.degraded_traces == 0
        assert parallel_report.degraded_traces == 0
        if event_budget is not None:
            assert parallel_report.budget_overruns == 0, (
                f"{parallel_report.budget_overruns} budget overruns"
            )
            assert parallel_report.peak_live_events <= event_budget, (
                f"parallel epoch watermark {parallel_report.peak_live_events} "
                f"exceeds budget {event_budget}"
            )
    finally:
        parallel.shutdown()
    return {
        "traces": len(trace_ids),
        "records": len(stream),
        "batch_size": batch_size,
        "n_shards": n_shards,
        "n_workers": n_workers,
        "wire_batch": wire_batch,
        "event_budget": event_budget,
        "xi": str(xi),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "serial_records_per_s": len(stream) / serial_s,
        "parallel_records_per_s": len(stream) / parallel_s,
        "serial_oracle_calls": serial_report.oracle_calls,
        "parallel_oracle_calls": parallel_report.oracle_calls,
        "violating_traces": len(parallel_report.violating_traces),
        "parallel_peak_live_events": parallel_report.peak_live_events,
        "serial_peak_live_events": serial_report.peak_live_events,
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# pytest entries
# ----------------------------------------------------------------------


def test_parallel_bit_identity_and_speedup():
    """Bit-identical ratios/flags/violation sets on the gate workload;
    the speedup floor applies only where parallel speedup is physically
    available (>= 2 cores)."""
    r = compare(n_traces=120, records_per_trace=(40, 90), event_budget=2500)
    sys.stderr.write(
        f"\n[bench_parallel] traces={r['traces']} records={r['records']} "
        f"serial={r['serial_s']:.2f}s parallel={r['parallel_s']:.2f}s "
        f"({r['speedup']:.2f}x on {r['n_workers']} workers, "
        f"{r['cpu_count']} cpus)\n"
    )
    if (os.cpu_count() or 1) >= 2:
        assert r["speedup"] >= 1.0, (
            f"parallel slower than serial ({r['speedup']:.2f}x) on a "
            "multi-core machine"
        )


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Gate the parallel fleet runtime: bit-identity with the "
            "serial MonitorFleet plus wall-clock speedup on process "
            "workers."
        )
    )
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--min-records", type=int, default=DEFAULT_RECORDS[0],
        help="minimum records per trace",
    )
    parser.add_argument(
        "--max-records", type=int, default=DEFAULT_RECORDS[1],
        help="maximum records per trace",
    )
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--wire-batch", type=int, default=DEFAULT_WIRE_BATCH,
        help="records per shard batch on the wire",
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="global live-event budget (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the parallel fleet reaches this speedup",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    budget = args.budget if args.budget else None
    records = (min(args.min_records, args.max_records), args.max_records)
    if budget is not None and args.traces < 100:
        # Small smoke runs: scale the budget down so enforcement is
        # genuinely exercised (mirrors bench_fleet's smoke behavior).
        budget = max(
            args.workers, min(budget, args.traces * args.max_records // 8)
        )
    r = compare(
        seed=args.seed,
        n_traces=args.traces,
        records_per_trace=records,
        batch_size=args.batch,
        n_shards=args.shards,
        n_workers=args.workers,
        event_budget=budget,
        wire_batch=args.wire_batch,
    )
    print(
        f"workload: {r['traces']} traces, {r['records']} records "
        f"(batch={r['batch_size']}, shards={r['n_shards']}, "
        f"workers={r['n_workers']}, wire_batch={r['wire_batch']}, "
        f"budget={r['event_budget']}, Xi={r['xi']})"
    )
    print(
        f"serial  : {r['serial_s'] * 1e3:8.1f} ms  "
        f"{r['serial_records_per_s']:8.0f} rec/s  "
        f"{r['serial_oracle_calls']:6d} oracle calls"
    )
    print(
        f"parallel: {r['parallel_s'] * 1e3:8.1f} ms  "
        f"{r['parallel_records_per_s']:8.0f} rec/s  "
        f"{r['parallel_oracle_calls']:6d} oracle calls  "
        f"({r['speedup']:.2f}x on {r['n_workers']} workers)"
    )
    print(
        f"memory  : parallel epoch watermark {r['parallel_peak_live_events']}"
        f" (budget {r['event_budget']}), serial peak "
        f"{r['serial_peak_live_events']}"
    )
    print(
        f"bit-identical: per-trace ratios, degradation flags, and the "
        f"violating set ({r['violating_traces']} traces)"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"wrote {args.json}")
    if args.min_speedup is not None and r["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {r['speedup']:.2f}x < {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

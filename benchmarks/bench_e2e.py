"""Columnar vs object ingest: end-to-end throughput, bit for bit.

The acceptance benchmark of the columnar hot path (wire frame ->
:func:`~repro.runtime.codec.decode_records_columnar` ->
:meth:`~repro.analysis.online.OnlineAbcMonitor.observe_batch_columnar`
-> :meth:`~repro.core.synchrony.AdmissibilityChecker.absorb_batch`).
Three levels are measured, all starting from pre-encoded wire rows --
the shape batches actually have when they reach a worker:

* **ingest (the gated number)** -- the per-record object path of the
  pre-columnar pipeline (decode wire rows into ``ReceiveRecord`` /
  ``Event`` objects, absorb them one at a time through
  ``add_event``/``add_message`` dict-and-list bookkeeping, message
  filtering included) against the columnar path (transpose the same
  rows with ``decode_records_columnar``, bulk-absorb with
  ``absorb_batch``) on the firehose gate workload.  This span --
  wire to kernel arrays -- is exactly what the columnar PR rebuilt,
  and the number CI floors (``--min-speedup``, default 1.5x; nominal
  ~2.2-2.5x with the ``flat_int`` kernel).  The ratio-search oracle
  is deliberately *outside* the timed span: it is byte-identical
  code on both sides, it has its own benchmark and CI floor
  (``bench_kernel.py``, 3x), and on monitor-dominated workloads it
  swamps the ingest delta -- see the monitor number below, reported
  so that share stays visible instead of hidden inside a blended
  ratio.
* **monitor e2e (reported, not gated)** -- the same wire batches
  replayed through full monitors (``observe_batch`` vs
  ``observe_batch_columnar``), every worst-ratio refresh included.
  Doubles as the differential harness: every rep asserts per-batch
  worst-ratio sequences, oracle-call counts, ratio-change logs and
  forgotten-edge counters **bit-identical**.  Expect ~1.1-1.4x: the
  exact Farey-successor search dominates this blend (the motivation
  for the columnar path was precisely that the kernel's 3.8x left
  e2e ingest as the laggard -- this number is the honest blend, the
  ingest number above is the part this PR owns).
* **ingest plane (reported, not gated)** -- the >=400-trace
  multi-producer workload of ``bench_ingest`` (storm/burst/idler mix)
  pushed through a full :class:`~repro.runtime.shard.ShardGroup` per
  path (``ingest_batch`` vs ``ingest_batch_columnar``), watermark
  flushes, auto-retire and violation bookkeeping included.  Asserts
  per-trace worst ratios, degraded flags, **violation merge order**,
  per-shard flush cadence and oracle-call counts identical, then
  reports records/s for both paths.

A per-profile monitor-e2e sweep (storm / burst / idler / relay /
firehose) is reported alongside: the blend is workload-shaped --
oracle-heavy storm traces dilute the ingest win, message-dense
firehose batches (the profile built for this path) show its best
case -- and the sweep keeps that spread visible.

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_e2e.py --gate-events 40 --reps 2 --min-speedup 0
    python benchmarks/bench_e2e.py --min-speedup 1.5 --json BENCH_e2e.json
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from fractions import Fraction

from repro.analysis.online import OnlineAbcMonitor
from repro.core.synchrony import AdmissibilityChecker
from repro.runtime import codec
from repro.runtime.shard import ShardGroup, shard_index_of
from repro.scenarios.generators import profiled_trace_records

from bench_ingest import build_workload

DEFAULT_GATE_EVENTS = 200
DEFAULT_GATE_TRACES = 15
DEFAULT_REPS = 5
DEFAULT_BATCH = 64
DEFAULT_MIN_SPEEDUP = 1.5
DEFAULT_KERNEL = "flat_int"
GATE_SEED = 7
PROFILES = ("storm", "burst", "idler", "relay", "firehose")
PROFILE_EVENTS = 150
PROFILE_SEED = 3
PLANE_TRACES = 420
PLANE_RECORDS = (40, 80)
PLANE_SHARDS = 8
PLANE_SEED = 11


def encode_stream(records) -> list[tuple]:
    """Pre-encode one trace's records as dispatcher wire rows."""
    return [
        (tick, "t", codec.encode_record(record))
        for tick, record in enumerate(records, 1)
    ]


# ----------------------------------------------------------------------
# ingest: wire rows -> kernel arrays, no oracle in the timed span
# ----------------------------------------------------------------------


def _timed_span():
    """GC discipline for the ingest spans, ``timeit``-style: collect
    once so no path inherits the other's garbage debt, then disable
    collection for the span.  Without this, gen-2 collections land
    stochastically in either span and scan every retained graph --
    benchmark-harness noise worth 2x, not a property of either path.
    Returns whether the caller must re-enable."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    return was_enabled


def ingest_object(wires, batch, faulty, kernel):
    """The per-record object path: decode records, absorb one at a
    time through ``add_event``/``add_message``, with the monitor's
    message filter (faulty senders, forgotten prefixes) replicated
    per record."""
    drop = True
    reenable = _timed_span()
    start = time.perf_counter()
    checkers = []
    for wire in wires:
        checker = AdmissibilityChecker(kernel=kernel)
        first_live = checker.first_live_index
        for i in range(0, len(wire), batch):
            for _tick, _tid, record in codec.decode_records(
                wire[i : i + batch]
            ):
                checker.add_event(record.event)
                sender = record.sender
                send_event = record.send_event
                if sender is None or send_event is None:
                    continue
                if drop and sender in faulty:
                    continue
                if send_event.index < first_live(send_event.process):
                    continue
                checker.add_message(send_event, record.event)
        checkers.append(checker)
    elapsed = time.perf_counter() - start
    if reenable:
        gc.enable()
    return elapsed, [(c.n_events, c.n_messages) for c in checkers]


def ingest_columnar(wires, batch, faulty, kernel):
    """The columnar path: transpose the same rows, bulk-absorb with
    ``absorb_batch`` -- zero record objects, same message filter."""
    drop = True
    reenable = _timed_span()
    start = time.perf_counter()
    checkers = []
    for wire in wires:
        checker = AdmissibilityChecker(kernel=kernel)
        first_live = checker.first_live_index
        for i in range(0, len(wire), batch):
            _ticks, _tids, cols = codec.decode_records_columnar(
                wire[i : i + batch]
            )
            n = len(cols)
            messages = [None] * n
            senders = cols.senders
            send_processes = cols.send_processes
            send_indexes = cols.send_indexes
            for k in range(n):
                sender = senders[k]
                sp = send_processes[k]
                if sender is None or sp is None:
                    continue
                if drop and sender in faulty:
                    continue
                si = send_indexes[k]
                if si < first_live(sp):
                    continue
                messages[k] = (sp, si)
            checker.absorb_batch((cols.processes, cols.indexes), messages)
        checkers.append(checker)
    elapsed = time.perf_counter() - start
    if reenable:
        gc.enable()
    return elapsed, [(c.n_events, c.n_messages) for c in checkers]


# ----------------------------------------------------------------------
# monitor e2e: full observe path, oracle included
# ----------------------------------------------------------------------


def replay_object(wire, batch, faulty, kernel):
    """Object path: decode records, absorb via ``observe_batch``."""
    start = time.perf_counter()
    monitor = OnlineAbcMonitor(faulty=faulty, kernel=kernel)
    ratios = []
    for i in range(0, len(wire), batch):
        rows = codec.decode_records(wire[i : i + batch])
        ratios.append(
            monitor.observe_batch([record for _t, _i, record in rows])
        )
    elapsed = time.perf_counter() - start
    return elapsed, ratios, monitor


def replay_columnar(wire, batch, faulty, kernel):
    """Columnar path: transpose rows, absorb via
    ``observe_batch_columnar`` -- zero record objects."""
    start = time.perf_counter()
    monitor = OnlineAbcMonitor(faulty=faulty, kernel=kernel)
    ratios = []
    for i in range(0, len(wire), batch):
        _ticks, _ids, cols = codec.decode_records_columnar(
            wire[i : i + batch]
        )
        ratios.append(monitor.observe_batch_columnar(cols))
    elapsed = time.perf_counter() - start
    return elapsed, ratios, monitor


def assert_monitor_identity(wire, batch, faulty, kernel):
    """One full-monitor differential rep: object vs columnar replay
    with every observable asserted bit-identical.  Returns both
    elapsed times so callers can aggregate the (untimed-by-the-gate)
    monitor e2e blend."""
    obj_s, obj_ratios, obj_mon = replay_object(wire, batch, faulty, kernel)
    col_s, col_ratios, col_mon = replay_columnar(wire, batch, faulty, kernel)
    assert obj_ratios == col_ratios, (
        "columnar path diverged on the per-batch worst-ratio sequence"
    )
    assert obj_mon.oracle_calls == col_mon.oracle_calls, (
        "columnar path diverged on oracle-call counts"
    )
    assert [c.worst for c in obj_mon.changes] == [
        c.worst for c in col_mon.changes
    ], "columnar path diverged on the ratio-change log"
    assert (
        obj_mon.forgotten_message_edges == col_mon.forgotten_message_edges
    )
    assert (obj_mon.violation is None) == (col_mon.violation is None)
    return obj_s, col_s


def gate_shootout(wires, faulty, batch, reps, kernel) -> dict:
    """Interleaved min-of-``reps`` ingest shootout on a fleet of
    traces, identity-checked every rep.

    The timed span is wire rows -> kernel arrays (decode + filter +
    absorb).  Each rep also runs the full-monitor differential replay
    on every trace -- oracle included, outside the timed span -- so
    the bit-identity contract (ratios, oracle calls, change logs,
    forgotten edges) is proven on the gate workload itself; the
    monitor blend is reported alongside the gated ingest number.
    """
    n_records = sum(len(w) for w in wires)
    best = {
        "object_s": float("inf"),
        "columnar_s": float("inf"),
        "monitor_object_s": float("inf"),
        "monitor_columnar_s": float("inf"),
    }
    for _rep in range(reps):
        obj_s, obj_stats = ingest_object(wires, batch, faulty, kernel)
        col_s, col_stats = ingest_columnar(wires, batch, faulty, kernel)
        assert obj_stats == col_stats, (
            "columnar ingest diverged on per-trace event/message counts"
        )
        mon_obj = mon_col = 0.0
        for wire in wires:
            o, c = assert_monitor_identity(wire, batch, faulty, kernel)
            mon_obj += o
            mon_col += c
        best["object_s"] = min(best["object_s"], obj_s)
        best["columnar_s"] = min(best["columnar_s"], col_s)
        best["monitor_object_s"] = min(best["monitor_object_s"], mon_obj)
        best["monitor_columnar_s"] = min(best["monitor_columnar_s"], mon_col)
    return {
        "traces": len(wires),
        "records": n_records,
        "batch": batch,
        "kernel": kernel,
        "object_s": round(best["object_s"], 6),
        "columnar_s": round(best["columnar_s"], 6),
        "object_records_per_s": round(n_records / best["object_s"]),
        "columnar_records_per_s": round(n_records / best["columnar_s"]),
        "e2e_speedup": round(best["object_s"] / best["columnar_s"], 3),
        "monitor_object_s": round(best["monitor_object_s"], 6),
        "monitor_columnar_s": round(best["monitor_columnar_s"], 6),
        "monitor_e2e_speedup": round(
            best["monitor_object_s"] / best["monitor_columnar_s"], 3
        ),
        "bit_identical": True,
    }


def monitor_shootout(records, faulty, batch, reps, kernel) -> dict:
    """Interleaved min-of-``reps`` full-monitor replay of one trace,
    identity-checked every rep (per-batch ratios, oracle calls, change
    log, forgotten edges).  Oracle included: this is the blended e2e
    number of the per-profile sweep."""
    wire = encode_stream(records)
    best = {"object_s": float("inf"), "columnar_s": float("inf")}
    for _rep in range(reps):
        obj_s, col_s = assert_monitor_identity(wire, batch, faulty, kernel)
        best["object_s"] = min(best["object_s"], obj_s)
        best["columnar_s"] = min(best["columnar_s"], col_s)
    return {
        "records": len(records),
        "batch": batch,
        "kernel": kernel,
        "object_s": round(best["object_s"], 6),
        "columnar_s": round(best["columnar_s"], 6),
        "e2e_speedup": round(best["object_s"] / best["columnar_s"], 3),
        "bit_identical": True,
    }


def gate_workload(n_traces: int, n_events: int):
    """The gate fleet: message-dense firehose traces (the columnar
    path's best case -- every record past the wake-ups carries a
    triggering message and sends metadata), pre-encoded as wire rows."""
    rng = random.Random(GATE_SEED)
    return [
        encode_stream(profiled_trace_records(rng, "firehose", n_events))
        for _ in range(n_traces)
    ]


def profile_trace(profile: str, n_events: int):
    records = profiled_trace_records(
        random.Random(PROFILE_SEED), profile, n_events
    )
    return records, frozenset()


# ----------------------------------------------------------------------
# ingest plane: full shard engine, both paths
# ----------------------------------------------------------------------


def run_group(stream, columnar, *, n_shards, batch_size, wire_batch):
    """Push an interleaved wire stream through one ShardGroup, shard
    batches cut exactly as the parallel dispatcher cuts them."""
    group = ShardGroup(
        range(n_shards), xi=Fraction(3), batch_size=batch_size
    )
    start = time.perf_counter()
    buffers: dict[int, list[tuple]] = {}
    tick = 0
    for trace_id, wire_record in stream:
        tick += 1
        shard = shard_index_of(trace_id, n_shards)
        rows = buffers.setdefault(shard, [])
        rows.append((tick, trace_id, wire_record))
        if len(rows) >= wire_batch:
            if columnar:
                ticks, ids, cols = codec.decode_records_columnar(rows)
                group.ingest_batch_columnar(shard, ticks, ids, cols)
            else:
                group.ingest_batch(shard, codec.decode_records(rows))
            buffers[shard] = []
    for shard, rows in sorted(buffers.items()):
        if not rows:
            continue
        if columnar:
            ticks, ids, cols = codec.decode_records_columnar(rows)
            group.ingest_batch_columnar(shard, ticks, ids, cols)
        else:
            group.ingest_batch(shard, codec.decode_records(rows))
    group.flush_all()
    elapsed = time.perf_counter() - start
    answers = {}
    oracle_calls = 0
    for shard in group.shards.values():
        for trace_id, state in shard.traces.items():
            answers[trace_id] = (
                state.monitor.worst_ratio,
                state.degraded,
            )
            oracle_calls += state.monitor.oracle_calls
    flushes = tuple(
        (shard.index, shard.flushes, shard.records)
        for shard in group.shards.values()
    )
    return {
        "elapsed_s": elapsed,
        "answers": answers,
        "violations": list(group.violations),
        "flushes": flushes,
        "oracle_calls": oracle_calls,
        "live_events": group.live_events,
    }


def plane_shootout(
    seed, n_traces, records_per_trace, n_shards, batch_size, wire_batch
) -> dict:
    """Full-engine comparison on the bench_ingest workload: asserts
    everything observable identical, reports both throughputs."""
    stream = [
        (trace_id, codec.encode_record(record))
        for trace_id, record in build_workload(
            seed, n_traces, records_per_trace
        )
    ]
    obj = run_group(
        stream,
        False,
        n_shards=n_shards,
        batch_size=batch_size,
        wire_batch=wire_batch,
    )
    col = run_group(
        stream,
        True,
        n_shards=n_shards,
        batch_size=batch_size,
        wire_batch=wire_batch,
    )
    assert obj["answers"] == col["answers"], (
        "columnar ingest diverged on per-trace ratios/flags"
    )
    assert obj["violations"] == col["violations"], (
        "columnar ingest diverged on violation merge order"
    )
    assert obj["flushes"] == col["flushes"], (
        "columnar ingest diverged on flush cadence"
    )
    assert obj["oracle_calls"] == col["oracle_calls"]
    assert obj["live_events"] == col["live_events"]
    return {
        "traces": len({t for t, _ in stream}),
        "records": len(stream),
        "n_shards": n_shards,
        "batch_size": batch_size,
        "wire_batch": wire_batch,
        "object_s": round(obj["elapsed_s"], 6),
        "columnar_s": round(col["elapsed_s"], 6),
        "object_records_per_s": round(len(stream) / obj["elapsed_s"]),
        "columnar_records_per_s": round(len(stream) / col["elapsed_s"]),
        "plane_speedup": round(obj["elapsed_s"] / col["elapsed_s"], 3),
        "violations": len(obj["violations"]),
        "bit_identical": True,
    }


def run(
    gate_traces: int,
    gate_events: int,
    reps: int,
    batch: int,
    kernel: str,
    profile_events: int,
    sweep: bool,
    plane: bool,
    plane_traces: int,
    plane_records: tuple[int, int],
) -> dict:
    wires = gate_workload(gate_traces, gate_events)
    gate = {
        "workload": f"firehose-{gate_traces}x{gate_events}",
        **gate_shootout(wires, frozenset(), batch, reps, kernel),
    }
    out = {"gate": gate, "profiles": {}, "plane": None}
    if sweep:
        for profile in PROFILES:
            records, faulty = profile_trace(profile, profile_events)
            out["profiles"][profile] = monitor_shootout(
                records, faulty, batch, max(2, reps // 2), kernel
            )
    if plane:
        out["plane"] = plane_shootout(
            PLANE_SEED,
            plane_traces,
            plane_records,
            PLANE_SHARDS,
            32,
            128,
        )
    return out


# ----------------------------------------------------------------------
# pytest entries
# ----------------------------------------------------------------------


def test_e2e_bit_identity():
    """Pytest entry: smoke-size shootout on the gate workload, every
    profile, and the ingest plane.  Bit-identity (per-batch ratios,
    oracle calls, violation order, flush cadence) is asserted inside
    the shootouts every rep; no speed floor is applied -- wall-clock
    gating is the CLI's job, on quiet hardware or in the dedicated CI
    step.
    """
    result = run(
        gate_traces=4,
        gate_events=60,
        reps=2,
        batch=16,
        kernel="flat_int",
        profile_events=40,
        sweep=True,
        plane=True,
        plane_traces=40,
        plane_records=(15, 30),
    )
    assert result["gate"]["bit_identical"]
    for profile, row in result["profiles"].items():
        assert row["bit_identical"], profile
    assert result["plane"]["bit_identical"]


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "columnar vs object ingest shootout: wire-to-kernel ingest "
            "on the firehose gate workload (bit-identity asserted every "
            "rep, full-monitor differential included) plus the "
            "oracle-inclusive monitor blend and the shard-engine "
            "ingest plane"
        )
    )
    parser.add_argument(
        "--gate-traces", type=int, default=DEFAULT_GATE_TRACES,
        help="traces in the gate fleet",
    )
    parser.add_argument(
        "--gate-events", type=int, default=DEFAULT_GATE_EVENTS,
        help="events per gate trace",
    )
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS,
        help="interleaved repetitions; min over reps is reported",
    )
    parser.add_argument(
        "--batch", type=int, default=DEFAULT_BATCH,
        help="records per wire batch (the flush watermark)",
    )
    parser.add_argument(
        "--kernel", default=DEFAULT_KERNEL,
        help="detection kernel for both paths (default flat_int, the "
        "production configuration)",
    )
    parser.add_argument(
        "--profile-events", type=int, default=PROFILE_EVENTS,
        help="events per profile in the per-profile sweep",
    )
    parser.add_argument(
        "--no-sweep", action="store_true",
        help="skip the per-profile sweep (smoke runs)",
    )
    parser.add_argument(
        "--no-plane", action="store_true",
        help="skip the shard-engine ingest-plane comparison",
    )
    parser.add_argument(
        "--plane-traces", type=int, default=PLANE_TRACES,
        help="traces in the ingest-plane workload",
    )
    parser.add_argument(
        "--min-plane-records", type=int, default=PLANE_RECORDS[0],
    )
    parser.add_argument(
        "--max-plane-records", type=int, default=PLANE_RECORDS[1],
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help=(
            "hard floor on the wire-to-kernel ingest speedup of the "
            "gate workload (0 disables; CI uses 1.5, nominal is "
            "~2.2-2.5)"
        ),
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics dict to this path",
    )
    args = parser.parse_args(argv)

    result = run(
        args.gate_traces,
        args.gate_events,
        args.reps,
        args.batch,
        args.kernel,
        args.profile_events,
        not args.no_sweep,
        not args.no_plane,
        args.plane_traces,
        (
            min(args.min_plane_records, args.max_plane_records),
            args.max_plane_records,
        ),
    )
    gate = result["gate"]
    print(
        f"[bench_e2e] ingest {gate['workload']} ({gate['kernel']}, "
        f"batch={gate['batch']}): "
        f"object {gate['object_s'] * 1e3:.1f}ms -> "
        f"columnar {gate['columnar_s'] * 1e3:.1f}ms "
        f"({gate['e2e_speedup']:.2f}x, "
        f"{gate['columnar_records_per_s']} rec/s), bit-identical"
    )
    print(
        f"[bench_e2e] monitor e2e (oracle included, not gated): "
        f"{gate['monitor_object_s'] * 1e3:.1f}ms -> "
        f"{gate['monitor_columnar_s'] * 1e3:.1f}ms "
        f"({gate['monitor_e2e_speedup']:.2f}x)"
    )
    for profile, row in result["profiles"].items():
        print(
            f"[bench_e2e]   {profile:>8}: {row['e2e_speedup']:.2f}x "
            f"monitor e2e ({row['records']} records)"
        )
    plane = result["plane"]
    if plane is not None:
        print(
            f"[bench_e2e] ingest plane ({plane['traces']} traces, "
            f"{plane['records']} records): "
            f"{plane['object_records_per_s']} -> "
            f"{plane['columnar_records_per_s']} rec/s "
            f"({plane['plane_speedup']:.2f}x), "
            f"{plane['violations']} violations in identical order"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")
    if args.min_speedup and gate["e2e_speedup"] < args.min_speedup:
        print(
            f"[bench_e2e] FAIL: ingest speedup {gate['e2e_speedup']:.2f}x "
            f"below the {args.min_speedup:.1f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

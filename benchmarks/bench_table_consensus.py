"""T8 -- consensus on top of the ABC model (Sections 2 and 6).

Paper claim: lock-step rounds make any synchronous Byzantine consensus
algorithm work in the ABC model.  Measured: phase-king (n > 4f) and EIG
(n > 3f, optimal resilience) decide with agreement and validity over the
lock-step simulation, for an f sweep; decisions match the native
synchronous executor in deterministic settings.
"""

from fractions import Fraction

import pytest

from repro.algorithms import (
    ExponentialInformationGathering,
    LockstepProcess,
    PhaseKing,
    eig_rounds,
    phase_king_rounds,
    round_phases_for,
    run_synchronous,
)
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
)

XI = Fraction(2)


def run_over_lockstep(make_app, n, f, rounds, seed=0):
    phases = round_phases_for(XI)
    apps = [make_app(pid) for pid in range(n)]
    procs = [
        LockstepProcess(f, phases, apps[pid], max_rounds=rounds + 1)
        for pid in range(n)
    ]
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    sim = Simulator(procs, net, seed=seed)
    trace = sim.run(SimulationLimits(max_events=500_000))
    return apps, trace


@pytest.mark.parametrize("n,f", [(5, 1), (9, 2)])
def test_phase_king_over_lockstep(benchmark, n, f):
    initials = [pid % 2 for pid in range(n)]

    def run():
        apps, trace = run_over_lockstep(
            lambda pid: PhaseKing(pid, n, f, initials[pid]),
            n, f, phase_king_rounds(f), seed=n,
        )
        return apps, trace

    apps, trace = benchmark(run)
    decisions = [a.decision for a in apps]
    assert None not in decisions and len(set(decisions)) == 1
    sync_apps = [PhaseKing(pid, n, f, initials[pid]) for pid in range(n)]
    run_synchronous(sync_apps, phase_king_rounds(f))
    assert decisions == [a.decision for a in sync_apps]
    benchmark.extra_info["n,f"] = f"{n},{f}"
    benchmark.extra_info["rounds"] = phase_king_rounds(f)
    benchmark.extra_info["events"] = len(trace.records)
    benchmark.extra_info["decision"] = decisions[0]


@pytest.mark.parametrize("n,f", [(4, 1)])
def test_eig_over_lockstep_optimal_resilience(benchmark, n, f):
    initials = [1, 1, 0, 1]

    def run():
        apps, trace = run_over_lockstep(
            lambda pid: ExponentialInformationGathering(
                pid, n, f, initials[pid]
            ),
            n, f, eig_rounds(f) + 1, seed=4,
        )
        return apps, trace

    apps, trace = benchmark(run)
    decisions = [a.decision for a in apps]
    assert None not in decisions and len(set(decisions)) == 1
    benchmark.extra_info["n,f"] = f"{n},{f} (n = 3f + 1)"
    benchmark.extra_info["decision"] = decisions[0]
    benchmark.extra_info["events"] = len(trace.records)

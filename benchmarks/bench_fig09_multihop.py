"""F9 -- Figure 9: multi-hop delay compensation.

Paper claim: for the cycle formed by 1-hop q-p round trips spanning the
2-hop path q-r-s-r-q, only the *cumulative* delay ratio matters -- the
individual q-r and r-s delays are irrelevant ("a long delay on one link
is compensated by a fast one on the other").  Measured: the cycle ratio
as a function of the number of fast round trips, and a simulation where
wildly skewed per-link delays still keep the execution admissible.
"""

from fractions import Fraction

import pytest

from repro.algorithms import PingPongMonitor, PongResponder
from repro.core import check_abc, worst_relevant_ratio
from repro.scenarios import fig9_graph
from repro.sim import (
    FixedDelay,
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    Topology,
)


@pytest.mark.parametrize("round_trips", [2, 3, 4, 6])
def test_fig9_cumulative_ratio(benchmark, round_trips):
    graph, expected = fig9_graph(round_trips)

    def worst():
        return worst_relevant_ratio(graph)

    measured = benchmark(worst)
    assert measured == expected == Fraction(2 * round_trips, 4)
    benchmark.extra_info["round_trips"] = round_trips
    benchmark.extra_info["ratio"] = str(measured)


def test_fig9_skewed_link_delays_compensate(benchmark):
    """q-r is 10x slower than r-s; the cumulative 2-hop delay is what the
    relevant cycles see, so admissibility is unaffected."""
    q, p, r, s = 0, 1, 2, 3
    delays = PerLinkDelay(
        {
            (q, r): FixedDelay(10.0), (r, q): FixedDelay(10.0),
            (r, s): FixedDelay(1.0), (s, r): FixedDelay(1.0),
        },
        default=FixedDelay(5.0),
    )

    def run():
        monitor = PingPongMonitor(targets=[p, r], xi=Fraction(4),
                                  max_probes=4)
        procs = [monitor, PongResponder(), PongResponder(), PongResponder()]
        net = Network(Topology.fully_connected(4), delays)
        sim = Simulator(procs, net, seed=2)
        trace = sim.run(SimulationLimits(max_events=5_000))
        from repro.sim import build_execution_graph

        return build_execution_graph(trace), monitor

    graph, monitor = benchmark(run)
    assert check_abc(graph, 4).admissible
    assert monitor.suspected == set()
    benchmark.extra_info["worst_ratio"] = str(worst_relevant_ratio(graph))

"""Frozen seed ABC-enforcing simulator (the pre-rework implementation).

The single frozen copy of the rebuild-per-delivery enforcer: it rebuilds
the execution graph and a fresh checker for every (tentative delivery,
pending message) oracle call, and removes rescued deliveries eagerly
with ``list.remove`` + ``heapify``.  Both the enforcer benchmark
(``bench_abc_enforcer.py``) and the differential test
(``tests/sim/test_abc_scheduler_differential.py``) measure the
incremental scheduler against exactly this behavior -- keep it verbatim
so they keep certifying the same thing as the library evolves; do not
"fix" it.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.synchrony import has_relevant_cycle_with_ratio_at_least
from repro.sim.engine import Simulator, _Delivery
from repro.sim.trace import build_execution_graph

__all__ = ["SeedAbcEnforcingSimulator"]


class SeedAbcEnforcingSimulator(Simulator):
    def __init__(self, *args, xi, **kwargs):
        super().__init__(*args, **kwargs)
        self.xi = Fraction(xi)
        if self.xi <= 1:
            raise ValueError(f"the ABC model requires Xi > 1, got {self.xi}")
        self.pulled_forward = 0

    def _base_graph(self):
        graph = build_execution_graph(self.trace)
        return (
            {p: list(graph.events_of(p)) for p in range(self.n)},
            list(graph.messages),
        )

    def _strands(self, base, first, pending):
        base_events, base_messages = base
        events = {p: list(evs) for p, evs in base_events.items()}
        messages = list(base_messages)
        counts = {p: len(evs) for p, evs in events.items()}

        def add(dest, sender, send_event):
            new_event = Event(dest, counts[dest])
            counts[dest] += 1
            events[dest] = events[dest] + [new_event]
            if (
                sender is not None
                and send_event is not None
                and sender not in self.faulty
            ):
                messages.append(MessageEdge(send_event, new_event))
            return new_event

        add(first.dest, first.sender, first.send_event)
        pending_event = add(pending.dest, pending.sender, pending.send_event)
        if has_relevant_cycle_with_ratio_at_least(
            ExecutionGraph(events, messages), self.xi
        ):
            return True
        if pending.sender is not None and pending.sender != pending.dest:
            add(pending.sender, pending.dest, pending_event)
            if has_relevant_cycle_with_ratio_at_least(
                ExecutionGraph(events, messages), self.xi
            ):
                return True
        return False

    def _step(self):
        delivery = heapq.heappop(self._queue)
        base = self._base_graph()
        stranded = []
        for pending in self._queue:
            if pending.sender is None or pending.sender in self.faulty:
                continue
            if self._strands(base, delivery, pending):
                stranded.append(pending)
        if not stranded:
            self._process_delivery(delivery)
            return
        heapq.heappush(self._queue, delivery)
        rescue = min(stranded, key=lambda d: (d.send_time or 0.0, d.seq))
        self._queue.remove(rescue)
        heapq.heapify(self._queue)
        self.pulled_forward += 1
        expedited = _Delivery(
            self.now,
            rescue.seq,
            rescue.dest,
            rescue.sender,
            rescue.send_event,
            rescue.send_time,
            rescue.payload,
        )
        self._process_delivery(expedited)

"""Network ingest: sharded fronts vs. a single dispatcher, bit for bit.

The acceptance benchmark of the network ingestion plane: a >=400-trace
concurrent workload streamed by multiple producer clients over real
sockets into an :class:`~repro.runtime.net.IngestServer`, once with a
**single front** (one dispatcher thread routing into all workers -- the
plain ``ParallelFleet`` shape behind a socket) and once with **N
fronts** (independent dispatchers, each owning a disjoint slice of the
shard space and of the global tick space).  Three claims are gated:

* **bit-identity** -- per-trace worst ratios, degradation flags and
  the violating-trace set from the multi-front server agree exactly
  with the serial :class:`~repro.analysis.fleet.MonitorFleet` over the
  same records (and the single-front server agrees too: fronts change
  *throughput*, never answers);
* **delta reconstruction** -- a subscriber that watched the run
  rebuilds the final worst-ratio histogram, top-k watchlist and
  violation feed from the incremental delta stream alone, matching the
  pull-side answers exactly;
* **throughput** -- N fronts ingest the multi-producer stream at least
  ``--min-speedup`` times faster than the single front with the same
  total worker count.  A single dispatcher serializes routing, wire
  encoding and -- critically -- *blocking*: when one worker's bounded
  inbox fills, the lone dispatcher stalls and every other worker
  starves behind it (head-of-line blocking).  Independent fronts stall
  independently.  The CI gate runs ``--min-speedup 1.1`` -- a
  deliberately shared-runner-safe floor: the win comes from overlap of
  stalls, which survives core contention, but wall-clock ratios on
  shared runners are too noisy to gate the ~1.3-1.6x nominal on a
  quiet multi-core box.  The pytest entry asserts bit-identity and
  delta reconstruction always but skips the throughput floor on
  single-core machines.

Also runnable as a script (CI smoke / the gate)::

    python benchmarks/bench_ingest.py --traces 40 --max-records 60 --min-speedup 0
    python benchmarks/bench_ingest.py --min-speedup 1.1 --json BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from fractions import Fraction

from repro.analysis.fleet import MonitorFleet
from repro.runtime.net import DeltaSubscriber, IngestServer, ProducerClient
from repro.scenarios.generators import concurrent_workload

DEFAULT_TRACES = 420
DEFAULT_RECORDS = (160, 280)
DEFAULT_BATCH = 32
DEFAULT_SHARDS = 8
DEFAULT_FRONTS = 2
DEFAULT_TOTAL_WORKERS = 2
DEFAULT_PRODUCERS = 3
DEFAULT_CLIENT_BATCH = 64
DEFAULT_WIRE_BATCH = 128
# Small on purpose: the throughput story is head-of-line blocking on a
# full worker inbox, and a deep inbox would hide it at bench scale.
DEFAULT_INBOX = 4
DEFAULT_SEED = 11
DEFAULT_XI = Fraction(3)
# The CI floor at 2 fronts / 2 total workers.  Conservative (see module
# docstring): the multi-front win is stall overlap, not raw CPU, so it
# survives shared runners, but 1.1x leaves room for their jitter.
HARD_SPEEDUP_FLOOR = 1.1


def build_workload(seed, n_traces, records_per_trace):
    rng = random.Random(seed)
    return list(
        concurrent_workload(
            rng,
            n_traces=n_traces,
            records_per_trace=records_per_trace,
            # Storm-heavy, like bench_parallel: dense digraphs keep the
            # workers busy enough that their inboxes actually fill,
            # which is the regime the front count matters in.
            profile_weights={"storm": 0.5, "burst": 0.35, "idler": 0.15},
        )
    )


def run_serial(stream, xi, batch_size, n_shards):
    fleet = MonitorFleet(xi=xi, n_shards=n_shards, batch_size=batch_size)
    fleet.ingest_many(stream)
    fleet.flush()
    ids = sorted({tid for tid, _ in stream}, key=str)
    return (
        {tid: fleet.worst_ratio(tid) for tid in ids},
        {tid: fleet.is_degraded(tid) for tid in ids},
        set(fleet.violating_traces()),
    )


def run_ingest(
    stream,
    *,
    xi,
    n_fronts,
    workers_per_front,
    n_shards,
    batch_size,
    backend,
    wire_batch,
    inbox_capacity,
    n_producers,
    client_batch,
    subscribe=False,
):
    """One full multi-producer run against one server configuration.

    Returns ``(answers, violating, ingest_seconds, aggregates, view)``
    where ``ingest_seconds`` covers first byte to fully-absorbed (every
    producer acked, every front flushed) and ``view`` is the
    subscriber's reconstructed :class:`DeltaView` (or ``None``).
    """
    ids = sorted({tid for tid, _ in stream}, key=str)
    owner = {tid: i % n_producers for i, tid in enumerate(ids)}
    with IngestServer(
        xi,
        n_fronts=n_fronts,
        workers_per_front=workers_per_front,
        n_shards=n_shards,
        batch_size=batch_size,
        backend=backend,
        wire_batch=wire_batch,
        inbox_capacity=inbox_capacity,
    ) as server:
        sub = (
            DeltaSubscriber(server.address, name="bench")
            if subscribe
            else None
        )

        def produce(index):
            with ProducerClient(
                server.address,
                producer_id=f"producer-{index}",
                batch=client_batch,
            ) as client:
                for tid, rec in stream:
                    if owner[tid] == index:
                        client.send(tid, rec)

        threads = [
            threading.Thread(target=produce, args=(i,), daemon=True)
            for i in range(n_producers)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server.flush()
        elapsed = time.perf_counter() - start
        assert server.front_errors() == (), server.front_errors()
        assert server.ingested_records == len(stream)
        answers = {
            tid: (server.worst_ratio(tid), server.is_degraded(tid))
            for tid in ids
        }
        violating = set(server.violating_traces())
        aggregates = {
            "ratios": dict(server.all_ratios()),
            "histogram": server.worst_ratio_histogram(),
            "top_k": server.top_k_riskiest(10),
            "feed": server.violation_feed(),
        }
    view = None
    if sub is not None:
        # The server has fully stopped; the view is rebuilt from the
        # snapshot + delta frames alone.
        view = sub.run_to_end()
        sub.close()
    return answers, violating, elapsed, aggregates, view


def compare(
    seed=DEFAULT_SEED,
    n_traces=DEFAULT_TRACES,
    records_per_trace=DEFAULT_RECORDS,
    batch_size=DEFAULT_BATCH,
    n_shards=DEFAULT_SHARDS,
    n_fronts=DEFAULT_FRONTS,
    total_workers=DEFAULT_TOTAL_WORKERS,
    n_producers=DEFAULT_PRODUCERS,
    client_batch=DEFAULT_CLIENT_BATCH,
    wire_batch=DEFAULT_WIRE_BATCH,
    inbox_capacity=DEFAULT_INBOX,
    backend="process",
    xi=DEFAULT_XI,
):
    """Serial reference, single-front server, multi-front server.

    Raises ``AssertionError`` unless both servers are bit-identical to
    serial and the delta subscriber reconstructs the multi-front
    aggregates exactly.
    """
    if total_workers % n_fronts:
        raise ValueError(
            f"total_workers={total_workers} must divide across "
            f"{n_fronts} fronts"
        )
    stream = build_workload(seed, n_traces, records_per_trace)
    trace_ids = sorted({tid for tid, _ in stream}, key=str)
    assert len(trace_ids) >= 400 or n_traces < 400, "workload shrank"

    serial_start = time.perf_counter()
    ratios, degraded, violating = run_serial(
        stream, xi, batch_size, n_shards
    )
    serial_s = time.perf_counter() - serial_start
    expected = {tid: (ratios[tid], degraded[tid]) for tid in trace_ids}

    common = dict(
        xi=xi,
        n_shards=n_shards,
        batch_size=batch_size,
        backend=backend,
        wire_batch=wire_batch,
        inbox_capacity=inbox_capacity,
        n_producers=n_producers,
        client_batch=client_batch,
    )
    single_answers, single_violating, single_s, _agg, _ = run_ingest(
        stream, n_fronts=1, workers_per_front=total_workers, **common
    )
    multi_answers, multi_violating, multi_s, aggregates, view = run_ingest(
        stream,
        n_fronts=n_fronts,
        workers_per_front=total_workers // n_fronts,
        subscribe=True,
        **common,
    )

    mismatches = [t for t in trace_ids if multi_answers[t] != expected[t]]
    assert not mismatches, f"multi-front divergence: {mismatches[:5]}"
    assert multi_violating == violating, "violation sets diverged"
    mismatches = [t for t in trace_ids if single_answers[t] != expected[t]]
    assert not mismatches, f"single-front divergence: {mismatches[:5]}"
    assert single_violating == violating

    assert view is not None
    assert view.ratios == aggregates["ratios"], "delta ratios diverged"
    assert view.worst_ratio_histogram() == aggregates["histogram"]
    assert view.top_k_riskiest(10) == aggregates["top_k"]
    assert view.violation_feed() == aggregates["feed"]

    return {
        "traces": len(trace_ids),
        "records": len(stream),
        "batch_size": batch_size,
        "n_shards": n_shards,
        "n_fronts": n_fronts,
        "total_workers": total_workers,
        "n_producers": n_producers,
        "client_batch": client_batch,
        "wire_batch": wire_batch,
        "inbox_capacity": inbox_capacity,
        "backend": backend,
        "xi": str(xi),
        "serial_s": serial_s,
        "single_front_s": single_s,
        "multi_front_s": multi_s,
        "speedup": single_s / multi_s,
        "single_front_records_per_s": len(stream) / single_s,
        "multi_front_records_per_s": len(stream) / multi_s,
        "violating_traces": len(violating),
        "delta_frames_seq": view.seq,
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# pytest entries
# ----------------------------------------------------------------------


def test_ingest_bit_identity_and_delta_reconstruction():
    """Multi-producer network ingest bit-identical to serial, delta
    stream reconstructing the aggregates; the throughput floor applies
    only where overlap has cores to run on (>= 2)."""
    r = compare(
        n_traces=60,
        records_per_trace=(30, 60),
        n_producers=2,
        client_batch=32,
        backend="thread",
    )
    sys.stderr.write(
        f"\n[bench_ingest] traces={r['traces']} records={r['records']} "
        f"single_front={r['single_front_s']:.2f}s "
        f"multi_front={r['multi_front_s']:.2f}s "
        f"({r['speedup']:.2f}x on {r['n_fronts']} fronts, "
        f"{r['cpu_count']} cpus)\n"
    )
    if (os.cpu_count() or 1) >= 2:
        assert r["speedup"] >= 0.8, (
            f"multi-front collapsed to {r['speedup']:.2f}x of single-front"
        )


# ----------------------------------------------------------------------
# script mode (CI smoke, the gate, JSON artifact)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "Gate the network ingestion plane: multi-producer ingest "
            "bit-identical to the serial MonitorFleet, delta streams "
            "reconstructing the aggregates, and N sharded fronts "
            "beating a single dispatcher on throughput."
        )
    )
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--min-records", type=int, default=DEFAULT_RECORDS[0],
        help="minimum records per trace",
    )
    parser.add_argument(
        "--max-records", type=int, default=DEFAULT_RECORDS[1],
        help="maximum records per trace",
    )
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--fronts", type=int, default=DEFAULT_FRONTS)
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_TOTAL_WORKERS,
        help="total workers (split across fronts)",
    )
    parser.add_argument("--producers", type=int, default=DEFAULT_PRODUCERS)
    parser.add_argument(
        "--client-batch", type=int, default=DEFAULT_CLIENT_BATCH,
        help="rows per producer frame",
    )
    parser.add_argument(
        "--wire-batch", type=int, default=DEFAULT_WIRE_BATCH,
        help="records per shard batch on the worker wire",
    )
    parser.add_argument(
        "--inbox", type=int, default=DEFAULT_INBOX,
        help="worker inbox capacity (small = head-of-line pressure)",
    )
    parser.add_argument(
        "--backend", choices=("process", "thread"), default="process",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless multi-front reaches this speedup",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the metrics to this JSON file",
    )
    args = parser.parse_args(argv)

    records = (min(args.min_records, args.max_records), args.max_records)
    r = compare(
        seed=args.seed,
        n_traces=args.traces,
        records_per_trace=records,
        batch_size=args.batch,
        n_shards=args.shards,
        n_fronts=args.fronts,
        total_workers=args.workers,
        n_producers=args.producers,
        client_batch=args.client_batch,
        wire_batch=args.wire_batch,
        inbox_capacity=args.inbox,
        backend=args.backend,
    )
    print(
        f"workload: {r['traces']} traces, {r['records']} records "
        f"({r['n_producers']} producers, client_batch="
        f"{r['client_batch']}, shards={r['n_shards']}, "
        f"backend={r['backend']}, Xi={r['xi']})"
    )
    print(
        f"single front ({r['total_workers']} workers): "
        f"{r['single_front_s'] * 1e3:8.1f} ms  "
        f"{r['single_front_records_per_s']:8.0f} rec/s"
    )
    print(
        f"{r['n_fronts']} fronts      ({r['total_workers']} workers): "
        f"{r['multi_front_s'] * 1e3:8.1f} ms  "
        f"{r['multi_front_records_per_s']:8.0f} rec/s  "
        f"({r['speedup']:.2f}x)"
    )
    print(
        f"bit-identical: per-trace ratios, degradation flags, and the "
        f"violating set ({r['violating_traces']} traces); delta "
        f"subscriber reconstructed the aggregates exactly "
        f"({r['delta_frames_seq']} frames)"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2)
        print(f"wrote {args.json}")
    if args.min_speedup is not None and r["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {r['speedup']:.2f}x < {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""F5 -- Figure 5 / Lemma 4: the causal-cone property in live runs.

Paper claim: whenever a correct process's clock reaches k + 2 Xi, it has
already received (tick l) from *every* correct process for all l <= k --
the key lemma behind Theorems 2 and 5.  Measured: the property checked
over Algorithm-1 runs for a sweep of (n, f), with Byzantine senders.
"""

from fractions import Fraction

import pytest

from repro.algorithms import ByzantineTickSpammer
from repro.analysis import ClockAnalysis, verify_causal_cone
from repro.scenarios.generators import clock_sync_run

XI = Fraction(2)


@pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
def test_lemma4_causal_cone(benchmark, n, f):
    trace, procs = clock_sync_run(n=n, f=f, theta=1.5, max_tick=8, seed=n)
    analysis = ClockAnalysis.from_run(trace, procs)

    def check():
        return verify_causal_cone(analysis, XI)

    assert benchmark(check)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["f"] = f
    benchmark.extra_info["events"] = len(trace.records)


def test_lemma4_with_byzantine_sender(benchmark):
    spammer = ByzantineTickSpammer(spread=12, burst=2, seed=2)
    trace, procs = clock_sync_run(
        n=4, f=1, theta=1.5, max_tick=8, seed=5, faulty_procs=[spammer]
    )
    analysis = ClockAnalysis.from_run(trace, procs)

    def check():
        return verify_causal_cone(analysis, XI)

    assert benchmark(check)
    benchmark.extra_info["byzantine"] = "tick spammer"

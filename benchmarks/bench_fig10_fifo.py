"""F10 -- Figure 10: ABC-enforced FIFO channels with unbounded delays.

Paper claim: with Xi = 4, reordering the two messages from p2 to q1
would close a relevant cycle with ratio 5 -- inadmissible -- so the
channel is FIFO even though its delays are unbounded (and may grow).
Measured: admissibility of both orders for a sweep of Xi, plus observed
FIFO behaviour of a growing-delay simulation.
"""

import pytest

from repro.core import check_abc, worst_relevant_ratio
from repro.scenarios import fig10_graphs
from repro.sim import (
    FixedDelay,
    GrowingDelay,
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    Topology,
)
from repro.sim.process import Process, StepContext


@pytest.mark.parametrize("xi", [2, 4, 6])
def test_fig10_reordering_violates(benchmark, xi):
    def build():
        return fig10_graphs(xi)

    in_order, reordered = benchmark(build)
    assert check_abc(in_order, xi).admissible
    assert not check_abc(reordered, xi).admissible
    assert worst_relevant_ratio(reordered) == xi + 1
    benchmark.extra_info["xi"] = xi
    benchmark.extra_info["violating_ratio"] = str(xi + 1)


class _Streamer(Process):
    """p2: streams numbered messages to q1 while ping-ponging with p1."""

    def __init__(self, peer: int, sink: int, count: int) -> None:
        self.peer, self.sink, self.count = peer, sink, count
        self._i = 0

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.send(self.sink, ("data", self._i))
        ctx.send(self.peer, "ping")
        self._i += 1

    def on_message(self, ctx: StepContext, payload, sender: int) -> None:
        if payload == "pong" and self._i < self.count:
            ctx.send(self.sink, ("data", self._i))
            ctx.send(self.peer, "ping")
            self._i += 1


class _Responder(Process):
    def on_message(self, ctx: StepContext, payload, sender: int) -> None:
        if payload == "ping":
            ctx.send(sender, "pong")


def test_fig10_growing_delay_stream_stays_fifo(benchmark):
    p1, p2, q1 = 0, 1, 2
    delays = PerLinkDelay(
        {(p2, q1): GrowingDelay(FixedDelay(5.0), rate=0.5)},
        default=FixedDelay(1.0),
    )

    def run():
        procs = [_Responder(), _Streamer(p1, q1, count=10), Process()]
        net = Network(Topology.fully_connected(3), delays)
        sim = Simulator(procs, net, seed=0)
        return sim.run(SimulationLimits(max_events=5_000))

    trace = benchmark(run)
    data = [r.payload[1] for r in trace.records
            if r.event.process == q1 and isinstance(r.payload, tuple)]
    assert len(data) == 10
    assert data == sorted(data)  # FIFO despite delays growing 5 -> 50+
    benchmark.extra_info["received_order"] = data

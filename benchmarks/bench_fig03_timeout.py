"""F3 -- Figure 3: timing out p_slow after Xi ping-pong round trips.

Paper claim: if the reply arrived after the 2 Xi-message chain, it would
close a relevant cycle with |Z-|/|Z+| = 2 Xi / 2 = Xi, violating (2); so
the monitor may suspect p_slow, and in admissible executions it never
suspects a correct process.  Measured: the constructed cycle's exact
ratio for a sweep of Xi, plus a live failure-detector run.
"""

from fractions import Fraction

import pytest

from repro.algorithms import PingPongMonitor, PongResponder
from repro.core import check_abc, worst_relevant_ratio
from repro.scenarios import fig3_graph
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
)
from repro.sim.faults import CrashAfter


@pytest.mark.parametrize("xi", [2, 3, 4, 5])
def test_fig3_cycle_ratio_equals_xi(benchmark, xi):
    graph, ratio = fig3_graph(xi)

    def worst():
        return worst_relevant_ratio(graph)

    measured = benchmark(worst)
    assert measured == ratio == xi
    assert not check_abc(graph, xi).admissible
    benchmark.extra_info["xi"] = xi
    benchmark.extra_info["cycle_ratio"] = str(measured)


def test_fig3_live_failure_detection(benchmark):
    """End-to-end: detection works, with neither false positives nor
    misses, over an admissible (Theta-band) execution."""

    def run():
        monitor = PingPongMonitor(targets=[1, 2, 3], xi=Fraction(2),
                                  max_probes=6)
        procs: list = [monitor, PongResponder(),
                       CrashAfter(PongResponder(), steps=0), PongResponder()]
        net = Network(Topology.fully_connected(4), ThetaBandDelay(1.0, 1.5))
        Simulator(procs, net, faulty={2}, seed=1).run(
            SimulationLimits(max_events=20_000)
        )
        return monitor.suspected

    suspected = benchmark(run)
    assert suspected == {2}
    benchmark.extra_info["suspected"] = sorted(suspected)

"""T2 -- Theorems 2 and 3: clock synchrony |C_p - C_q| <= 2 Xi.

Paper claim: on every consistent cut (Thm 2) and at every real time
(Thm 3) correct clocks differ by at most 2 Xi.  Measured: the worst
observed spread over cut families and real-time sweeps for a grid of
(n, f, Xi), with the admissibility precondition Theta < Xi.
"""

from fractions import Fraction

import pytest

from repro.analysis import (
    ClockAnalysis,
    verify_cut_synchrony,
    verify_realtime_precision,
)
from repro.scenarios.generators import clock_sync_run

GRID = [
    (4, 1, Fraction(2)),
    (7, 2, Fraction(2)),
    (4, 1, Fraction(3)),
    (10, 3, Fraction(3, 2)),
]


@pytest.mark.parametrize("n,f,xi", GRID)
def test_cut_synchrony(benchmark, n, f, xi):
    theta = float(xi) * 0.7 if xi > Fraction(3, 2) else 1.4
    trace, procs = clock_sync_run(n=n, f=f, theta=theta, max_tick=10, seed=n)
    analysis = ClockAnalysis.from_run(trace, procs)

    def check():
        return verify_cut_synchrony(analysis, xi, extra_samples=20)

    report = benchmark(check)
    assert report.holds
    benchmark.extra_info["n,f,Xi"] = f"{n},{f},{xi}"
    benchmark.extra_info["bound_2xi"] = str(report.bound)
    benchmark.extra_info["worst_spread"] = report.worst_spread
    benchmark.extra_info["cuts_checked"] = report.n_cuts


@pytest.mark.parametrize("n,f,xi", GRID)
def test_realtime_precision(benchmark, n, f, xi):
    theta = float(xi) * 0.7 if xi > Fraction(3, 2) else 1.4
    trace, procs = clock_sync_run(n=n, f=f, theta=theta, max_tick=10, seed=n + 1)
    analysis = ClockAnalysis.from_run(trace, procs)

    def check():
        return verify_realtime_precision(analysis, xi)

    report = benchmark(check)
    assert report.holds
    benchmark.extra_info["n,f,Xi"] = f"{n},{f},{xi}"
    benchmark.extra_info["bound_2xi"] = str(report.bound)
    benchmark.extra_info["worst_spread"] = report.worst_spread

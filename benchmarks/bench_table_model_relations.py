"""T6 -- Theorems 6 and 9: the Theta-Model / ABC-model inclusion.

Paper claims: (i) every Theta-admissible execution is ABC-admissible for
Xi > Theta; (ii) the converse fails -- zero-delay (and growing-delay)
ABC executions violate (3) for every Theta; (iii) via Theorem 7, every
finite ABC graph *can* be re-timed into a Theta execution.  Measured:
all three directions over simulated runs.
"""

from fractions import Fraction

import pytest

from repro.models import (
    abc_strictly_weaker_witness,
    verify_theorem6,
    verify_theorem7_on_graph,
)
from repro.scenarios.generators import theta_band_trace
from repro.sim import build_execution_graph


@pytest.mark.parametrize("theta,xi", [(1.3, Fraction(3, 2)),
                                      (1.5, Fraction(2)),
                                      (2.5, Fraction(3))])
def test_theta_subset_abc(benchmark, theta, xi):
    def check():
        results = []
        for seed in range(3):
            trace = theta_band_trace(
                n=4, f=1, theta=theta, max_tick=6, seed=seed
            )
            results.append(verify_theorem6(trace, theta, xi))
        return results

    reports = benchmark(check)
    assert all(r.theta_admissible and r.abc_admissible for r in reports)
    benchmark.extra_info["theta"] = theta
    benchmark.extra_info["xi"] = str(xi)
    benchmark.extra_info["runs"] = len(reports)


def test_abc_not_subset_theta(benchmark):
    """Strictness: an admissible ABC execution with a zero-delay message
    is not Theta-admissible for any Theta."""
    from repro.sim import (
        FixedDelay,
        Network,
        PerLinkDelay,
        SimulationLimits,
        Simulator,
        Topology,
        ZeroDelay,
    )
    from repro.sim.process import Process, StepContext

    class OneShot(Process):
        def on_wakeup(self, ctx: StepContext) -> None:
            if ctx.pid == 0:
                ctx.send(1, "a")
                ctx.send(1, "b")

    def run():
        delays = PerLinkDelay({(0, 1): ZeroDelay()}, FixedDelay(1.0))
        net = Network(Topology.fully_connected(2), delays)
        sim = Simulator([OneShot(), OneShot()], net, seed=0)
        trace = sim.run(SimulationLimits(max_events=10))
        return abc_strictly_weaker_witness(trace)

    is_witness, report = benchmark(run)
    assert is_witness
    benchmark.extra_info["zero_delay_messages"] = report.has_zero_delay


def test_theorem9_retiming(benchmark):
    """Theorem 7/9: an ABC execution graph can be assigned delays that a
    Theta-Model scheduler could have produced (Theta = Xi works since the
    assigned ratio is strictly below Xi)."""
    trace = theta_band_trace(n=4, f=1, theta=1.5, max_tick=5, seed=6)
    graph = build_execution_graph(trace)

    def retime():
        return verify_theorem7_on_graph(graph, Fraction(2))

    exists, ratio = benchmark(retime)
    assert exists and ratio < Fraction(2)
    benchmark.extra_info["effective_theta"] = str(ratio)

"""T9 -- Section 6: the weaker ABC variants.

Paper claims: (i) <>ABC admissibility holds beyond a stabilization cut;
(ii) eventual lock-step is achievable by doubling round durations;
(iii) an adaptive algorithm can learn Xi in the ?ABC model; (iv) the
condition can be restricted to cycles with few forward messages
(Algorithm 1 "will work correctly even in an ABC model where only cycles
with at most 2 forward messages are considered").  Measured: all four.
"""

from fractions import Fraction
from typing import Any, Mapping

import pytest

from repro.algorithms import AdaptiveXiMonitor, DoublingLockstepProcess
from repro.algorithms.failure_detector import PongResponder
from repro.analysis import first_lockstep_round
from repro.core import (
    check_abc_forward_bounded,
    check_eventual_abc,
    earliest_stabilization_cut,
)
from repro.scenarios import fig3_graph
from repro.sim import (
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
    UniformDelay,
)


def test_eventual_abc_stabilization(benchmark):
    graph, _ = fig3_graph(2)

    def stabilize():
        cut = earliest_stabilization_cut(graph, 2)
        return cut, check_eventual_abc(graph, 2, cut)

    cut, result = benchmark(stabilize)
    assert result.admissible
    benchmark.extra_info["cut_size"] = len(cut)


class _Echo:
    def __init__(self, pid: int) -> None:
        self.pid = pid

    def initial_message(self) -> Any:
        return (self.pid, 0)

    def on_round(self, r: int, received: Mapping[int, Any]) -> Any:
        return (self.pid, r)


@pytest.mark.parametrize("theta", [2.0, 4.0, 8.0])
def test_doubling_rounds_reach_lockstep(benchmark, theta):
    def run():
        procs = [
            DoublingLockstepProcess(1, 1, _Echo(i), max_rounds=6)
            for i in range(4)
        ]
        net = Network(Topology.fully_connected(4), ThetaBandDelay(1.0, theta))
        sim = Simulator(procs, net, seed=int(theta))
        trace = sim.run(SimulationLimits(max_events=500_000))
        return first_lockstep_round(trace, procs)

    r0 = benchmark(run)
    assert r0 is not None
    benchmark.extra_info["theta"] = theta
    benchmark.extra_info["first_lockstep_round"] = r0


def test_adaptive_xi_learning(benchmark):
    def run():
        monitor = AdaptiveXiMonitor(
            targets=[1, 2], initial_xi_hat=Fraction(3, 2), max_probes=12
        )
        delays = PerLinkDelay(
            {
                (0, 2): UniformDelay(8.0, 8.8),
                (2, 0): UniformDelay(8.0, 8.8),
            },
            default=UniformDelay(1.0, 1.2),
        )
        net = Network(Topology.fully_connected(3), delays)
        procs = [monitor, PongResponder(), PongResponder()]
        Simulator(procs, net, seed=0).run(SimulationLimits(max_events=30_000))
        return monitor

    monitor = benchmark(run)
    assert monitor.suspected == set()       # slow peer rehabilitated
    assert monitor.xi_hat > Fraction(3, 2)  # estimate learned upwards
    benchmark.extra_info["final_xi_hat"] = str(monitor.xi_hat)
    benchmark.extra_info["revisions"] = len(monitor.revisions)


def test_forward_bounded_variant(benchmark):
    graph, _ = fig3_graph(2)

    def check():
        return (
            check_abc_forward_bounded(graph, 2, max_forward=2),
            check_abc_forward_bounded(graph, 2, max_forward=1),
        )

    two, one = benchmark(check)
    assert not two  # the Figure-3 violation has 2 forward messages
    assert one      # exempting it makes the graph admissible
    benchmark.extra_info["violation_visible_at_bound"] = 2

"""F2 -- Figure 2: the combined cycle X (+) Y cancels the shared edge e.

Paper claim: a message can be forward in one relevant cycle and backward
in another; adding the cycle vectors cancels it, and the mixed-free
decomposition (Theorem 11) rewrites the sum without cancellations.
"""

from repro.core import (
    CycleVector,
    combine,
    consistency,
    mixed_free_decomposition,
    relevant_cycles,
    vector_of,
    walk_vector,
)
from repro.scenarios import fig2_graph


def _xy():
    graph, e = fig2_graph()
    infos = [i for i in relevant_cycles(graph) if vector_of(i)[e] != 0]
    x = next(i for i in infos if vector_of(i)[e] == -1)
    y = next(i for i in infos if vector_of(i)[e] == 1)
    return graph, e, x, y


def test_fig2_shared_edge_cancellation(benchmark):
    graph, e, x, y = _xy()
    assert consistency(x, y) == "o"

    def combined():
        return combine([x, y])

    vec = benchmark(combined)
    assert vec[e] == 0
    benchmark.extra_info["x_ratio"] = str(x.ratio)
    benchmark.extra_info["y_ratio"] = str(y.ratio)


def test_fig2_mixed_free_decomposition(benchmark):
    _graph, e, x, y = _xy()

    def decompose():
        return mixed_free_decomposition([x, y])

    pieces = benchmark(decompose)
    total = sum((walk_vector(p) for p in pieces), CycleVector({}))
    assert total == combine([x, y])
    assert all(all(s.edge != e for s in p.steps) for p in pieces)
    benchmark.extra_info["n_pieces"] = len(pieces)

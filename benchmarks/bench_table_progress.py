"""T1 / T4 -- Theorem 1 (progress) and Theorem 4 (bounded progress).

Paper claims: every correct clock grows without bound, and whenever a
correct process performs rho = 4 Xi + 1 distinguished events in a cut
interval, every correct process performs at least one there.  Measured:
both properties over (n, f) sweeps with crash and Byzantine faults.
"""

from fractions import Fraction

import pytest

from repro.algorithms import ByzantineTickSpammer, ClockSyncProcess
from repro.analysis import (
    ClockAnalysis,
    verify_bounded_progress,
    verify_progress,
)
from repro.scenarios.generators import clock_sync_run
from repro.sim.faults import CrashAfter

XI = Fraction(2)


def faulty_for(kind: str):
    if kind == "crash":
        return [CrashAfter(ClockSyncProcess(1, max_tick=12), steps=4)]
    if kind == "byzantine":
        return [ByzantineTickSpammer(spread=14, burst=2, seed=3)]
    return []


@pytest.mark.parametrize("kind", ["none", "crash", "byzantine"])
def test_theorem1_progress(benchmark, kind):
    trace, procs = clock_sync_run(
        n=4, f=1, theta=1.5, max_tick=12, seed=2, faulty_procs=faulty_for(kind)
    )
    analysis = ClockAnalysis.from_run(trace, procs)

    def check():
        return verify_progress(analysis, target=12)

    assert benchmark(check)
    benchmark.extra_info["fault"] = kind
    benchmark.extra_info["final_clocks"] = str(analysis.final_clocks())


@pytest.mark.parametrize("kind", ["none", "crash", "byzantine"])
def test_theorem4_bounded_progress(benchmark, kind):
    trace, procs = clock_sync_run(
        n=4, f=1, theta=1.5, max_tick=14, seed=3, faulty_procs=faulty_for(kind)
    )
    analysis = ClockAnalysis.from_run(trace, procs)
    distinguished = {
        pid: procs[pid].distinguished_steps for pid in analysis.correct
    }

    def check():
        return verify_bounded_progress(analysis, XI, distinguished)

    report = benchmark(check)
    assert report.holds
    benchmark.extra_info["fault"] = kind
    benchmark.extra_info["rho"] = report.rho
    benchmark.extra_info["windows_checked"] = report.n_windows

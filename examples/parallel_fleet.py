"""Parallel fleet monitoring: the same fleet, on worker processes.

Runs one concurrent workload twice -- through the serial
:class:`~repro.analysis.fleet.MonitorFleet` and through a
:class:`~repro.runtime.ParallelFleet` whose shards live on worker
processes -- and demonstrates the runtime's contract end to end:

* per-trace worst ratios and the violating set are **bit-identical**
  between the two front ends (exact rationals over the wire);
* the global event budget is apportioned across workers and rebalanced
  by demand, with the epoch watermark respecting the budget;
* wall-clock throughput scales with workers when cores are available
  (on a single-core machine the demo still runs -- the contract is
  correctness there, speed on real hardware).

Run:  python examples/parallel_fleet.py
"""

import os
import random
import time
from fractions import Fraction

from repro.analysis import MonitorFleet
from repro.runtime import ParallelFleet
from repro.scenarios.generators import concurrent_workload


def main() -> None:
    xi = Fraction(4)
    budget = 3000
    rng = random.Random(2026)
    stream = list(
        concurrent_workload(rng, n_traces=80, records_per_trace=(40, 120))
    )
    trace_ids = sorted({tid for tid, _record in stream})
    print(
        f"workload: {len(stream)} records across {len(trace_ids)} "
        f"concurrent traces"
    )

    start = time.perf_counter()
    serial = MonitorFleet(
        xi=xi, n_shards=8, batch_size=32, event_budget=budget
    )
    serial.ingest_many(stream)
    serial.flush()
    serial_s = time.perf_counter() - start
    print(f"serial fleet : {serial_s * 1e3:7.1f} ms on 1 thread")

    start = time.perf_counter()
    with ParallelFleet(
        xi=xi,
        n_workers=2,
        n_shards=8,
        batch_size=32,
        event_budget=budget,
        backend="process",
        on_violation=lambda tid, witness: None,  # fired at barriers
    ) as parallel:
        parallel.ingest_many(stream)
        parallel.flush()
        parallel_s = time.perf_counter() - start
        print(
            f"parallel fleet: {parallel_s * 1e3:7.1f} ms on 2 worker "
            f"processes ({os.cpu_count()} cpus here)"
        )

        mismatches = sum(
            1
            for tid in trace_ids
            if parallel.worst_ratio(tid) != serial.worst_ratio(tid)
        )
        report = parallel.report()
        serial_report = serial.report()
        print(
            f"\nbit-identity: {len(trace_ids) - mismatches}/{len(trace_ids)}"
            f" per-trace ratios equal ({mismatches} mismatches)"
        )
        print(
            "violating sets equal:",
            set(report.violating_traces)
            == set(serial_report.violating_traces),
            f"({len(report.violating_traces)} violating traces)",
        )
        print(
            f"budget: global {budget}, parallel epoch watermark "
            f"{report.peak_live_events}, overruns {report.budget_overruns}"
        )
        print(
            f"workers: shards per worker "
            f"{[len(parallel.shards_of_worker(w)) for w in range(2)]}, "
            f"final budget shares {dict(parallel._shares)}"
        )
        print(
            f"work: {report.records} records, {report.oracle_calls} oracle "
            f"calls across {len(report.shards)} shards "
            f"(serial paid {serial_report.oracle_calls})"
        )


if __name__ == "__main__":
    main()

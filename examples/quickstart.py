"""Quickstart: Byzantine clock synchronization in the ABC model.

Runs Algorithm 1 with n = 4 processes (f = 1) over a Theta-band network,
recovers the execution graph, and checks the paper's guarantees:

* the execution is ABC-admissible for Xi = 2 (Theorem 6),
* clocks stay within 2 Xi of each other at all real times (Theorem 3),
* every correct clock makes progress (Theorem 1).

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.algorithms import ClockSyncProcess
from repro.analysis import (
    ClockAnalysis,
    verify_progress,
    verify_realtime_precision,
)
from repro.core import check_abc, worst_relevant_ratio
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
    build_execution_graph,
)


def main() -> None:
    n, f = 4, 1
    xi = Fraction(2)
    theta = 1.5  # delay band ratio; Theorem 6 needs theta < Xi

    processes = [ClockSyncProcess(f, max_tick=20) for _ in range(n)]
    network = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, theta))
    simulator = Simulator(processes, network, seed=42)
    trace = simulator.run(SimulationLimits(max_events=20_000))

    print(f"simulated {len(trace.records)} receive events")
    print(f"final clocks: {[p.k for p in processes]}")

    graph = build_execution_graph(trace)
    result = check_abc(graph, xi)
    print(f"ABC-admissible for Xi = {xi}? {result.admissible}")
    print(f"worst relevant-cycle ratio: {worst_relevant_ratio(graph)}")

    analysis = ClockAnalysis.from_run(trace, processes)
    precision = verify_realtime_precision(analysis, xi)
    print(
        f"Theorem 3: worst clock spread {precision.worst_spread} "
        f"<= 2 Xi = {precision.bound}: {precision.holds}"
    )
    print(f"Theorem 1: clocks reached tick 20: {verify_progress(analysis, 20)}")


if __name__ == "__main__":
    main()

"""Time-free failure detection by timing out message chains (Figure 3).

A monitor ping-pongs with its peers; once some peer completes ceil(Xi)
round trips since a probe was issued, any still-silent peer can be
suspected -- its late reply would close a relevant cycle with ratio
>= Xi, which the ABC condition forbids.  The detector is *perfect* in
admissible executions: no false suspicions, and every crashed process is
caught.

The script also runs the adaptive ?ABC variant: a monitor that does not
know Xi, starts with a too-small estimate, wrongly suspects a slow (but
correct) peer, learns from the late reply, and converges.

Run:  python examples/failure_detection.py
"""

from fractions import Fraction

from repro.algorithms import AdaptiveXiMonitor, PingPongMonitor, PongResponder
from repro.sim import (
    Network,
    PerLinkDelay,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
    UniformDelay,
)
from repro.sim.faults import CrashAfter


def known_xi_demo() -> None:
    n, xi = 4, Fraction(2)
    monitor = PingPongMonitor(targets=[1, 2, 3], xi=xi, max_probes=6)
    procs: list = [monitor, PongResponder(), PongResponder(), PongResponder()]
    procs[2] = CrashAfter(PongResponder(), steps=0)  # crash-on-start
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    Simulator(procs, net, faulty={2}, seed=1).run(
        SimulationLimits(max_events=20_000)
    )
    print(f"[known Xi = {xi}] suspected: {sorted(monitor.suspected)} "
          f"(ground truth: [2])")


def unknown_xi_demo() -> None:
    monitor = AdaptiveXiMonitor(
        targets=[1, 2], initial_xi_hat=Fraction(3, 2), max_probes=12
    )
    # Peer 2 is correct but its links are 8x slower than the band the
    # initial estimate expects.
    delays = PerLinkDelay(
        {
            (0, 2): UniformDelay(8.0, 8.8),
            (2, 0): UniformDelay(8.0, 8.8),
        },
        default=UniformDelay(1.0, 1.2),
    )
    net = Network(Topology.fully_connected(3), delays)
    procs = [monitor, PongResponder(), PongResponder()]
    Simulator(procs, net, seed=0).run(SimulationLimits(max_events=30_000))
    print(f"[unknown Xi] final estimate Xihat = {monitor.xi_hat}")
    for old, observed, new in monitor.revisions:
        print(f"  revision: {old} -> {new} (observed chain ratio {observed})")
    print(f"[unknown Xi] final suspicions: {sorted(monitor.suspected)} "
          f"(peer 2 was slow but correct -> rehabilitated)")


def main() -> None:
    known_xi_demo()
    unknown_xi_demo()


if __name__ == "__main__":
    main()

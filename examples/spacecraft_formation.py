"""Spacecraft formation with continuously growing inter-cluster delays.

Sections 5.1-5.3 motivate the ABC model with a formation of spacecraft
clusters that drift apart: inter-cluster delays grow without bound, which
no bounded-delay model (and not even the FAR model's finite averages) can
express -- yet delay *ratios* along relevant cycles stay flat, so the ABC
condition keeps holding and single-source FIFO order (Figure 10) is
preserved for free.

This script simulates two clusters whose link delays grow by 30% per time
unit and reports what each model family sees.

Run:  python examples/spacecraft_formation.py
"""

from fractions import Fraction

from repro.algorithms import ClockSyncProcess
from repro.core import check_abc, worst_relevant_ratio
from repro.models import (
    measure_far,
    measure_theta_static,
)
from repro.sim import (
    ClusterDelay,
    GrowingDelay,
    Network,
    SimulationLimits,
    Simulator,
    Topology,
    UniformDelay,
    build_execution_graph,
)


def run_formation(max_tick: int, rate: float, seed: int = 3):
    n, f = 6, 1
    cluster_of = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
    # Intra-cluster: a tight band.  Inter-cluster: the same band scaled by
    # an unbounded growth factor -- the formation drifts apart.
    delays = ClusterDelay(
        cluster_of,
        intra=UniformDelay(1.0, 1.3),
        inter=GrowingDelay(UniformDelay(1.0, 1.3), rate=rate),
    )
    procs = [ClockSyncProcess(f, max_tick=max_tick) for _ in range(n)]
    net = Network(Topology.fully_connected(n), delays)
    trace = Simulator(procs, net, seed=seed).run(
        SimulationLimits(max_events=50_000)
    )
    return trace, procs


def main() -> None:
    rate = 0.3
    print(f"two 3-spacecraft clusters, inter-cluster delays growing "
          f"{rate:.0%} per time unit\n")

    # The drift makes every delay-based model's parameter diverge with
    # the horizon, while the ABC worst ratio saturates: only the message
    # *pattern* (how many fast hops a slow hop spans) matters.
    print(f"{'horizon':>8} {'theta (tau+/tau-)':>18} {'FAR avg delay':>14} "
          f"{'ABC worst ratio':>16}")
    worst_ratios = []
    for max_tick in (6, 10, 14, 18):
        trace, _procs = run_formation(max_tick, rate)
        theta = measure_theta_static(trace)
        far = measure_far(trace)
        graph = build_execution_graph(trace)
        worst = worst_relevant_ratio(graph)
        worst_ratios.append(worst)
        print(f"{max_tick:>8} {theta.ratio:>18.1f} {far.final_average:>14.2f} "
              f"{str(worst):>16}")

    xi = max(worst_ratios) + 1
    trace, procs = run_formation(18, rate)
    graph = build_execution_graph(trace)
    print(
        f"\nABC model: choosing Xi = {xi} (one above the pattern's "
        f"saturated ratio) keeps every horizon admissible: "
        f"{check_abc(graph, xi).admissible}"
    )
    print("Theta and FAR have no such fixed parameter: their measured "
          "values keep growing with the drift.")

    # Figure 10's payoff: FIFO order on every link, despite unbounded and
    # growing delays, because a reordering would close a relevant cycle.
    n = 6
    reorderings = 0
    for src in range(n):
        for dst in range(n):
            records = trace.messages_between(src, dst)
            send_times = [r.send_time for r in records]
            if send_times != sorted(send_times):
                reorderings += 1
    print(f"links with observed FIFO violations: {reorderings}")


if __name__ == "__main__":
    main()

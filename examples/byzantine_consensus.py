"""Byzantine consensus over simulated lock-step rounds.

The paper's headline application: Algorithm 2 turns an ABC execution into
lock-step rounds, on which any synchronous consensus algorithm runs
unchanged.  Here phase-king consensus (n = 5, f = 1) decides despite a
Byzantine participant that lies at the round level, and the decision
matches the native synchronous executor.

Run:  python examples/byzantine_consensus.py
"""

from fractions import Fraction

from repro.algorithms import (
    ConflictingLiar,
    LockstepProcess,
    PhaseKing,
    phase_king_rounds,
    round_phases_for,
    run_synchronous,
)
from repro.analysis import verify_lockstep
from repro.sim import (
    Network,
    SimulationLimits,
    Simulator,
    ThetaBandDelay,
    Topology,
)


def main() -> None:
    n, f = 5, 1
    xi = Fraction(2)
    initials = [1, 0, 1, 0, 1]
    liar_pid = 2

    phases = round_phases_for(xi)
    rounds = phase_king_rounds(f) + 1
    print(f"round length: {phases} clock phases (= ceil(2 Xi))")

    apps, procs = [], []
    for pid in range(n):
        app = ConflictingLiar() if pid == liar_pid else PhaseKing(
            pid, n, f, initials[pid]
        )
        apps.append(app)
        procs.append(LockstepProcess(f, phases, app, max_rounds=rounds))

    network = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    sim = Simulator(procs, network, faulty={liar_pid}, seed=7)
    trace = sim.run(SimulationLimits(max_events=200_000))

    holds, checked = verify_lockstep(trace, procs)
    print(f"Theorem 5 (lock-step rounds) held over {checked} entries: {holds}")

    decisions = {
        pid: apps[pid].decision for pid in range(n) if pid != liar_pid
    }
    print(f"correct initial values: "
          f"{[initials[p] for p in range(n) if p != liar_pid]}")
    print(f"decisions over the ABC simulation: {decisions}")
    assert len(set(decisions.values())) == 1, "agreement violated!"

    # Baseline: the same algorithm on a native synchronous executor.
    sync_apps = [
        ConflictingLiar() if pid == liar_pid else PhaseKing(
            pid, n, f, initials[pid]
        )
        for pid in range(n)
    ]
    run_synchronous(sync_apps, phase_king_rounds(f))
    sync_decisions = {
        pid: sync_apps[pid].decision for pid in range(n) if pid != liar_pid
    }
    print(f"decisions on the synchronous baseline: {sync_decisions}")


if __name__ == "__main__":
    main()

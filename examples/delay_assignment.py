"""Theorem 7 in action: assigning Theta-Model delays to an ABC execution.

Takes the Figure-3 execution graph (worst relevant ratio 2), picks
Xi = 5/2, and constructs a *normalized assignment*: rational message
delays strictly inside (1, Xi) whose induced event times preserve the
causal order exactly.  The assigned delays satisfy the Theta-Model's
condition (3) for every Theta > Xi -- the engine behind the paper's
model-indistinguishability result (Theorem 9): Theta-algorithms cannot
tell the ABC execution apart from a Theta-Model one.

Also builds the explicit Farkas system of Figure 6 and shows it is
solvable exactly when the graph is admissible.

Run:  python examples/delay_assignment.py
"""

from fractions import Fraction

from repro.core import (
    build_farkas_system,
    check_abc,
    normalized_assignment,
    solve_farkas_lp,
    verify_normalized,
    worst_relevant_ratio,
)
from repro.scenarios import fig3_graph


def main() -> None:
    graph, _ratio = fig3_graph(2)
    print(f"graph: {graph}")
    print(f"worst relevant-cycle ratio: {worst_relevant_ratio(graph)}")

    for xi in (Fraction(2), Fraction(5, 2)):
        admissible = check_abc(graph, xi).admissible
        assignment = normalized_assignment(graph, xi)
        print(f"\nXi = {xi}: admissible = {admissible}, "
              f"assignment exists = {assignment is not None}")
        if assignment is None:
            continue
        assert verify_normalized(graph, assignment, check_cycle_sums=True)
        print(f"  certified margin eps = {assignment.epsilon}")
        for m in graph.messages:
            print(f"  tau({m}) = {assignment.delay(m)}")
        print(f"  effective Theta = max/min = "
              f"{assignment.message_delay_ratio(graph)} < {xi}")

        system = build_farkas_system(graph, xi)
        x = solve_farkas_lp(system)
        print(f"  Figure-6 system: {system.matrix.shape[0]} rows x "
              f"{system.matrix.shape[1]} cols "
              f"({system.n_relevant} relevant, "
              f"{system.n_nonrelevant} non-relevant cycle rows); "
              f"LP solvable: {x is not None}")


if __name__ == "__main__":
    main()

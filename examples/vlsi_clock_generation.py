"""DARTS-style fault-tolerant clock generation for a System-on-Chip.

Section 5.3: the ABC model suits VLSI because its synchrony condition
constrains only *cumulative delay ratios along paths*, not individual
wires -- so a design migrated to a faster technology (all paths sped up
similarly) keeps its Xi.  This script models a chip with heterogeneous
per-link wire delays, runs the tick-generation algorithm (the basis of
the DARTS clocks the paper cites), measures the design's intrinsic worst
ratio, and then "migrates" the design by scaling every wire delay down
3x, showing the measured ratio is preserved.

Run:  python examples/vlsi_clock_generation.py
"""

from fractions import Fraction

from repro.algorithms import ClockSyncProcess
from repro.analysis import ClockAnalysis, verify_realtime_precision
from repro.core import worst_relevant_ratio
from repro.sim import (
    Network,
    PerLinkDelay,
    ScaledDelay,
    SimulationLimits,
    Simulator,
    Topology,
    UniformDelay,
    build_execution_graph,
)
from repro.sim.faults import CrashAfter


def wire_delays(n: int, seed: int) -> dict[tuple[int, int], UniformDelay]:
    """Placement-dependent wire delays: farther tiles, longer wires."""
    delays = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                distance = 1.0 + 0.25 * abs(i - j)  # linear tile placement
                delays[(i, j)] = UniformDelay(distance, distance * 1.2)
    return delays


def run_chip(scale: float, seed: int = 0):
    n, f = 4, 1
    base = PerLinkDelay(wire_delays(n, seed), UniformDelay(1.0, 1.2))
    model = ScaledDelay(base, scale) if scale != 1.0 else base
    procs: list = [ClockSyncProcess(f, max_tick=16) for _ in range(n)]
    # One tile suffers a manufacturing fault and dies after a few steps.
    procs[3] = CrashAfter(ClockSyncProcess(f, max_tick=16), steps=5)
    net = Network(Topology.fully_connected(n), model)
    sim = Simulator(procs, net, faulty={3}, seed=seed)
    trace = sim.run(SimulationLimits(max_events=30_000))
    return trace, procs


def main() -> None:
    xi = Fraction(2)
    print("=== original technology node ===")
    trace, procs = run_chip(scale=1.0)
    graph = build_execution_graph(trace)
    worst = worst_relevant_ratio(graph)
    print(f"measured worst relevant-cycle ratio: {worst}")
    print(f"design margin for Xi = {xi}: {'OK' if worst < xi else 'VIOLATED'}")
    analysis = ClockAnalysis.from_run(trace, procs)
    precision = verify_realtime_precision(analysis, xi)
    print(f"clock precision {precision.worst_spread} <= {precision.bound}: "
          f"{precision.holds} (despite the dead tile)")

    print("=== migrated to a 3x faster node (all wires scaled) ===")
    trace2, _procs2 = run_chip(scale=1.0 / 3.0)
    graph2 = build_execution_graph(trace2)
    worst2 = worst_relevant_ratio(graph2)
    print(f"measured worst relevant-cycle ratio: {worst2}")
    print(
        "ratio preserved under uniform speed-up -> the same Xi (and the "
        "same algorithm, unchanged) works on the faster chip"
    )


if __name__ == "__main__":
    main()

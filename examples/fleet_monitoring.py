"""Fleet monitoring: 60 concurrent executions behind one ingestion API.

Interleaves ping-pong storms, clustered bursts, and long-silence idlers
into one arrival-ordered stream, ingests it through a sharded, batched
:class:`~repro.analysis.fleet.MonitorFleet` with a live-event budget,
and prints the fleet-level view a production deployment watches:

* violations against the deployment Xi, as they are detected,
* the top-risk watchlist (traces closest to exhausting their headroom),
* the population histogram of worst relevant-cycle ratios,
* oracle and memory counters showing what batching and eviction saved.

Run:  python examples/fleet_monitoring.py
"""

import random
from fractions import Fraction

from repro.analysis import MonitorFleet
from repro.scenarios.generators import concurrent_workload


def main() -> None:
    xi = Fraction(5)
    rng = random.Random(2026)
    stream = list(
        concurrent_workload(rng, n_traces=60, records_per_trace=(40, 120))
    )
    print(f"workload: {len(stream)} records across 60 concurrent traces")

    fleet = MonitorFleet(
        xi=xi,
        n_shards=8,
        batch_size=32,
        event_budget=2000,
        on_violation=lambda tid, witness: print(
            f"  violation: {tid} closed a relevant cycle of ratio "
            f"{witness.ratio} >= Xi = {xi}"
        ),
    )
    fleet.ingest_many(stream)

    print("\ntop-5 riskiest traces (worst relevant-cycle ratio):")
    for trace_id, ratio in fleet.top_k_riskiest(5):
        headroom = "violating" if ratio is not None and ratio >= xi else "ok"
        print(f"  {trace_id:12s} ratio={str(ratio):6s} [{headroom}]")

    print("\nworst-ratio histogram (traces per exact ratio):")
    histogram = fleet.worst_ratio_histogram()
    for ratio in sorted(
        histogram, key=lambda r: r if r is not None else Fraction(0)
    ):
        label = "no cycle" if ratio is None else str(ratio)
        print(f"  {label:>8s}  {'#' * histogram[ratio]}")

    report = fleet.report()
    print(
        f"\nwork: {report.records} records absorbed in {report.flushes} "
        f"flushes, {report.oracle_calls} oracle calls "
        f"(a naive per-record loop pays one call per message record)"
    )
    print(
        f"memory: {report.live_events} live events at rest, peak "
        f"{report.peak_live_events} (budget {report.event_budget}, "
        f"{report.budget_overruns} overruns from unsettleable storms), "
        f"{report.tombstoned_events} events evicted"
    )
    print(f"violating traces: {', '.join(map(str, report.violating_traces))}")


if __name__ == "__main__":
    main()

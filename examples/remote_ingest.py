"""Remote ingestion: producers over sockets, sharded fronts, delta push.

Stands up an :class:`~repro.runtime.net.IngestServer` with two
ingestion fronts on a loopback TCP port, streams one concurrent
workload into it from three :class:`~repro.runtime.net.ProducerClient`
threads (each owning a disjoint set of traces -- the single-writer-
per-trace discipline determinism rests on), and tails the delta feed
with a :class:`~repro.runtime.net.DeltaSubscriber`:

* every per-trace worst ratio answered by the server is
  **bit-identical** to the serial :class:`~repro.analysis.fleet.
  MonitorFleet` over the same records -- fronts partition the shard
  and tick spaces, they never change answers;
* one producer's connection is killed mid-stream; its client
  reconnects, resumes at the server's acked frame, and not a record is
  lost or duplicated;
* the subscriber reconstructs the final histogram, watchlist and
  violation feed from the incremental delta stream alone -- no
  pull-side barrier, no full scan.

Run:  python examples/remote_ingest.py
"""

import random
import socket
import threading
from fractions import Fraction

from repro.analysis import MonitorFleet
from repro.runtime.net import DeltaSubscriber, IngestServer, ProducerClient
from repro.scenarios.generators import concurrent_workload


def main() -> None:
    xi = Fraction(4)
    stream = list(
        concurrent_workload(
            random.Random(2026), n_traces=60, records_per_trace=(40, 90)
        )
    )
    trace_ids = sorted({tid for tid, _record in stream}, key=str)
    owner = {tid: i % 3 for i, tid in enumerate(trace_ids)}
    print(
        f"workload: {len(stream)} records across {len(trace_ids)} traces,"
        f" 3 producers"
    )

    serial = MonitorFleet(xi=xi, n_shards=8, batch_size=32)
    serial.ingest_many(stream)
    serial.flush()

    with IngestServer(
        xi, n_fronts=2, n_shards=8, batch_size=32, backend="thread"
    ) as server:
        host, port = server.address
        print(f"server: {host}:{port}, {server.n_fronts} fronts over "
              f"{server.n_shards} shards")
        subscriber = DeltaSubscriber(server.address, name="dashboard")

        def produce(index: int) -> None:
            with ProducerClient(
                server.address, producer_id=f"sensor-{index}", batch=32
            ) as client:
                for position, (tid, rec) in enumerate(stream):
                    if owner[tid] != index:
                        continue
                    client.send(tid, rec)
                    if index == 0 and position == len(stream) // 2:
                        # Yank producer 0's connection mid-stream: the
                        # client reconnects and resumes exactly once.
                        client._fs.sock.shutdown(socket.SHUT_RDWR)

        threads = [
            threading.Thread(target=produce, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server.flush()

        mismatches = sum(
            1
            for tid in trace_ids
            if server.worst_ratio(tid) != serial.worst_ratio(tid)
        )
        print(
            f"\nbit-identity: {len(trace_ids) - mismatches}/"
            f"{len(trace_ids)} per-trace ratios equal across the wire"
        )
        print(
            f"exactly-once: server absorbed {server.ingested_records} "
            f"records of {len(stream)} sent (one connection killed)"
        )
        histogram = server.worst_ratio_histogram()
        watchlist = server.top_k_riskiest(3)
        violating = server.violating_traces()

    # The server is gone; the dashboard still has everything, built
    # from the delta stream alone.
    view = subscriber.run_to_end()
    subscriber.close()
    print(
        "delta view: histogram equal:",
        view.worst_ratio_histogram() == histogram,
        "| watchlist equal:",
        view.top_k_riskiest(3) == watchlist,
        "| violating equal:",
        view.violating_traces() == violating,
    )
    print(
        f"watchlist: "
        f"{[(tid, str(r)) for tid, r in watchlist]}"
    )
    print(f"violating traces ({len(violating)}): {list(violating)[:6]} ...")


if __name__ == "__main__":
    main()

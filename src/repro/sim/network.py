"""Network topology and delivery (point-to-point, not necessarily fully
connected -- Section 2 of the paper).

The paper assumes a point-to-point network with finite but unbounded
message delays, no FIFO guarantee and no authentication, but receivers
know the sender of each message.  :class:`Network` pairs a
:class:`Topology` with a :class:`~repro.sim.delays.DelayModel`; delivery
order is purely a consequence of sampled delays (ties broken by send
order), so out-of-order delivery arises naturally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.delays import DelayModel, FixedDelay

__all__ = ["Topology", "Network"]


@dataclass(frozen=True)
class Topology:
    """A directed communication graph over processes ``0 .. n-1``.

    Self-links are always present: the paper's algorithms send messages
    to themselves, which travel through the network like any others.
    """

    n: int
    links: frozenset[tuple[int, int]]

    @staticmethod
    def fully_connected(n: int) -> "Topology":
        links = frozenset(
            (i, j) for i in range(n) for j in range(n) if i != j
        )
        return Topology(n, links)

    @staticmethod
    def ring(n: int, bidirectional: bool = True) -> "Topology":
        links: set[tuple[int, int]] = set()
        for i in range(n):
            links.add((i, (i + 1) % n))
            if bidirectional:
                links.add(((i + 1) % n, i))
        return Topology(n, frozenset(links))

    @staticmethod
    def from_links(n: int, links: Iterable[tuple[int, int]]) -> "Topology":
        return Topology(n, frozenset(links))

    @staticmethod
    def star(n: int, center: int = 0) -> "Topology":
        """Every process connected bidirectionally to ``center`` only."""
        links: set[tuple[int, int]] = set()
        for i in range(n):
            if i != center:
                links.add((center, i))
                links.add((i, center))
        return Topology(n, frozenset(links))

    def has_link(self, src: int, dst: int) -> bool:
        return src == dst or (src, dst) in self.links

    def neighbors(self, pid: int) -> tuple[int, ...]:
        return tuple(sorted(dst for (src, dst) in self.links if src == pid))

    def __post_init__(self) -> None:
        for src, dst in self.links:
            if not (0 <= src < self.n and 0 <= dst < self.n):
                raise ValueError(f"link ({src}, {dst}) out of range for n={self.n}")


@dataclass
class Network:
    """Topology plus delay model; asked by the simulator per message."""

    topology: Topology
    delay_model: DelayModel = field(default_factory=lambda: FixedDelay(1.0))

    def delay(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        if not self.topology.has_link(src, dst):
            raise ValueError(f"no link from {src} to {dst}")
        value = self.delay_model.sample(src, dst, time, rng)
        if value < 0:
            raise ValueError(
                f"delay model produced a negative delay {value} on "
                f"({src}, {dst})"
            )
        return value

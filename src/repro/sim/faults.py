"""Fault injection: crash and Byzantine process behaviours.

Among the ``n`` processes at most ``f`` may be Byzantine faulty; a faulty
process may deviate arbitrarily from the algorithm, and in particular is
not assumed to obey any synchrony requirement (footnote 2 of the paper).
A crash is the special case of completing some step and then taking no
further ones.

Crash faults are modelled by :class:`CrashAfter` (a wrapper that stops
*processing* after a trigger; reception continues, since receive events
belong to the network).  Byzantine behaviours are ordinary
:class:`~repro.sim.process.Process` implementations; generic adversaries
live here, algorithm-specific ones (e.g. malicious tick senders for
Algorithm 1) next to their algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.process import Process, StepContext

__all__ = [
    "CrashAfter",
    "SilentProcess",
    "BabblingProcess",
    "MirrorProcess",
    "TwoFacedProcess",
]


class CrashAfter(Process):
    """Runs ``inner`` normally for ``steps`` computing steps, then crashes.

    ``steps`` counts processed steps including the wake-up; ``steps=0``
    is crash-on-start (the process never executes any step, not even its
    wake-up -- "it possibly fails to complete some computing step and does
    not take further steps later on").
    """

    def __init__(self, inner: Process, steps: int) -> None:
        if steps < 0:
            raise ValueError("steps must be >= 0")
        self.inner = inner
        self.steps_remaining = steps

    def attach(self, pid: int, n: int) -> None:
        super().attach(pid, n)
        self.inner.attach(pid, n)

    @property
    def crashed(self) -> bool:
        return self.steps_remaining <= 0

    def on_wakeup(self, ctx: StepContext) -> None:
        if self.crashed:
            return
        self.steps_remaining -= 1
        self.inner.on_wakeup(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if self.crashed:
            return
        self.steps_remaining -= 1
        self.inner.on_message(ctx, payload, sender)


class SilentProcess(Process):
    """Byzantine behaviour: receives everything, never sends anything."""


class BabblingProcess(Process):
    """Byzantine behaviour: floods with arbitrary payloads.

    Sends ``fanout`` messages with payloads drawn from ``payload_factory``
    on every step.  The payload factory receives a private RNG so runs
    stay reproducible.
    """

    def __init__(
        self,
        payload_factory: Callable[[random.Random], Any],
        fanout: int = 1,
        seed: int = 0,
    ) -> None:
        self.payload_factory = payload_factory
        self.fanout = fanout
        self.rng = random.Random(seed)

    def _babble(self, ctx: StepContext) -> None:
        targets = list(ctx.neighbors) or [ctx.pid]
        for _ in range(self.fanout):
            dest = self.rng.choice(targets)
            ctx.send(dest, self.payload_factory(self.rng))

    def on_wakeup(self, ctx: StepContext) -> None:
        self._babble(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self._babble(ctx)


class MirrorProcess(Process):
    """Byzantine behaviour: echoes every received payload back."""

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if sender != ctx.pid:
            ctx.send(sender, payload)


class TwoFacedProcess(Process):
    """Byzantine equivocation: tells different stories to two halves.

    On every step, sends ``payload_a`` to the first half of its neighbors
    and ``payload_b`` to the rest -- the classic adversary against
    agreement protocols.
    """

    def __init__(self, payload_a: Any, payload_b: Any) -> None:
        self.payload_a = payload_a
        self.payload_b = payload_b

    def _equivocate(self, ctx: StepContext) -> None:
        half = len(ctx.neighbors) // 2
        for i, dest in enumerate(ctx.neighbors):
            ctx.send(dest, self.payload_a if i < half else self.payload_b)

    def on_wakeup(self, ctx: StepContext) -> None:
        self._equivocate(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self._equivocate(ctx)

"""An ABC-enforcing simulator: admissibility by construction.

Theta-band delay models give ABC-admissible executions via Theorem 6,
but they cannot produce the executions that make the ABC model strictly
weaker (huge delay spreads, zero delays, long silences).  The
:class:`AbcEnforcingSimulator` takes the model's own view instead:
condition (2) is a property of the *schedule*, so an admissible scheduler
simply never realizes a violating event order.

Before realizing the earliest delivery ``d``, the scheduler asks the
polynomial admissibility oracle whether any pending message ``s`` would
be *stranded* by ``d``:

* delivering ``s`` right after ``d`` would close a relevant cycle of
  ratio ``>= Xi``, or
* delivering ``s`` and then an immediate reply from ``s``'s receiver
  back to its sender would -- the round-trip lookahead that covers
  ping-pong protocols, where the cycle is closed by a reply that does
  not exist yet while the fast chain runs (Figure 3).

Any stranded message is pulled forward and delivered now, which is
exactly the "the sum of the delays along C2 must not become so small
that C1 could span k1 Xi or more messages" reading of Figure 1: the slow
chain arrives before the fast chain outruns it.  Since the check runs
before every delivery, one step of lookahead preserves the invariant
that every pending message (and its immediate reply) remains safely
deliverable.

The oracle plumbing is fully incremental.  The scheduler owns ONE
:class:`~repro.core.synchrony.AdmissibilityChecker` mirroring the
realized trace; each (tentative delivery, pending message) pair is
evaluated by *speculatively* pushing the hypothetical receive events and
message edges onto the live traversal digraph
(:meth:`~repro.core.synchrony.AdmissibilityChecker.speculate`), asking
the oracle at the known ``Xi``, and popping them off again -- no graph or
checker is ever rebuilt.  Two further refinements keep each step cheap:

* **Source-seeded detection.**  The realized prefix is violation-free by
  construction, so any violating cycle must pass through a speculatively
  added receive event; the negative-cycle search is seeded from exactly
  those events instead of the whole digraph.
* **Prefix compaction.**  Every ``tombstone_every`` deliveries the
  scheduler compacts the settled past, keyed on delivery progress
  alone: everything below the send events of still-queued messages and
  each process's frontier
  (:meth:`~repro.core.synchrony.AdmissibilityChecker.summarizable_prefix`)
  is replaced by boundary summary edges
  (:meth:`~repro.core.synchrony.AdmissibilityChecker.compact_prefix`).
  Unlike the old no-crossing criterion -- which removes nothing when a
  causal chain links history to the frontier, exactly the ping-pong
  shapes this scheduler exists for -- delivery progress always settles,
  so the live digraph, and with it the cost of every oracle call, stays
  bounded by the active window of the execution instead of growing with
  its whole history.  Soundness: the realized prefix is violation-free,
  so every compacted cycle has ratio strictly below ``Xi``; passing the
  Farey predecessor of ``Xi`` as the compaction floor keeps every
  oracle answer at ``Xi`` bit-identical while pruning the summaries to
  the region-bounded minimum.

Should enforcement ever miss a violation (the one-step lookahead is not
a proof for deep multi-hop relay patterns), the scheduler detects it on
the realized record, sets :attr:`AbcEnforcingSimulator.violation_detected`,
and falls back to unseeded full-digraph oracles with tombstoning
disabled, preserving the exact decisions a from-scratch implementation
would make.  Post-hoc validation with :func:`repro.core.check_abc`
remains available for such runs.

The checkpoint/rollback, seeding, and tombstoning contracts this
scheduler relies on are documented in ``docs/architecture.md``; the
*monitoring* (rather than enforcing) deployment of the same machinery
-- including the multi-trace fleet -- lives in
:mod:`repro.analysis.online` and :mod:`repro.analysis.fleet`.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from repro.core.events import Event
from repro.core.synchrony import AdmissibilityChecker, farey_predecessor
from repro.sim.engine import Simulator, _Delivery
from repro.sim.trace import message_kept

__all__ = ["AbcEnforcingSimulator"]


def _rescue_key(delivery: _Delivery) -> tuple[bool, float, int]:
    """Earliest-sent-first ordering of stranded messages.

    ``None`` send times (external wake-ups -- not expected among
    strandable messages, but possible for exotic subclasses) sort last
    instead of aliasing a genuine send time of ``0.0``; ties break by
    send sequence.
    """
    return (
        delivery.send_time is None,
        delivery.send_time if delivery.send_time is not None else 0.0,
        delivery.seq,
    )


class AbcEnforcingSimulator(Simulator):
    """A simulator that refuses to realize inadmissible event orders.

    Args:
        xi: the ABC synchrony parameter to enforce (``> 1``).
        tombstone_every: realized deliveries between settled-prefix
            removals (``None`` disables tombstoning; the digraph then
            grows with the full history).

    Attributes:
        pulled_forward: number of deliveries expedited by the enforcer
            (how often raw delays would have broken admissibility).
        tombstoned_events: events dropped from the live digraph so far.
        violation_detected: ``True`` if a realized delivery ever closed
            a violating cycle despite enforcement (deep relay patterns
            outside the one-step lookahead); the scheduler then keeps
            running with conservative full-digraph oracles.
    """

    def __init__(
        self,
        *args,
        xi: Fraction | int | float,
        tombstone_every: int | None = 64,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.xi = Fraction(xi)
        if self.xi <= 1:
            raise ValueError(f"the ABC model requires Xi > 1, got {self.xi}")
        if tombstone_every is not None and tombstone_every < 1:
            raise ValueError("tombstone_every must be positive (or None)")
        self.pulled_forward = 0
        self.tombstoned_events = 0
        self.violation_detected = False
        self.tombstone_every = tombstone_every
        self._checker = AdmissibilityChecker()
        self._mirrored = 0  # trace records already absorbed by the checker
        self._since_tombstone = 0
        self._cancelled: set[int] = set()  # seqs lazily deleted from _queue

    # -- the incremental oracle ---------------------------------------------

    @property
    def live_digraph_events(self) -> int:
        """Events currently held live in the shared traversal digraph."""
        return self._checker.n_events

    @property
    def summary_edges(self) -> int:
        """Live summary edges standing in for compacted history."""
        return self._checker.n_summary_edges

    def _sync_checker(self) -> None:
        """Absorb realized trace records into the shared checker.

        Each new record appends its receive event (and implied local
        edge) plus the triggering message edge under the same
        faulty-sender filter as :func:`~repro.sim.trace.build_execution_graph`.
        While enforcement has never failed, one source-seeded oracle call
        per record verifies the realized graph stayed violation-free --
        the invariant that licenses seeded detection and tombstoning.
        """
        checker = self._checker
        records = self.trace.records
        for record in records[self._mirrored :]:
            checker.add_event(record.event)
            if message_kept(record, self.faulty):
                assert record.send_event is not None
                checker.add_message(record.send_event, record.event)
                if not self.violation_detected and checker.has_ratio_at_least(
                    self.xi, sources=(record.event,)
                ):
                    self.violation_detected = True
        self._mirrored = len(records)

    def _push_delivery(self, delivery: _Delivery) -> Event:
        """Speculatively realize ``delivery`` on the live digraph."""
        checker = self._checker
        event = Event(delivery.dest, checker.n_events_of(delivery.dest))
        checker.add_event(event)
        if (
            delivery.sender is not None
            and delivery.send_event is not None
            and delivery.sender not in self.faulty
        ):
            checker.add_message(delivery.send_event, event)
        return event

    def _strands(self, first_event: Event, pending: _Delivery) -> bool:
        """Would the tentative delivery strand ``pending`` (or its
        immediate reply)?  Called inside the speculation that already
        pushed the tentative delivery; pushes ``pending`` (and the
        round-trip reply), asks the oracle, and rolls its own additions
        back."""
        checker = self._checker
        sources: list[Event] = [first_event]
        with checker.speculate():
            pending_event = self._push_delivery(pending)
            sources.append(pending_event)
            if checker.has_ratio_at_least(self.xi, sources=self._seeds(sources)):
                return True
            # Round-trip lookahead: an immediate reply back to the sender.
            if pending.sender is not None and pending.sender != pending.dest:
                reply = _Delivery(
                    self.now,
                    -1,
                    pending.sender,
                    pending.dest,
                    pending_event,
                    self.now,
                    None,
                )
                sources.append(self._push_delivery(reply))
                if checker.has_ratio_at_least(
                    self.xi, sources=self._seeds(sources)
                ):
                    return True
        return False

    def _seeds(self, events: list[Event]) -> list[Event] | None:
        """Oracle seeds: the speculative events -- unless enforcement has
        failed, in which case old cycles may violate too and only a full
        sweep is sound."""
        return None if self.violation_detected else events

    def _tombstone_settled(self) -> None:
        """Compact the settled past of the live digraph into summaries.

        The cut is keyed on delivery progress alone: everything below
        the pinned events -- the send events of still-queued messages,
        whose edges are yet to come, plus each process's frontier,
        where upcoming local edges attach -- is summary-compacted, so
        compaction makes progress even when messages cross every
        possible boundary (ping-pong chains, where the old no-crossing
        criterion removed nothing).  Sound because the realized prefix
        is violation-free: every compacted cycle has ratio strictly
        below ``Xi``, so with the Farey predecessor of ``Xi`` as the
        floor, every future oracle answer at ``Xi`` is bit-identical to
        the uncompacted digraph's.  Disabled after a detected violation
        -- the fallback's full-sweep oracles must keep seeing the whole
        realized history.
        """
        if self.violation_detected:
            return
        pinned: list[Event] = []
        for delivery in self._queue:
            if delivery.seq in self._cancelled:
                continue
            if delivery.send_event is not None:
                pinned.append(delivery.send_event)
        cut = self._checker.summarizable_prefix(pinned)
        if cut:
            floor = farey_predecessor(self.xi, self._checker.ratio_bound)
            self.tombstoned_events += self._checker.compact_prefix(
                cut, floor=floor
            )

    # -- the enforcing step -------------------------------------------------

    def _pop_live(self) -> _Delivery | None:
        """Pop the earliest non-cancelled delivery (lazy deletion)."""
        while self._queue:
            delivery = heapq.heappop(self._queue)
            if delivery.seq in self._cancelled:
                self._cancelled.discard(delivery.seq)
                continue
            return delivery
        return None

    def _purge_cancelled_head(self) -> None:
        """Keep the heap head live so the kernel's ``run`` loop (queue
        emptiness, ``max_time``) sees the same frontier an eager-deletion
        queue would."""
        while self._queue and self._queue[0].seq in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._queue).seq)

    @property
    def pending_messages(self) -> int:
        return len(self._queue) - len(self._cancelled)

    def _step(self) -> None:
        # Sync (a no-op unless a caller grew the trace between run()
        # calls) and tombstone while every in-flight message (including
        # the delivery about to be popped) is still in the queue to pin
        # its send event.
        self._sync_checker()
        if self.tombstone_every is not None:
            self._since_tombstone += 1
            if self._since_tombstone >= self.tombstone_every:
                self._since_tombstone = 0
                self._tombstone_settled()
        delivery = self._pop_live()
        if delivery is None:
            return
        stranded: list[_Delivery] = []
        with self._checker.speculate():
            first_event = self._push_delivery(delivery)
            for pending in self._queue:
                if pending.seq in self._cancelled:
                    continue
                if pending.sender is None or pending.sender in self.faulty:
                    continue
                if self._strands(first_event, pending):
                    stranded.append(pending)
        if not stranded:
            self._process_delivery(delivery)
        else:
            # Pull the earliest-sent stranded message forward: it is
            # delivered now (its "real" delay shrinks); the tentative
            # delivery goes back into the queue and is retried next step.
            heapq.heappush(self._queue, delivery)
            rescue = min(stranded, key=_rescue_key)
            self._cancelled.add(rescue.seq)
            self.pulled_forward += 1
            expedited = _Delivery(
                self.now,
                rescue.seq,
                rescue.dest,
                rescue.sender,
                rescue.send_event,
                rescue.send_time,
                rescue.payload,
            )
            self._process_delivery(expedited)
        self._purge_cancelled_head()
        # Absorb and verify the record just realized, so a violation
        # closed by the run's final delivery is detected before the run
        # returns and ``violation_detected`` is read.
        self._sync_checker()

"""An ABC-enforcing simulator: admissibility by construction.

Theta-band delay models give ABC-admissible executions via Theorem 6,
but they cannot produce the executions that make the ABC model strictly
weaker (huge delay spreads, zero delays, long silences).  The
:class:`AbcEnforcingSimulator` takes the model's own view instead:
condition (2) is a property of the *schedule*, so an admissible scheduler
simply never realizes a violating event order.

Before realizing the earliest delivery ``d``, the scheduler asks the
polynomial admissibility oracle whether any pending message ``s`` would
be *stranded* by ``d``:

* delivering ``s`` right after ``d`` would close a relevant cycle of
  ratio ``>= Xi``, or
* delivering ``s`` and then an immediate reply from ``s``'s receiver
  back to its sender would -- the round-trip lookahead that covers
  ping-pong protocols, where the cycle is closed by a reply that does
  not exist yet while the fast chain runs (Figure 3).

Any stranded message is pulled forward and delivered now, which is
exactly the "the sum of the delays along C2 must not become so small
that C1 could span k1 Xi or more messages" reading of Figure 1: the slow
chain arrives before the fast chain outruns it.  Since the check runs
before every delivery, one step of lookahead preserves the invariant
that every pending message (and its immediate reply) remains safely
deliverable.

Deeper multi-hop relay patterns would need deeper lookahead; for those,
admissibility should be validated post-hoc with
:func:`repro.core.check_abc` (the enforcer still greatly extends the
range of delay regimes that stay admissible).
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.synchrony import has_relevant_cycle_with_ratio_at_least
from repro.sim.engine import Simulator, _Delivery
from repro.sim.trace import build_execution_graph

__all__ = ["AbcEnforcingSimulator"]


class AbcEnforcingSimulator(Simulator):
    """A simulator that refuses to realize inadmissible event orders.

    Attributes:
        pulled_forward: number of deliveries expedited by the enforcer
            (how often raw delays would have broken admissibility).
    """

    def __init__(self, *args, xi: Fraction | int | float, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.xi = Fraction(xi)
        if self.xi <= 1:
            raise ValueError(f"the ABC model requires Xi > 1, got {self.xi}")
        self.pulled_forward = 0

    # -- oracle helpers ----------------------------------------------------

    def _base_graph(self) -> tuple[dict[int, list[Event]], list[MessageEdge]]:
        graph = build_execution_graph(self.trace)
        return (
            {p: list(graph.events_of(p)) for p in range(self.n)},
            list(graph.messages),
        )

    def _strands(
        self,
        base: tuple[dict[int, list[Event]], list[MessageEdge]],
        first: _Delivery,
        pending: _Delivery,
    ) -> bool:
        """Would ``first`` strand ``pending`` (or its immediate reply)?"""
        base_events, base_messages = base
        events = {p: list(evs) for p, evs in base_events.items()}
        messages = list(base_messages)
        counts = {p: len(evs) for p, evs in events.items()}

        def add(dest: int, sender: int | None, send_event: Event | None) -> Event:
            new_event = Event(dest, counts[dest])
            counts[dest] += 1
            events[dest] = events[dest] + [new_event]
            if (
                sender is not None
                and send_event is not None
                and sender not in self.faulty
            ):
                messages.append(MessageEdge(send_event, new_event))
            return new_event

        add(first.dest, first.sender, first.send_event)
        pending_event = add(pending.dest, pending.sender, pending.send_event)
        if has_relevant_cycle_with_ratio_at_least(
            ExecutionGraph(events, messages), self.xi
        ):
            return True
        # Round-trip lookahead: an immediate reply back to the sender.
        if pending.sender is not None and pending.sender != pending.dest:
            add(pending.sender, pending.dest, pending_event)
            if has_relevant_cycle_with_ratio_at_least(
                ExecutionGraph(events, messages), self.xi
            ):
                return True
        return False

    # -- the enforcing step -------------------------------------------------

    def _step(self) -> None:
        delivery = heapq.heappop(self._queue)
        base = self._base_graph()
        stranded: list[_Delivery] = []
        for pending in self._queue:
            if pending.sender is None or pending.sender in self.faulty:
                continue
            if self._strands(base, delivery, pending):
                stranded.append(pending)
        if not stranded:
            self._process_delivery(delivery)
            return
        # Pull the earliest-sent stranded message forward: it is
        # delivered now (its "real" delay shrinks); the tentative
        # delivery goes back into the queue and is retried next step.
        heapq.heappush(self._queue, delivery)
        rescue = min(stranded, key=lambda d: (d.send_time or 0.0, d.seq))
        self._queue.remove(rescue)
        heapq.heapify(self._queue)
        self.pulled_forward += 1
        expedited = _Delivery(
            self.now,
            rescue.seq,
            rescue.dest,
            rescue.sender,
            rescue.send_event,
            rescue.send_time,
            rescue.payload,
        )
        self._process_delivery(expedited)

"""Message-driven processes (Section 2 of the paper).

Every process is a state machine whose local execution is a sequence of
atomic, zero-time computing steps, each consisting of the reception of
exactly one message, a state transition, and the sending of zero or more
messages.  Steps are exclusively triggered by incoming messages; an
external *wake-up message* initiates the very first step.

Algorithms subclass :class:`Process` and implement :meth:`on_wakeup` and
:meth:`on_message`.  Handlers interact with the system only through the
:class:`StepContext` (sending messages); in particular the context does
not expose the current time, keeping algorithms honestly time-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

__all__ = ["StepContext", "Process"]


@dataclass
class StepContext:
    """The interface a computing step may use.

    Attributes:
        pid: the process taking the step.
        n: the number of processes in the system.
        neighbors: processes reachable over the network from ``pid``.
    """

    pid: int
    n: int
    neighbors: tuple[int, ...]
    _sends: list[tuple[int, Any]] = field(default_factory=list)

    def send(self, dest: int, payload: Any) -> None:
        """Send ``payload`` to ``dest`` at the end of this step."""
        if dest != self.pid and dest not in self.neighbors:
            raise ValueError(
                f"process {self.pid} has no link to {dest}; "
                f"neighbors are {self.neighbors}"
            )
        self._sends.append((dest, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Send ``payload`` to every neighbor (and, by default, to self).

        Algorithm 1 assumes "a process sends messages also to itself";
        self-delivery is modelled as a regular message over a zero-hop
        link, so it appears in the execution graph like any other message.
        """
        targets = list(self.neighbors)
        if include_self and self.pid not in targets:
            targets.append(self.pid)
        for dest in sorted(targets):
            if dest == self.pid and not include_self:
                continue
            self._sends.append((dest, payload))

    @property
    def sends(self) -> tuple[tuple[int, Any], ...]:
        return tuple(self._sends)


class Process:
    """Base class for message-driven algorithms.

    The simulator calls :meth:`attach` once before the run, then
    :meth:`on_wakeup` for the externally triggered first step and
    :meth:`on_message` for every subsequent message delivery.
    """

    pid: int = -1
    n: int = 0

    def attach(self, pid: int, n: int) -> None:
        """Bind the process to its identity; called by the simulator."""
        self.pid = pid
        self.n = n

    def on_wakeup(self, ctx: StepContext) -> None:
        """The externally triggered initial computing step."""

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        """A computing step triggered by ``payload`` arriving from
        ``sender``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pid={self.pid})"

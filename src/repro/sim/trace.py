"""Recorded executions and their conversion to execution graphs.

A :class:`Trace` is the timed record of one simulated admissible
execution: one :class:`ReceiveRecord` per receive event, in global
delivery order, each carrying the triggering message's origin and the
sends the step performed.

:func:`build_execution_graph` converts a trace into the paper's
space-time digraph (Definition 1).  Per Section 2, every message sent by
a faulty process is dropped.  The receive-event *nodes* of dropped
messages stay in the receiving process's timeline (connected through
local edges) because their computing steps may have sent messages that
remain in the graph; only the message *edge* disappears, so dropped
messages can never participate in (relevant) cycles.  This is the
graph-consistent reading of the paper's "drop every message sent by a
faulty process (along with both its send step and its receive event +
step)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph, MessageEdge

__all__ = [
    "SendRecord",
    "ReceiveRecord",
    "Trace",
    "build_execution_graph",
    "message_kept",
]


@dataclass(frozen=True)
class SendRecord:
    """One message sent during a computing step."""

    dest: ProcessId
    payload: Any
    delay: float
    deliver_time: float


@dataclass(frozen=True)
class ReceiveRecord:
    """One receive event, plus the computing step it triggered (if any).

    Attributes:
        event: the event's identity ``(process, local index)``.
        time: occurrence time on the simulator's virtual clock.
        sender: origin of the triggering message; ``None`` for the
            external wake-up.
        send_event: the sender's step that sent the message (``None`` for
            wake-ups).
        send_time: when the triggering message was sent.
        payload: the message content.
        processed: ``False`` when the receiver was crashed, in which case
            the reception occurred (it is under the network's control)
            but no computing step was executed.
        sends: the messages sent by the triggered step.
    """

    event: Event
    time: float
    sender: ProcessId | None
    send_event: Event | None
    send_time: float | None
    payload: Any
    processed: bool
    sends: tuple[SendRecord, ...]


@dataclass
class Trace:
    """The full record of a simulated execution.

    Per-event and per-process lookups (:meth:`record_of`,
    :meth:`events_of`, :meth:`final_record`) are backed by lazily built
    indexes -- analysis code calls them inside loops, and linear scans of
    ``records`` made those loops quadratic.  The indexes track the record
    list by length plus the identity of the last indexed record: the
    simulator's append-only growth extends them incrementally, while
    truncation -- even when regrown to the old length -- triggers a full
    rebuild on next use.  Replacing *earlier* entries in place without
    touching the tail is not detected; ``records`` is append-only by
    contract everywhere in the library.
    """

    n: int
    faulty: frozenset[ProcessId]
    records: list[ReceiveRecord] = field(default_factory=list)
    _indexed: int = field(default=0, init=False, repr=False, compare=False)
    _last_indexed: ReceiveRecord | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _by_event: dict[Event, ReceiveRecord] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _by_process: dict[ProcessId, list[ReceiveRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def correct(self) -> frozenset[ProcessId]:
        return frozenset(p for p in range(self.n) if p not in self.faulty)

    def _ensure_index(self) -> None:
        size = len(self.records)
        stale = size < self._indexed or (
            self._indexed > 0
            and self.records[self._indexed - 1] is not self._last_indexed
        )
        if stale:
            self._by_event = {}
            self._by_process = {}
            self._indexed = 0
        if size == self._indexed:
            return
        for r in self.records[self._indexed :]:
            self._by_event[r.event] = r
            self._by_process.setdefault(r.event.process, []).append(r)
        self._indexed = size
        self._last_indexed = self.records[size - 1]

    def events_of(self, process: ProcessId) -> list[ReceiveRecord]:
        self._ensure_index()
        return list(self._by_process.get(process, ()))

    def record_of(self, event: Event) -> ReceiveRecord:
        self._ensure_index()
        try:
            return self._by_event[event]
        except KeyError:
            raise KeyError(f"no record for event {event!r}") from None

    def times(self) -> dict[Event, float]:
        """Occurrence time per event (for Mattern real-time cuts)."""
        return {r.event: r.time for r in self.records}

    def payloads(self) -> dict[Event, Any]:
        return {r.event: r.payload for r in self.records}

    def messages_between(
        self, src: ProcessId, dst: ProcessId
    ) -> list[ReceiveRecord]:
        """Receive records at ``dst`` triggered by messages from ``src``."""
        return [
            r
            for r in self.records
            if r.event.process == dst and r.sender == src
        ]

    def delays(self) -> list[tuple[Event, Event, float]]:
        """(send event, receive event, end-to-end delay) per message."""
        out = []
        for r in self.records:
            if r.send_event is not None and r.send_time is not None:
                out.append((r.send_event, r.event, r.time - r.send_time))
        return out

    def final_record(self, process: ProcessId) -> ReceiveRecord | None:
        self._ensure_index()
        events = self._by_process.get(process)
        return events[-1] if events else None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ReceiveRecord]:
        return iter(self.records)


def message_kept(
    record: ReceiveRecord,
    faulty: frozenset[ProcessId],
    drop_faulty: bool = True,
    keep_message: Callable[[ReceiveRecord], bool] | None = None,
) -> bool:
    """Whether ``record``'s triggering message edge enters the graph.

    The single predicate behind :func:`build_execution_graph` and the
    record-consuming :class:`~repro.analysis.online.OnlineAbcMonitor`,
    so the batch and incremental graph semantics cannot drift apart:
    wake-ups have no message, faulty senders are dropped (Section 2)
    unless ``drop_faulty`` is disabled, and ``keep_message`` may exempt
    further messages.
    """
    if record.sender is None or record.send_event is None:
        return False
    if drop_faulty and record.sender in faulty:
        return False
    if keep_message is not None and not keep_message(record):
        return False
    return True


def build_execution_graph(
    trace: Trace,
    drop_faulty: bool = True,
    keep_message: Callable[[ReceiveRecord], bool] | None = None,
) -> ExecutionGraph:
    """The execution graph of a trace (Definition 1).

    Args:
        trace: the recorded execution.
        drop_faulty: drop message edges whose sender is faulty (the
            paper's default treatment; see the module docstring).
        keep_message: optional extra filter on triggering messages --
            Section 2 notes that message dropping can also exempt chosen
            message types from the ABC synchrony condition, and Section 6
            builds weaker variants from restricted execution graphs.
            Receive records for which it returns ``False`` keep their
            event node but lose the message edge.
    """
    events_by_process: dict[ProcessId, list[Event]] = {
        p: [] for p in range(trace.n)
    }
    for record in trace.records:
        events_by_process[record.event.process].append(record.event)
    for p, events in events_by_process.items():
        for i, ev in enumerate(events):
            if ev.index != i:
                raise ValueError(
                    f"trace records for process {p} are not contiguous: "
                    f"expected index {i}, got {ev!r}"
                )
    messages = [
        MessageEdge(record.send_event, record.event)
        for record in trace.records
        if message_kept(record, trace.faulty, drop_faulty, keep_message)
    ]
    return ExecutionGraph(events_by_process, messages)

"""Recorded executions and their conversion to execution graphs.

A :class:`Trace` is the timed record of one simulated admissible
execution: one :class:`ReceiveRecord` per receive event, in global
delivery order, each carrying the triggering message's origin and the
sends the step performed.

:func:`build_execution_graph` converts a trace into the paper's
space-time digraph (Definition 1).  Per Section 2, every message sent by
a faulty process is dropped.  The receive-event *nodes* of dropped
messages stay in the receiving process's timeline (connected through
local edges) because their computing steps may have sent messages that
remain in the graph; only the message *edge* disappears, so dropped
messages can never participate in (relevant) cycles.  This is the
graph-consistent reading of the paper's "drop every message sent by a
faulty process (along with both its send step and its receive event +
step)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph, MessageEdge

__all__ = [
    "RecordColumns",
    "SendRecord",
    "ReceiveRecord",
    "Trace",
    "build_execution_graph",
    "message_kept",
]


@dataclass(frozen=True)
class SendRecord:
    """One message sent during a computing step."""

    dest: ProcessId
    payload: Any
    delay: float
    deliver_time: float


@dataclass(frozen=True)
class ReceiveRecord:
    """One receive event, plus the computing step it triggered (if any).

    Attributes:
        event: the event's identity ``(process, local index)``.
        time: occurrence time on the simulator's virtual clock.
        sender: origin of the triggering message; ``None`` for the
            external wake-up.
        send_event: the sender's step that sent the message (``None`` for
            wake-ups).
        send_time: when the triggering message was sent.
        payload: the message content.
        processed: ``False`` when the receiver was crashed, in which case
            the reception occurred (it is under the network's control)
            but no computing step was executed.
        sends: the messages sent by the triggered step.
    """

    event: Event
    time: float
    sender: ProcessId | None
    send_event: Event | None
    send_time: float | None
    payload: Any
    processed: bool
    sends: tuple[SendRecord, ...]


class RecordColumns:
    """A struct-of-arrays twin of a ``list[ReceiveRecord]``.

    The columnar ingest path (wire frame -> shard buffer -> monitor ->
    checker) carries batches as ten parallel columns instead of record
    objects, so the hot loop never constructs ``ReceiveRecord`` /
    ``Event`` / ``SendRecord`` instances.  Column ``k`` of every
    sequence describes the same receive record:

    * ``processes[k]`` / ``indexes[k]`` -- the event identity.
    * ``times[k]`` -- occurrence time.
    * ``senders[k]`` / ``send_processes[k]`` / ``send_indexes[k]`` /
      ``send_times[k]`` -- the triggering message's origin (all three
      event fields ``None`` for wake-ups, matching the wire encoding).
    * ``payloads[k]`` / ``processed[k]`` -- step content.
    * ``sends[k]`` -- a tuple of *plain* wire rows
      ``(dest, payload, delay, deliver_time)``, **not**
      :class:`SendRecord` objects; the columns hold exactly what the
      wire carries, and :meth:`record_at` rebuilds objects on demand.

    All ten columns must have equal length -- a ragged columnar frame
    (truncated or corrupted in transit) raises ``ValueError`` at
    construction, in the caller, instead of desynchronizing silently.

    Iteration materializes records (so snapshot encoding of a columnar
    pending buffer reuses the object encoder unchanged); the builder
    methods (:meth:`append_record`, :meth:`append_from`) require the
    columns to be lists, which is how fresh instances are created.
    """

    __slots__ = (
        "processes",
        "indexes",
        "times",
        "senders",
        "send_processes",
        "send_indexes",
        "send_times",
        "payloads",
        "processed",
        "sends",
    )

    def __init__(
        self,
        processes=None,
        indexes=None,
        times=None,
        senders=None,
        send_processes=None,
        send_indexes=None,
        send_times=None,
        payloads=None,
        processed=None,
        sends=None,
    ) -> None:
        self.processes = [] if processes is None else processes
        self.indexes = [] if indexes is None else indexes
        self.times = [] if times is None else times
        self.senders = [] if senders is None else senders
        self.send_processes = (
            [] if send_processes is None else send_processes
        )
        self.send_indexes = [] if send_indexes is None else send_indexes
        self.send_times = [] if send_times is None else send_times
        self.payloads = [] if payloads is None else payloads
        self.processed = [] if processed is None else processed
        self.sends = [] if sends is None else sends
        n = len(self.processes)
        for name in self.__slots__:
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"ragged columnar batch: column {name!r} has "
                    f"{len(getattr(self, name))} entries, expected {n}"
                )

    def __len__(self) -> int:
        return len(self.processes)

    def __bool__(self) -> bool:
        return bool(self.processes)

    def __iter__(self) -> Iterator[ReceiveRecord]:
        return (self.record_at(k) for k in range(len(self.processes)))

    @classmethod
    def from_records(
        cls, records: Iterable[ReceiveRecord]
    ) -> "RecordColumns":
        cols = cls()
        for record in records:
            cols.append_record(record)
        return cols

    def append_record(self, record: ReceiveRecord) -> None:
        event = record.event
        send_event = record.send_event
        self.processes.append(event.process)
        self.indexes.append(event.index)
        self.times.append(record.time)
        self.senders.append(record.sender)
        if send_event is None:
            self.send_processes.append(None)
            self.send_indexes.append(None)
        else:
            self.send_processes.append(send_event.process)
            self.send_indexes.append(send_event.index)
        self.send_times.append(record.send_time)
        self.payloads.append(record.payload)
        self.processed.append(record.processed)
        self.sends.append(
            tuple(
                (s.dest, s.payload, s.delay, s.deliver_time)
                for s in record.sends
            )
        )

    def append_from(self, other: "RecordColumns", k: int) -> None:
        """Copy row ``k`` of ``other`` onto this builder (no objects)."""
        self.processes.append(other.processes[k])
        self.indexes.append(other.indexes[k])
        self.times.append(other.times[k])
        self.senders.append(other.senders[k])
        self.send_processes.append(other.send_processes[k])
        self.send_indexes.append(other.send_indexes[k])
        self.send_times.append(other.send_times[k])
        self.payloads.append(other.payloads[k])
        self.processed.append(other.processed[k])
        self.sends.append(other.sends[k])

    def record_at(self, k: int) -> ReceiveRecord:
        """Materialize row ``k`` as a :class:`ReceiveRecord`.

        Uses the same trusted fast construction as the codec's
        ``decode_record``: the columns only ever hold values produced
        by an encoded record (or validated wire frame), so the frozen
        dataclasses' ``__init__``/``__post_init__`` re-validation is
        skipped.
        """
        event = Event.__new__(Event)
        event.__dict__["process"] = self.processes[k]
        event.__dict__["index"] = self.indexes[k]
        sp = self.send_processes[k]
        if sp is None:
            send_event = None
        else:
            send_event = Event.__new__(Event)
            send_event.__dict__["process"] = sp
            send_event.__dict__["index"] = self.send_indexes[k]
        sends = []
        for dest, payload, delay, deliver_time in self.sends[k]:
            send = SendRecord.__new__(SendRecord)
            send.__dict__["dest"] = dest
            send.__dict__["payload"] = payload
            send.__dict__["delay"] = delay
            send.__dict__["deliver_time"] = deliver_time
            sends.append(send)
        record = ReceiveRecord.__new__(ReceiveRecord)
        d = record.__dict__
        d["event"] = event
        d["time"] = self.times[k]
        d["sender"] = self.senders[k]
        d["send_event"] = send_event
        d["send_time"] = self.send_times[k]
        d["payload"] = self.payloads[k]
        d["processed"] = self.processed[k]
        d["sends"] = tuple(sends)
        return record

    def to_records(self) -> list[ReceiveRecord]:
        return [self.record_at(k) for k in range(len(self.processes))]


@dataclass
class Trace:
    """The full record of a simulated execution.

    Per-event and per-process lookups (:meth:`record_of`,
    :meth:`events_of`, :meth:`final_record`) are backed by lazily built
    indexes -- analysis code calls them inside loops, and linear scans of
    ``records`` made those loops quadratic.  The indexes track the record
    list by length plus the identity of the last indexed record: the
    simulator's append-only growth extends them incrementally, while
    truncation -- even when regrown to the old length -- triggers a full
    rebuild on next use.  Replacing *earlier* entries in place without
    touching the tail is not detected; ``records`` is append-only by
    contract everywhere in the library.
    """

    n: int
    faulty: frozenset[ProcessId]
    records: list[ReceiveRecord] = field(default_factory=list)
    _indexed: int = field(default=0, init=False, repr=False, compare=False)
    _last_indexed: ReceiveRecord | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _by_event: dict[Event, ReceiveRecord] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _by_process: dict[ProcessId, list[ReceiveRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def correct(self) -> frozenset[ProcessId]:
        return frozenset(p for p in range(self.n) if p not in self.faulty)

    def _ensure_index(self) -> None:
        size = len(self.records)
        stale = size < self._indexed or (
            self._indexed > 0
            and self.records[self._indexed - 1] is not self._last_indexed
        )
        if stale:
            self._by_event = {}
            self._by_process = {}
            self._indexed = 0
        if size == self._indexed:
            return
        for r in self.records[self._indexed :]:
            self._by_event[r.event] = r
            self._by_process.setdefault(r.event.process, []).append(r)
        self._indexed = size
        self._last_indexed = self.records[size - 1]

    def events_of(self, process: ProcessId) -> list[ReceiveRecord]:
        self._ensure_index()
        return list(self._by_process.get(process, ()))

    def record_of(self, event: Event) -> ReceiveRecord:
        self._ensure_index()
        try:
            return self._by_event[event]
        except KeyError:
            raise KeyError(f"no record for event {event!r}") from None

    def times(self) -> dict[Event, float]:
        """Occurrence time per event (for Mattern real-time cuts)."""
        return {r.event: r.time for r in self.records}

    def payloads(self) -> dict[Event, Any]:
        return {r.event: r.payload for r in self.records}

    def messages_between(
        self, src: ProcessId, dst: ProcessId
    ) -> list[ReceiveRecord]:
        """Receive records at ``dst`` triggered by messages from ``src``."""
        return [
            r
            for r in self.records
            if r.event.process == dst and r.sender == src
        ]

    def delays(self) -> list[tuple[Event, Event, float]]:
        """(send event, receive event, end-to-end delay) per message."""
        out = []
        for r in self.records:
            if r.send_event is not None and r.send_time is not None:
                out.append((r.send_event, r.event, r.time - r.send_time))
        return out

    def final_record(self, process: ProcessId) -> ReceiveRecord | None:
        self._ensure_index()
        events = self._by_process.get(process)
        return events[-1] if events else None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ReceiveRecord]:
        return iter(self.records)


def message_kept(
    record: ReceiveRecord,
    faulty: frozenset[ProcessId],
    drop_faulty: bool = True,
    keep_message: Callable[[ReceiveRecord], bool] | None = None,
) -> bool:
    """Whether ``record``'s triggering message edge enters the graph.

    The single predicate behind :func:`build_execution_graph` and the
    record-consuming :class:`~repro.analysis.online.OnlineAbcMonitor`,
    so the batch and incremental graph semantics cannot drift apart:
    wake-ups have no message, faulty senders are dropped (Section 2)
    unless ``drop_faulty`` is disabled, and ``keep_message`` may exempt
    further messages.
    """
    if record.sender is None or record.send_event is None:
        return False
    if drop_faulty and record.sender in faulty:
        return False
    if keep_message is not None and not keep_message(record):
        return False
    return True


def build_execution_graph(
    trace: Trace,
    drop_faulty: bool = True,
    keep_message: Callable[[ReceiveRecord], bool] | None = None,
) -> ExecutionGraph:
    """The execution graph of a trace (Definition 1).

    Args:
        trace: the recorded execution.
        drop_faulty: drop message edges whose sender is faulty (the
            paper's default treatment; see the module docstring).
        keep_message: optional extra filter on triggering messages --
            Section 2 notes that message dropping can also exempt chosen
            message types from the ABC synchrony condition, and Section 6
            builds weaker variants from restricted execution graphs.
            Receive records for which it returns ``False`` keep their
            event node but lose the message edge.
    """
    events_by_process: dict[ProcessId, list[Event]] = {
        p: [] for p in range(trace.n)
    }
    for record in trace.records:
        events_by_process[record.event.process].append(record.event)
    for p, events in events_by_process.items():
        for i, ev in enumerate(events):
            if ev.index != i:
                raise ValueError(
                    f"trace records for process {p} are not contiguous: "
                    f"expected index {i}, got {ev!r}"
                )
    messages = [
        MessageEdge(record.send_event, record.event)
        for record in trace.records
        if message_kept(record, trace.faulty, drop_faulty, keep_message)
    ]
    return ExecutionGraph(events_by_process, messages)

"""Discrete-event simulation substrate for message-driven algorithms."""

from repro.sim.delays import (
    ClusterDelay,
    DelayModel,
    DriftingBandDelay,
    FixedDelay,
    GrowingDelay,
    LognormalDelay,
    PerLinkDelay,
    ScaledDelay,
    ThetaBandDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.sim.abc_scheduler import AbcEnforcingSimulator
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.faults import (
    BabblingProcess,
    CrashAfter,
    MirrorProcess,
    SilentProcess,
    TwoFacedProcess,
)
from repro.sim.network import Network, Topology
from repro.sim.process import Process, StepContext
from repro.sim.trace import ReceiveRecord, SendRecord, Trace, build_execution_graph

__all__ = [
    "ClusterDelay",
    "DelayModel",
    "DriftingBandDelay",
    "FixedDelay",
    "GrowingDelay",
    "LognormalDelay",
    "PerLinkDelay",
    "ScaledDelay",
    "ThetaBandDelay",
    "UniformDelay",
    "ZeroDelay",
    "AbcEnforcingSimulator",
    "SimulationLimits",
    "Simulator",
    "BabblingProcess",
    "CrashAfter",
    "MirrorProcess",
    "SilentProcess",
    "TwoFacedProcess",
    "Network",
    "Topology",
    "Process",
    "StepContext",
    "ReceiveRecord",
    "SendRecord",
    "Trace",
    "build_execution_graph",
]

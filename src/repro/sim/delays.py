"""End-to-end delay models for the simulated network.

The ABC model puts no constraints on individual message delays, so the
simulator accepts arbitrary delay models.  The models here cover the
regimes the paper discusses:

* :class:`ThetaBandDelay` keeps all delays inside a band of ratio
  ``Theta``; by Theorem 6 the resulting executions are ABC-admissible for
  every ``Xi > Theta``.
* :class:`GrowingDelay` scales delays by an unbounded function of time
  (the spacecraft-formation example of Sections 5.1/5.3: delays may grow
  forever, which no bounded-delay model can express, while delay *ratios*
  along relevant cycles stay put).
* :class:`ClusterDelay` gives intra-cluster and inter-cluster traffic
  different models (Figure 9: only cumulative ratios over multi-hop paths
  matter).
* :class:`ZeroDelay` exercises the paper's observation that the ABC model
  even tolerates zero-delay messages (Figure 1, message ``m3``).

All models draw from the :class:`random.Random` instance owned by the
simulator, so runs are reproducible from the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol

__all__ = [
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "ThetaBandDelay",
    "DriftingBandDelay",
    "LognormalDelay",
    "GrowingDelay",
    "ScaledDelay",
    "PerLinkDelay",
    "ClusterDelay",
    "ZeroDelay",
]


class DelayModel(Protocol):
    """Samples the end-to-end delay of one message."""

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        """The delay of a message sent from ``src`` to ``dst`` at ``time``."""
        ...


@dataclass(frozen=True)
class FixedDelay:
    """Every message takes exactly ``value`` time units."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("delays must be non-negative")

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelay:
    """Delays drawn uniformly from ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ThetaBandDelay:
    """Delays uniform in ``[tau_minus, tau_minus * theta]``.

    The static Theta-Model band: the ratio of any two delays is at most
    ``theta``, so by Theorem 6 every execution produced under this model
    is ABC-admissible for any ``Xi > theta``.
    """

    tau_minus: float
    theta: float

    def __post_init__(self) -> None:
        if self.tau_minus <= 0:
            raise ValueError("tau_minus must be positive")
        if self.theta < 1:
            raise ValueError("theta must be at least 1")

    @property
    def tau_plus(self) -> float:
        return self.tau_minus * self.theta

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return rng.uniform(self.tau_minus, self.tau_plus)


@dataclass(frozen=True)
class LognormalDelay:
    """Heavy-tailed delays, optionally clipped to ``[clip_low, clip_high]``."""

    median: float
    sigma: float
    clip_low: float = 0.0
    clip_high: float = math.inf

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        value = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return min(max(value, self.clip_low), self.clip_high)


@dataclass(frozen=True)
class GrowingDelay:
    """Delays of ``inner`` scaled by ``1 + rate * time``.

    Models continuously increasing delays (spacecraft drifting apart).
    The scale factor is common to all messages sent at the same time, so
    ratios along relevant cycles stay close to the inner model's ratios.
    """

    inner: DelayModel
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("growth rate must be non-negative")

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return self.inner.sample(src, dst, time, rng) * (1.0 + self.rate * time)


@dataclass(frozen=True)
class ScaledDelay:
    """Delays of ``inner`` multiplied by a constant ``factor``."""

    inner: DelayModel
    factor: float

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return self.inner.sample(src, dst, time, rng) * self.factor


@dataclass(frozen=True)
class ZeroDelay:
    """Messages arrive instantly (delay 0); allowed by the ABC model."""

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        return 0.0


@dataclass(frozen=True)
class DriftingBandDelay:
    """A Theta band whose base delay drifts sinusoidally over time.

    Models the *dynamic* Theta-Model of Widder & Schmid: the band
    ``[tau-(t), theta * tau-(t)]`` moves with
    ``tau-(t) = tau_minus * (1 + amplitude * sin(t / period))``, so the
    simultaneously-in-transit delay ratio stays near ``theta`` while the
    static (whole-run) ratio can be much larger.  Used to exercise the
    static-vs-dynamic distinction of :mod:`repro.models.theta`.
    """

    tau_minus: float
    theta: float
    amplitude: float = 0.5
    period: float = 50.0

    def __post_init__(self) -> None:
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if self.theta < 1:
            raise ValueError("theta must be at least 1")
        if self.tau_minus <= 0 or self.period <= 0:
            raise ValueError("tau_minus and period must be positive")

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        base = self.tau_minus * (
            1.0 + self.amplitude * math.sin(time / self.period)
        )
        return rng.uniform(base, base * self.theta)


@dataclass(frozen=True)
class PerLinkDelay:
    """A different model per directed link, with a default fallback."""

    models: Mapping[tuple[int, int], DelayModel]
    default: DelayModel

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        model = self.models.get((src, dst), self.default)
        return model.sample(src, dst, time, rng)


@dataclass(frozen=True)
class ClusterDelay:
    """Intra-cluster vs. inter-cluster delay models (Figure 9 scenarios).

    ``cluster_of`` maps each process to its cluster id; messages between
    processes of the same cluster use ``intra``, others use ``inter``.
    """

    cluster_of: Mapping[int, int]
    intra: DelayModel
    inter: DelayModel

    def sample(self, src: int, dst: int, time: float, rng: random.Random) -> float:
        same = self.cluster_of.get(src) == self.cluster_of.get(dst)
        model = self.intra if same else self.inter
        return model.sample(src, dst, time, rng)

"""The discrete-event simulation kernel.

The kernel owns a virtual clock and a priority queue of pending message
deliveries.  Each delivery produces a receive event at its destination
and -- unless the destination has crashed -- an atomic zero-time
computing step whose sends are scheduled with delays sampled from the
network's delay model.  Ties in delivery time are broken by send order
(a deterministic sequence number), so a run is fully reproducible from
its seed.

The admissibility conditions of Section 2 hold by construction:

1. every sent message is eventually delivered (the queue is drained), so
   a correct process receiving infinitely many messages steps infinitely
   often;
2. receive events occur even at crashed/faulty processes (reception is
   under the network's control), establishing the total order on receive
   events the paper relies on.

The kernel never exposes the clock to processes; time exists only in the
trace, mirroring the time-free character of the ABC model.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.events import Event
from repro.sim.network import Network
from repro.sim.process import Process, StepContext
from repro.sim.trace import ReceiveRecord, SendRecord, Trace

__all__ = ["Simulator", "SimulationLimits"]


@dataclass(frozen=True)
class SimulationLimits:
    """Stop conditions for a run.

    The first limit reached ends the run; with no limits the run ends at
    quiescence (empty delivery queue).

    Attributes:
        max_events: total number of receive events across all processes.
        max_time: virtual-time horizon.
        stop: arbitrary predicate on the simulator, checked after every
            step.
    """

    max_events: int | None = None
    max_time: float | None = None
    stop: Callable[["Simulator"], bool] | None = None


@dataclass(order=True)
class _Delivery:
    time: float
    seq: int
    dest: int = field(compare=False)
    sender: int | None = field(compare=False)
    send_event: Event | None = field(compare=False)
    send_time: float | None = field(compare=False)
    payload: Any = field(compare=False)


class Simulator:
    """Runs a set of processes over a network and records the trace.

    Args:
        processes: one :class:`Process` per pid, in pid order.  Byzantine
            behaviours are ordinary ``Process`` implementations; list
            their pids in ``faulty`` so that analysis drops their
            messages.
        network: topology and delay model.
        faulty: ground-truth set of faulty processes (crashed or
            Byzantine); used for trace metadata, not for scheduling.
        seed: seed of the run's private random generator.
        start_times: wake-up time per process (default: all at 0).
    """

    def __init__(
        self,
        processes: Sequence[Process],
        network: Network,
        faulty: Iterable[int] = (),
        seed: int = 0,
        start_times: Sequence[float] | None = None,
    ) -> None:
        self.processes = list(processes)
        self.network = network
        if network.topology.n != len(self.processes):
            raise ValueError(
                f"topology is for {network.topology.n} processes, got "
                f"{len(self.processes)}"
            )
        self.n = len(self.processes)
        self.faulty = frozenset(faulty)
        for pid in self.faulty:
            if not 0 <= pid < self.n:
                raise ValueError(f"faulty pid {pid} out of range")
        self.rng = random.Random(seed)
        self.now = 0.0
        self.trace = Trace(self.n, self.faulty)
        self._queue: list[_Delivery] = []
        self._seq = itertools.count()
        self._event_counts = [0] * self.n
        self._crashed = [False] * self.n
        if start_times is None:
            start_times = [0.0] * self.n
        if len(start_times) != self.n:
            raise ValueError("need one start time per process")
        for pid, process in enumerate(self.processes):
            process.attach(pid, self.n)
        for pid, t0 in enumerate(start_times):
            heapq.heappush(
                self._queue,
                _Delivery(t0, next(self._seq), pid, None, None, None, "wakeup"),
            )

    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Crash ``pid`` now: it completes no further computing steps.

        Messages addressed to it keep being received (receive events
        belong to the network), matching the paper's fault model.
        """
        self._crashed[pid] = True

    def is_crashed(self, pid: int) -> bool:
        return self._crashed[pid]

    @property
    def pending_messages(self) -> int:
        return len(self._queue)

    def events_at(self, pid: int) -> int:
        """Number of receive events recorded at ``pid`` so far."""
        return self._event_counts[pid]

    # ------------------------------------------------------------------

    def run(self, limits: SimulationLimits | None = None) -> Trace:
        """Drain the delivery queue subject to ``limits``; returns the
        trace (also available as ``self.trace``)."""
        limits = limits or SimulationLimits()
        while self._queue:
            if (
                limits.max_events is not None
                and len(self.trace.records) >= limits.max_events
            ):
                break
            if (
                limits.max_time is not None
                and self._queue[0].time > limits.max_time
            ):
                break
            self._step()
            if limits.stop is not None and limits.stop(self):
                break
        return self.trace

    def _step(self) -> None:
        self._process_delivery(heapq.heappop(self._queue))

    def _process_delivery(self, delivery: _Delivery) -> None:
        self.now = max(self.now, delivery.time)
        dest = delivery.dest
        event = Event(dest, self._event_counts[dest])
        self._event_counts[dest] += 1

        processed = not self._crashed[dest]
        send_records: tuple[SendRecord, ...] = ()
        if processed:
            ctx = StepContext(
                pid=dest,
                n=self.n,
                neighbors=self.network.topology.neighbors(dest),
            )
            process = self.processes[dest]
            if delivery.sender is None:
                process.on_wakeup(ctx)
            else:
                process.on_message(ctx, delivery.payload, delivery.sender)
            send_records = self._dispatch(dest, event, ctx.sends)

        self.trace.records.append(
            ReceiveRecord(
                event=event,
                time=self.now,
                sender=delivery.sender,
                send_event=delivery.send_event,
                send_time=delivery.send_time,
                payload=delivery.payload,
                processed=processed,
                sends=send_records,
            )
        )

    def _dispatch(
        self,
        src: int,
        send_event: Event,
        sends: Sequence[tuple[int, Any]],
    ) -> tuple[SendRecord, ...]:
        records = []
        for dest, payload in sends:
            delay = self.network.delay(src, dest, self.now, self.rng)
            deliver_time = self.now + delay
            heapq.heappush(
                self._queue,
                _Delivery(
                    deliver_time,
                    next(self._seq),
                    dest,
                    src,
                    send_event,
                    self.now,
                    payload,
                ),
            )
            records.append(SendRecord(dest, payload, delay, deliver_time))
        return tuple(records)

"""Property checkers for the paper's theorems, over recorded traces."""

from repro.analysis.fleet import (
    FleetReport,
    MonitorFleet,
    ShardStats,
    TraceSummary,
)
from repro.analysis.online import (
    OnlineAbcMonitor,
    RatioChange,
    running_worst_ratio_of_trace,
)
from repro.analysis.properties import (
    BoundedProgressReport,
    ClockAnalysis,
    PrecisionReport,
    first_lockstep_round,
    verify_bounded_progress,
    verify_causal_chain_length,
    verify_causal_cone,
    verify_cut_synchrony,
    verify_lockstep,
    verify_progress,
    verify_realtime_precision,
)

__all__ = [
    "BoundedProgressReport",
    "FleetReport",
    "MonitorFleet",
    "OnlineAbcMonitor",
    "ShardStats",
    "TraceSummary",
    "RatioChange",
    "running_worst_ratio_of_trace",
    "ClockAnalysis",
    "PrecisionReport",
    "first_lockstep_round",
    "verify_bounded_progress",
    "verify_causal_chain_length",
    "verify_causal_cone",
    "verify_cut_synchrony",
    "verify_lockstep",
    "verify_progress",
    "verify_realtime_precision",
]

"""Property checkers for the Section 3 theorems.

Each checker takes a recorded trace (plus the algorithm instances, for
clock values) and decides whether the corresponding guarantee held:

* Theorem 1 (progress): correct clocks grow without bound -- checked as
  "every correct clock reached the run's tick horizon".
* Theorem 2 (synchrony): ``|C_p(S) - C_q(S)| <= 2 Xi`` on consistent
  cuts; checked over a family of cuts (event closures and, optionally,
  randomly sampled closures).
* Theorem 3 (precision): the same bound on real-time (Mattern) cuts, at
  every event time of the run.
* Theorem 4 (bounded progress): whenever a correct ``p`` performs
  ``rho = 4 Xi + 1`` distinguished events in a cut interval, every
  correct process performs at least one there.
* Theorem 5 (lock-step): every correct process enters round ``r + 1``
  only after having received the round ``r`` message of every correct
  process (via the lock-step layer's input snapshots).
* Lemma 4 (causal cone): at any event with ``C_p = k + 2 Xi``, process
  ``p`` has already received ``(tick l)`` from every correct process for
  all ``l <= k``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.algorithms.clock_sync import ClockSyncProcess, Tick
from repro.core.cuts import Cut, clock_values_at_cut, real_time_cut
from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph
from repro.sim.trace import Trace, build_execution_graph

__all__ = [
    "ClockAnalysis",
    "PrecisionReport",
    "BoundedProgressReport",
    "verify_progress",
    "verify_cut_synchrony",
    "verify_realtime_precision",
    "verify_bounded_progress",
    "verify_causal_cone",
    "verify_lockstep",
    "first_lockstep_round",
]


@dataclass
class ClockAnalysis:
    """Bundles a trace with the per-event clock values of Algorithm 1."""

    trace: Trace
    clocks: dict[ProcessId, Sequence[int]]
    graph: ExecutionGraph

    @staticmethod
    def from_run(
        trace: Trace, processes: Sequence[object]
    ) -> "ClockAnalysis":
        """Collect clock histories from :class:`ClockSyncProcess` runs.

        Faulty pids (per the trace metadata) are skipped even if their
        process object happens to expose a clock.
        """
        clocks: dict[ProcessId, Sequence[int]] = {}
        for pid, proc in enumerate(processes):
            if pid in trace.faulty:
                continue
            history = getattr(proc, "clock_after_step", None)
            if history is not None:
                clocks[pid] = list(history)
        return ClockAnalysis(trace, clocks, build_execution_graph(trace))

    def clock_of(self, event: Event) -> int | None:
        """``C_p(phi)``: clock value after the step of ``event``."""
        history = self.clocks.get(event.process)
        if history is None or event.index >= len(history):
            return None
        return history[event.index]

    @property
    def correct(self) -> frozenset[ProcessId]:
        return frozenset(self.clocks)

    def final_clocks(self) -> dict[ProcessId, int]:
        return {p: history[-1] for p, history in self.clocks.items() if history}


@dataclass(frozen=True)
class PrecisionReport:
    """Outcome of a synchrony/precision check."""

    bound: Fraction
    worst_spread: int
    n_cuts: int
    holds: bool


def verify_progress(analysis: ClockAnalysis, target: int) -> bool:
    """Theorem 1 on a finite prefix: every correct clock reached
    ``target``."""
    finals = analysis.final_clocks()
    return bool(finals) and all(k >= target for k in finals.values())


def _cut_spread(analysis: ClockAnalysis, cut: Cut) -> int | None:
    values = clock_values_at_cut(cut, analysis.clock_of, analysis.correct)
    if len(values) < len(analysis.correct):
        return None  # cut does not cover every correct process
    return max(values.values()) - min(values.values())


def verify_cut_synchrony(
    analysis: ClockAnalysis,
    xi: Fraction | int | float,
    extra_samples: int = 50,
    seed: int = 0,
) -> PrecisionReport:
    """Theorem 2: ``|C_p(S) - C_q(S)| <= 2 Xi`` over consistent cuts.

    Checked cuts: the closure of every single event (unioned with every
    process's first event so the cut covers all correct processes), plus
    ``extra_samples`` closures of random event subsets.
    """
    xi_frac = Fraction(xi)
    bound = 2 * xi_frac
    graph = analysis.graph
    base = [Event(p, 0) for p in analysis.correct]
    cuts: list[Cut] = []
    for ev in graph.events():
        cuts.append(Cut(graph.causal_past([ev] + base)))
    rng = random.Random(seed)
    events = list(graph.events())
    for _ in range(extra_samples):
        sample = rng.sample(events, k=min(len(events), rng.randint(1, 5)))
        cuts.append(Cut(graph.causal_past(sample + base)))
    worst = 0
    for cut in cuts:
        spread = _cut_spread(analysis, cut)
        if spread is not None:
            worst = max(worst, spread)
    return PrecisionReport(bound, worst, len(cuts), Fraction(worst) <= bound)


def verify_realtime_precision(
    analysis: ClockAnalysis, xi: Fraction | int | float
) -> PrecisionReport:
    """Theorem 3: ``|C_p(t) - C_q(t)| <= 2 Xi`` at every event time.

    ``C_p(t)`` is the clock after ``p``'s last step at time ``<= t``; a
    process that has not stepped yet is skipped (its clock is undefined
    until the wake-up, which occurs at the first instant it could count).
    """
    xi_frac = Fraction(xi)
    bound = 2 * xi_frac
    times = analysis.trace.times()
    checkpoints = sorted({t for t in times.values()})
    worst = 0
    n = 0
    for t in checkpoints:
        cut = real_time_cut(times, t)
        values = clock_values_at_cut(cut, analysis.clock_of, analysis.correct)
        if len(values) == len(analysis.correct):
            n += 1
            spread = max(values.values()) - min(values.values())
            worst = max(worst, spread)
    return PrecisionReport(bound, worst, n, Fraction(worst) <= bound)


@dataclass(frozen=True)
class BoundedProgressReport:
    """Outcome of the Theorem 4 check."""

    rho: int
    n_windows: int
    violations: int

    @property
    def holds(self) -> bool:
        return self.violations == 0


def verify_bounded_progress(
    analysis: ClockAnalysis,
    xi: Fraction | int | float,
    distinguished: Mapping[ProcessId, Sequence[int]],
) -> BoundedProgressReport:
    """Theorem 4 with ``rho = 4 Xi + 1`` for the given distinguished
    steps (clock-increment-and-broadcast steps of Algorithm 1).

    For every correct ``p`` and every minimal window of ``p``-events
    containing ``rho`` distinguished events, every correct ``q`` must
    have a distinguished event inside the cut interval.  Minimal windows
    suffice: any larger window contains a minimal one's interval.
    """
    xi_frac = Fraction(xi)
    rho = math.floor(4 * xi_frac) + 1
    graph = analysis.graph
    n_windows = 0
    violations = 0
    for p in analysis.correct:
        marks = sorted(distinguished.get(p, ()))
        events = graph.events_of(p)
        if len(marks) <= rho:
            continue
        for start_pos in range(len(marks) - rho):
            # Window from just before distinguished step #start_pos+1 to
            # the step of distinguished event #start_pos+rho.
            phi = events[marks[start_pos]]
            phi_prime = events[marks[start_pos + rho]]
            n_windows += 1
            past_hi = graph.causal_past([phi_prime])
            past_lo = graph.causal_past([phi])
            interval = past_hi - past_lo
            for q in analysis.correct:
                if q == p:
                    continue
                q_marks = set(distinguished.get(q, ()))
                hit = any(
                    ev.process == q and ev.index in q_marks
                    for ev in interval
                )
                if not hit:
                    violations += 1
    return BoundedProgressReport(rho, n_windows, violations)


def verify_causal_cone(
    analysis: ClockAnalysis, xi: Fraction | int | float
) -> bool:
    """Lemma 4: ``C_p(phi') = k + 2 Xi`` implies ``p`` has received
    ``(tick l)`` from every correct process for all ``l <= k``.

    Tick receptions are read off the trace payloads; only messages from
    correct senders count (the execution graph drops faulty ones).
    """
    xi_frac = Fraction(xi)
    two_xi = 2 * xi_frac
    correct = analysis.correct
    records_by_process: dict[ProcessId, list] = {p: [] for p in correct}
    for record in analysis.trace.records:
        p = record.event.process
        if p in correct:
            records_by_process[p].append(record)
    for p in correct:
        have: dict[int, set[ProcessId]] = {}
        for record in records_by_process[p]:
            payload = record.payload
            if isinstance(payload, Tick) and record.sender in correct:
                have.setdefault(payload.value, set()).add(record.sender)
            clock = analysis.clock_of(record.event)
            if clock is None:
                continue
            # Check the lemma whenever C_p >= k + 2 Xi for the max k.
            k_limit = Fraction(clock) - two_xi
            if k_limit < 0:
                continue
            k_max = math.floor(k_limit)
            for l in range(k_max + 1):
                if have.get(l, set()) != correct:
                    return False
    return True


def verify_causal_chain_length(
    analysis: ClockAnalysis,
) -> bool:
    """Lemma 3: a correct process with clock ``k + m`` ends a causal chain
    of length ``>= m`` through correct processes.

    Checked in the contrapositive-free form: for every event ``phi'`` of
    a correct process with ``C_p(phi') = v``, the longest message chain
    (through the execution graph, which only contains correct messages)
    ending at ``phi'`` must have at least ``v`` messages -- the ``k = 0``
    instance of the lemma, which is the strongest one.
    """
    from repro.core.chains import longest_incoming_chain

    longest = longest_incoming_chain(analysis.graph)
    for p in analysis.correct:
        for ev in analysis.graph.events_of(p):
            clock = analysis.clock_of(ev)
            if clock is None:
                continue
            if longest.get(ev, 0) < clock:
                return False
    return True


def verify_lockstep(
    trace: Trace, processes: Sequence[object]
) -> tuple[bool, int]:
    """Theorem 5: round inputs of every correct process cover every
    correct process, for every round it entered.

    Returns (holds, number of (process, round) entries checked).
    """
    correct = trace.correct
    checked = 0
    for pid, proc in enumerate(processes):
        if pid in correct:
            inputs = getattr(proc, "round_inputs", None)
            if inputs is None:
                continue
            for round_index, received in inputs.items():
                checked += 1
                if not correct <= set(received) | trace.faulty:
                    return False, checked
    return True, checked


def first_lockstep_round(
    trace: Trace, processes: Sequence[object]
) -> int | None:
    """Earliest round from which on all correct round inputs are complete.

    The eventual lock-step guarantee of the Section 6 variants: returns
    the smallest ``r0`` such that for every entered round ``r >= r0``
    every correct process's input covers all correct processes, or
    ``None`` if no such round exists in the trace.
    """
    correct = trace.correct
    bad_rounds: set[int] = set()
    max_round = 0
    for pid, proc in enumerate(processes):
        if pid not in correct:
            continue
        inputs = getattr(proc, "round_inputs", None)
        if inputs is None:
            continue
        for round_index, received in inputs.items():
            max_round = max(max_round, round_index)
            if not correct <= set(received) | trace.faulty:
                bad_rounds.add(round_index)
    if not bad_rounds:
        return 1
    first = max(bad_rounds) + 1
    return first if first <= max_round else None

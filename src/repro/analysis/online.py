"""Online ABC admissibility monitoring (the ?ABC / <>ABC primitives).

The Section-6 variants of the ABC model reason about *growing*
executions: ?ABC asks whether the (unknown) synchrony parameter ``Xi``
stays above the worst relevant-cycle ratio of every prefix, <>ABC whether
violations eventually stop.  Monitoring either online with the batch
checker means re-running a full Stern-Brocot search per prefix -- the
quadratic-and-worse behavior this module eliminates.

:class:`OnlineAbcMonitor` consumes an execution incrementally, either as
recorded :class:`~repro.sim.trace.ReceiveRecord` objects (:meth:`observe`)
or as raw graph events (:meth:`observe_event` / :meth:`observe_message`),
and maintains the exact running worst relevant ratio.  Three observations
make this cheap:

* the traversal digraph ``H`` is extended in place inside one shared
  :class:`~repro.core.synchrony.AdmissibilityChecker` -- never rebuilt;
* the worst ratio is non-decreasing under extension (old cycles persist),
  so a new receive event without a message edge cannot change it and is
  absorbed with zero oracle work;
* after a message edge arrives, a *single* oracle call at the Farey
  successor of the current worst ratio (the smallest fraction above it
  with denominator within the message-count bound) decides whether the
  ratio moved at all.  Only when it did -- rarely -- does a Stern-Brocot
  search run, warm-started from the bracket just established.

The monitor also exposes violation callbacks for a known ``Xi``: the
first prefix whose worst ratio reaches ``Xi`` triggers ``on_violation``
with a concrete witness cycle, which is the online form of the <>ABC
"violations before stabilization" view.

Two scheduler-facing facilities ride on the same shared checker.
*Speculative queries* (:meth:`OnlineAbcMonitor.would_violate`,
:meth:`OnlineAbcMonitor.speculative_worst_ratio`) answer "what if these
events and messages arrived next?" by pushing the hypothetical extension
onto the live digraph inside a
:meth:`~repro.core.synchrony.AdmissibilityChecker.speculate` block and
rolling it back -- the primitive the ABC-enforcing scheduler of
:mod:`repro.sim.abc_scheduler` runs once per pending message per step.
*Prefix forgetting* (:meth:`OnlineAbcMonitor.forget_prefix`,
:meth:`OnlineAbcMonitor.settled_prefix`,
:meth:`OnlineAbcMonitor.compactable_prefix`) bounds the monitor's
memory through the checker's two-mode compaction engine.  Exact mode
tombstones a settled prefix no message crosses; summary mode
(``forget_prefix(events, summarize=True)``) compacts *any* prefix --
chain-shaped executions included, where the no-crossing criterion
removes nothing -- replacing it by boundary-to-boundary summary edges.
Either way the running worst ratio keeps its historical maximum, and
because the monitor only ever refreshes at ratios strictly above that
maximum (the Farey-successor step), every ratio it reports after
summary compaction is still bit-identical to an uncompacted monitor's.

Compaction *cadence* can be left to the monitor itself: constructed
with ``compact_threshold=t``, the monitor tracks its own in-flight
sends from record metadata and summary-compacts whenever the live
digraph outgrows ``t`` times its boundary (the frontier plus pinned
send events) -- an adaptive trigger that compacts exactly when there is
something worth reclaiming, instead of every k records regardless of
how little a fixed cadence would remove (see
:meth:`OnlineAbcMonitor.maybe_compact`).

A third facility serves the *multi-trace* deployment of
:mod:`repro.analysis.fleet`: :meth:`OnlineAbcMonitor.observe_batch`
absorbs a burst of records with the refresh deferred to the end of the
batch, so a storm of messages on one trace costs one Farey-successor
oracle call per flush instead of one per record, while the worst ratio
at every batch boundary stays bit-identical to record-at-a-time
observation (the ratio is a function of the observed graph alone).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

from repro.core.cycles import CycleClassification
from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.synchrony import AdmissibilityChecker, AdmissibilityResult, as_xi
from repro.obs import metrics as _obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import STAGE_METRIC


class MonitorObs:
    """The monitor's instrument bundle on some registry.

    Oracle-call and compaction counters are *deterministic*: both are
    functions of the observed record stream (the kernel conformance
    gate already asserts oracle-call counts bit-identical), so they
    merge identically across process and thread backends.  Refresh
    latency is wall clock and is not.  The refresh histogram doubles as
    the ``kernel_sweep`` lifecycle stage.
    """

    __slots__ = ("oracle_calls", "compactions", "refresh_ns", "sweep_ns")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.oracle_calls = registry.counter(
            "repro_monitor_oracle_calls_total",
            help="negative-cycle oracle runs issued by monitor refreshes",
        )
        self.compactions = registry.counter(
            "repro_monitor_compaction_passes_total",
            help="threshold-triggered summary compactions (maybe_compact)",
        )
        self.refresh_ns = registry.histogram(
            "repro_monitor_refresh_ns",
            help="incremental worst-ratio refresh latency",
        )
        self.sweep_ns = registry.histogram(
            STAGE_METRIC,
            (("stage", "kernel_sweep"),),
            help="per-stage record-lifecycle latency",
        )
from repro.sim.trace import (
    ReceiveRecord,
    RecordColumns,
    Trace,
    message_kept,
)

__all__ = [
    "OnlineAbcMonitor",
    "RatioChange",
    "running_worst_ratio_of_trace",
]


@dataclass(frozen=True)
class RatioChange:
    """One increase of the running worst relevant ratio.

    Attributes:
        n_events: number of events observed when the increase happened.
        n_messages: number of message edges observed at that point.
        previous: the worst ratio before (``None`` = no relevant cycle).
        worst: the worst ratio after.
    """

    n_events: int
    n_messages: int
    previous: Fraction | None
    worst: Fraction


class OnlineAbcMonitor:
    """Maintains the exact running worst relevant ratio of a growing
    execution, with optional violation callbacks for a known ``Xi``.

    Args:
        xi: optional synchrony parameter to monitor against (``> 1``).
            When the running worst ratio first reaches it, the execution
            stops being ABC-admissible for ``xi`` and ``on_violation``
            fires once with a witness cycle.
        faulty: processes whose sent messages are dropped from the graph
            (the paper's Section-2 treatment; mirrors
            :func:`~repro.sim.trace.build_execution_graph`).
        drop_faulty: disable the faulty-sender filter when ``False``.
        keep_message: optional extra filter on triggering messages, as in
            :func:`~repro.sim.trace.build_execution_graph`.
        on_violation: called once, at the first observation whose worst
            ratio reaches ``xi``, with a violating
            :class:`~repro.core.cycles.CycleClassification` witness.
        on_ratio_increase: called with a :class:`RatioChange` every time
            the running worst ratio grows (including its first
            appearance).
        compact_threshold: optional adaptive compaction cadence
            (``> 1``).  The monitor then tracks in-flight sends from
            record metadata (``record.sends``) and summary-compacts its
            digraph whenever the live event count exceeds the threshold
            times the boundary it would keep -- bounding memory by
            ``threshold * O(frontier + in-flight sends)`` with every
            reported ratio still bit-identical.  Only streams carrying
            complete sends metadata keep the monitor exact under this
            mode (as with fleet eviction, an unannounced in-flight send
            degrades the ratio to a counted lower bound).
        kernel: optional detection-kernel name for the underlying
            :class:`~repro.core.synchrony.AdmissibilityChecker`
            (``None`` follows the ambient ``REPRO_KERNEL`` environment);
            every kernel is exact, so this is purely a speed knob.
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        keep_message: Callable[[ReceiveRecord], bool] | None = None,
        on_violation: Callable[[CycleClassification], None] | None = None,
        on_ratio_increase: Callable[[RatioChange], None] | None = None,
        compact_threshold: float | None = None,
        kernel: str | None = None,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 1:
            raise ValueError(
                "compact_threshold must exceed 1 (the live/boundary ratio "
                f"is at least 1), got {compact_threshold}"
            )
        self.xi: Fraction | None = None if xi is None else as_xi(xi)
        self.faulty = frozenset(faulty)
        self.drop_faulty = drop_faulty
        self.keep_message = keep_message
        self.on_violation = on_violation
        self.on_ratio_increase = on_ratio_increase
        self.compact_threshold = compact_threshold
        self.changes: list[RatioChange] = []
        self.violation: CycleClassification | None = None
        self.forgotten_message_edges = 0
        self.auto_compactions = 0
        # (send event, destination) -> announced-but-unarrived messages;
        # maintained only under compact_threshold (the fleet tracks its
        # own copy per trace for eviction pinning).
        self._in_flight: dict[tuple[Event, ProcessId], int] = {}
        self.kernel = kernel
        self._checker = AdmissibilityChecker(kernel=kernel)
        self._worst: Fraction | None = None
        # Telemetry handle: ``None`` when disabled (one attribute read
        # per refresh, the emit_ratio contract).  Standalone monitors
        # bind the process-global registry; a ShardGroup re-binds its
        # monitors to the group's own registry (see ``_wire_monitor``),
        # which is what keeps thread-backend workers from sharing
        # instruments.
        self._obs: MonitorObs | None = (
            MonitorObs(_obs_metrics.global_registry())
            if _obs_metrics.enabled()
            else None
        )

    def __getstate__(self) -> dict:
        # Instruments are process-local live objects (locks, shared
        # registries): never serialized, so snapshot blobs stay
        # bit-identical with telemetry on or off.  The restoring side
        # re-binds (``ShardGroup._wire_monitor``).
        state = self.__dict__.copy()
        state["_obs"] = None
        return state

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def worst_ratio(self) -> Fraction | None:
        """The exact worst relevant ratio of everything observed so far
        (``None`` = no relevant cycle yet); equals
        :func:`~repro.core.synchrony.worst_relevant_ratio` on the
        observed prefix."""
        return self._worst

    @property
    def n_events(self) -> int:
        return self._checker.n_events

    @property
    def n_messages(self) -> int:
        return self._checker.n_messages

    @property
    def oracle_calls(self) -> int:
        """Total negative-cycle runs issued (incrementality metric)."""
        return self._checker.oracle_calls

    @property
    def kernel_name(self) -> str:
        """The detection kernel the monitor's checker resolves to."""
        return self._checker.kernel_name

    def set_kernel(self, kernel: str | None) -> None:
        """Re-pin the detection kernel (see
        :meth:`~repro.core.synchrony.AdmissibilityChecker.set_kernel`)."""
        self.kernel = kernel
        self._checker.set_kernel(kernel)

    @property
    def summary_edges(self) -> int:
        """Live summary edges created by ``forget_prefix(summarize=True)``."""
        return self._checker.n_summary_edges

    def n_events_of(self, process: ProcessId) -> int:
        """Total events observed at ``process`` (forgotten ones
        included): the local index the next event there must carry."""
        return self._checker.n_events_of(process)

    def is_admissible(self) -> bool:
        """Whether the observed prefix is ABC-admissible for ``xi``."""
        if self.xi is None:
            raise ValueError("monitor was constructed without a Xi")
        return self._worst is None or self._worst < self.xi

    def check(self, xi: Fraction | float | int | str) -> AdmissibilityResult:
        """Batch-equivalent admissibility check of the observed prefix.

        After ``forget_prefix(summarize=True)``, exact only for ``xi``
        strictly above the worst ratio at compaction time (cycles
        confined to a summarized prefix are not re-derived); use
        :attr:`worst_ratio` -- which keeps the historical maximum --
        for the monitoring verdict.
        """
        return self._checker.check(xi)

    # ------------------------------------------------------------------
    # feeding the monitor
    # ------------------------------------------------------------------

    def observe(self, record: ReceiveRecord) -> Fraction | None:
        """Consume one receive record; returns the updated worst ratio.

        The record's event is appended to its process timeline and the
        triggering message edge added unless the sender is faulty (or the
        record is an external wake-up, or ``keep_message`` rejects it) --
        exactly the graph :func:`~repro.sim.trace.build_execution_graph`
        would produce from the records observed so far.

        A record whose triggering send event lies in a prefix dropped by
        :meth:`forget_prefix` does not raise: like :meth:`observe_batch`,
        the edge is skipped and counted in
        :attr:`forgotten_message_edges` (the monitor's ratio is then a
        lower bound; pin in-flight sends when forgetting to keep the
        count at zero).
        """
        self.observe_event(record.event)
        if message_kept(
            record, self.faulty, self.drop_faulty, self.keep_message
        ):
            src = record.send_event
            assert src is not None
            if src.index < self._checker.first_live_index(src.process):
                self.forgotten_message_edges += 1
            else:
                self.observe_message(src, record.event)
        if self.compact_threshold is not None:
            self._track_record(record)
            self.maybe_compact()
        return self._worst

    def observe_trace(self, trace: Iterable[ReceiveRecord]) -> Fraction | None:
        """Consume many records (a whole trace or a new suffix of one)."""
        for record in trace:
            self.observe(record)
        return self._worst

    def observe_batch(self, records: Iterable[ReceiveRecord]) -> Fraction | None:
        """Absorb a burst of records with one deferred refresh.

        Semantically equivalent to calling :meth:`observe` on each record
        in order, except that the worst-ratio refresh runs once at the end
        of the batch instead of once per message edge -- the oracle-saving
        hook behind :class:`repro.analysis.fleet.MonitorFleet`.  Because
        the worst ratio is a function of the observed graph alone, the
        ratio returned at the batch boundary is bit-identical to
        record-at-a-time observation; only the *intermediate* ratios (and
        with them per-record granularity of :attr:`changes` /
        ``on_ratio_increase``) are coalesced into at most one
        :class:`RatioChange` per batch, and a violation is reported at the
        batch boundary rather than mid-burst.

        Like :meth:`observe`, a record whose triggering send event lies
        in a prefix already dropped by :meth:`forget_prefix` does not
        raise: the edge is skipped and counted in
        :attr:`forgotten_message_edges`.  A nonzero count means prefixes
        were forgotten unsafely (a message crossed the boundary after
        all) and the ratio is now only a lower bound; choosing prefixes
        with :meth:`settled_prefix` and pinning the send events of
        in-flight messages keeps the count at zero and the monitor exact.
        """
        added = False
        track = self.compact_threshold is not None
        for record in records:
            self.observe_event(record.event)
            if track:
                self._track_record(record)
            if message_kept(
                record, self.faulty, self.drop_faulty, self.keep_message
            ):
                src = record.send_event
                assert src is not None
                if src.index < self._checker.first_live_index(src.process):
                    self.forgotten_message_edges += 1
                    continue
                if self._checker.add_message(src, record.event):
                    added = True
        if added:
            self._refresh()
        if track:
            # After the refresh: the compaction floor is the *current*
            # running worst, which keeps the compacted digraph exact for
            # every ratio the Farey-successor step will ever probe.
            self.maybe_compact()
        return self._worst

    def observe_batch_columnar(
        self, cols: RecordColumns
    ) -> Fraction | None:
        """Columnar twin of :meth:`observe_batch`: absorb a batch of
        parallel columns without materializing a single record object.

        One pass over the columns replicates the
        :func:`~repro.sim.trace.message_kept` / forgotten-prefix
        filtering into an aligned origin column, which
        :meth:`~repro.core.synchrony.AdmissibilityChecker.absorb_batch`
        bulk-appends (H-edge order per record preserved); one more pass
        (:meth:`_track_columns`) replicates the in-flight bookkeeping
        behind adaptive compaction.  Everything observable -- ratios,
        :attr:`changes`, :attr:`violation`, oracle-call counts,
        :attr:`forgotten_message_edges`, compaction cadence -- is
        bit-identical to :meth:`observe_batch` on the same records.

        A ``keep_message`` filter is a predicate over *record objects*,
        so monitors carrying one fall back to the object path.
        """
        if self.keep_message is not None:
            return self.observe_batch(cols.to_records())
        checker = self._checker
        senders = cols.senders
        send_processes = cols.send_processes
        send_indexes = cols.send_indexes
        faulty = self.faulty
        drop = self.drop_faulty
        first_live = checker.first_live_index
        n = len(cols)
        messages: list[tuple[ProcessId, int] | None] = [None] * n
        forgotten = 0
        for k in range(n):
            sender = senders[k]
            sp = send_processes[k]
            if sender is None or sp is None:
                continue
            if drop and sender in faulty:
                continue
            si = send_indexes[k]
            if si < first_live(sp):
                forgotten += 1
                continue
            messages[k] = (sp, si)
        added = checker.absorb_batch(
            (cols.processes, cols.indexes), messages
        )
        self.forgotten_message_edges += forgotten
        track = self.compact_threshold is not None
        if track:
            self._track_columns(cols)
        if added:
            self._refresh()
        if track:
            self.maybe_compact()
        return self._worst

    def observe_event(self, event: Event) -> None:
        """Append a receive event (and its implied local edge).

        A fresh event has no incoming traversal edge besides its trigger
        message, so no new cycle can close through it yet; the worst
        ratio is unchanged by construction and no oracle runs.
        """
        self._checker.add_event(event)

    def observe_message(self, src: Event, dst: Event) -> Fraction | None:
        """Add a message edge and refresh the worst ratio."""
        if self._checker.add_message(src, dst):
            self._refresh()
        return self._worst

    def extend_to(self, graph: ExecutionGraph) -> Fraction | None:
        """Advance the monitor to ``graph``; returns its worst ratio.

        ``graph`` should extend the observed prefix (more events per
        process, a superset of messages): the diff is then absorbed
        incrementally with a single refresh.  A non-extension resets the
        monitor -- including its violation and ratio-change history,
        which referred to the abandoned execution -- and pays one batch
        search; correct on any sequence of graphs, fast on growing ones.
        """
        if not self._checker.extends(graph):
            self._checker = AdmissibilityChecker(graph, kernel=self.kernel)
            self._worst = None
            self.violation = None
            self.changes = []
            added = self._checker.n_messages > 0
        else:
            added = self._checker.absorb(graph)
        if added:
            self._refresh()
        return self._worst

    # ------------------------------------------------------------------
    # speculative queries and prefix forgetting
    # ------------------------------------------------------------------

    def _push_extension(
        self,
        events: Iterable[Event],
        messages: Iterable[tuple[Event, Event] | MessageEdge],
    ) -> None:
        """Grow the (speculating) checker by a hypothetical extension."""
        for event in events:
            self._checker.add_event(event)
        for message in messages:
            if isinstance(message, MessageEdge):
                src, dst = message.src, message.dst
            else:
                src, dst = message
            self._checker.add_message(src, dst)

    def would_violate(
        self,
        events: Iterable[Event] = (),
        messages: Iterable[tuple[Event, Event] | MessageEdge] = (),
    ) -> bool:
        """Whether observing the given extension next would make the
        execution inadmissible for ``xi``.

        The extension is pushed onto the live digraph speculatively and
        popped off again: the monitor's state (worst ratio, memoized
        refresh bracket, callbacks) is untouched.  Events must follow
        the usual local-order discipline, message endpoints must exist
        after the events are added.  This is the oracle primitive of the
        ABC-enforcing scheduler, exposed for schedulers built on the
        monitor directly.
        """
        if self.xi is None:
            raise ValueError("monitor was constructed without a Xi")
        if self._worst is not None and self._worst >= self.xi:
            # Already violating: answer from the running maximum -- the
            # realizing cycle may live in a forgotten prefix, where the
            # compacted digraph is not obliged to re-derive it.
            return True
        with self._checker.speculate() as checker:
            self._push_extension(events, messages)
            return checker.has_ratio_at_least(self.xi)

    def speculative_worst_ratio(
        self,
        events: Iterable[Event] = (),
        messages: Iterable[tuple[Event, Event] | MessageEdge] = (),
    ) -> Fraction | None:
        """The exact worst ratio the extension would produce, without
        observing it: one Farey-successor oracle call in the common case
        (see :meth:`~repro.core.synchrony.AdmissibilityChecker.updated_worst_ratio`),
        with every speculative addition rolled back on return."""
        with self._checker.speculate() as checker:
            self._push_extension(events, messages)
            return checker.updated_worst_ratio(self._worst)

    def settled_prefix(self, pinned: Iterable[Event] = ()) -> tuple[Event, ...]:
        """The largest forgettable prefix no message edge crosses (see
        :meth:`~repro.core.synchrony.AdmissibilityChecker.removable_prefix`);
        pass it to :meth:`forget_prefix` to bound the monitor's memory
        without touching the digraph's full-graph exactness."""
        return self._checker.removable_prefix(pinned)

    def compactable_prefix(
        self, pinned: Iterable[Event] = ()
    ) -> tuple[Event, ...]:
        """The largest prefix summary compaction may absorb: everything
        strictly below the pinned events, with each process's frontier
        implicitly pinned (see
        :meth:`~repro.core.synchrony.AdmissibilityChecker.summarizable_prefix`).
        Unlike :meth:`settled_prefix` this is nonempty even on
        chain-shaped executions; pass it to
        ``forget_prefix(..., summarize=True)``, pinning the send events
        of in-flight messages to keep the monitor exact."""
        return self._checker.summarizable_prefix(pinned)

    def forget_prefix(
        self, events: Iterable[Event], summarize: bool = False
    ) -> int:
        """Compact a left-closed prefix out of the digraph.

        With ``summarize=False`` the prefix is tombstoned exactly and
        must be chosen with :meth:`settled_prefix` (no crossing
        messages) for the monitor to stay exact.  With
        ``summarize=True`` the no-crossing restriction disappears: any
        prefix from :meth:`compactable_prefix` is replaced by
        boundary-to-boundary summary edges that preserve every query
        strictly above the current worst ratio -- which is the only
        range the monitor's Farey-successor refresh ever asks about, so
        reported ratios stay bit-identical to an uncompacted monitor's.

        Either way the running worst ratio keeps its historical
        maximum -- cycles confined to the forgotten prefix can no
        longer be re-derived, but their contribution to
        :attr:`worst_ratio` (and any recorded violation) persists,
        which is the correct monitoring semantics.  In both modes the
        send events of in-flight messages must be pinned so future
        message edges can attach; a late edge into a forgotten prefix
        is skipped and counted by :attr:`forgotten_message_edges`.
        Returns the number of events forgotten.
        """
        if summarize:
            return self._checker.compact_prefix(
                events, mode="summary", floor=self._worst
            )
        return self._checker.remove_prefix(events)

    # ------------------------------------------------------------------
    # adaptive compaction cadence
    # ------------------------------------------------------------------

    def _track_record(self, record: ReceiveRecord) -> None:
        """Maintain the in-flight send counter behind adaptive
        compaction (mirrors the fleet's per-trace pinning bookkeeping)."""
        in_flight = self._in_flight
        if record.sender is not None and record.send_event is not None:
            key = (record.send_event, record.event.process)
            if in_flight.get(key, 0) > 0:
                in_flight[key] -= 1
                if not in_flight[key]:
                    del in_flight[key]
        for send in record.sends:
            dst_key = (record.event, send.dest)
            in_flight[dst_key] = in_flight.get(dst_key, 0) + 1

    def _track_columns(self, cols: RecordColumns) -> None:
        """Columnar twin of a :meth:`_track_record` loop.

        Keys still use :class:`Event` (they must compare equal to the
        object path's keys across compaction decisions), but the events
        are fast-constructed from the columns -- two dict stores instead
        of a validated dataclass ``__init__``.
        """
        in_flight = self._in_flight
        processes = cols.processes
        indexes = cols.indexes
        senders = cols.senders
        send_processes = cols.send_processes
        send_indexes = cols.send_indexes
        sends = cols.sends
        new_event = Event.__new__
        for k in range(len(processes)):
            sp = send_processes[k]
            if senders[k] is not None and sp is not None:
                src = new_event(Event)
                src.__dict__["process"] = sp
                src.__dict__["index"] = send_indexes[k]
                key = (src, processes[k])
                if in_flight.get(key, 0) > 0:
                    in_flight[key] -= 1
                    if not in_flight[key]:
                        del in_flight[key]
            rows = sends[k]
            if rows:
                event = new_event(Event)
                event.__dict__["process"] = processes[k]
                event.__dict__["index"] = indexes[k]
                for row in rows:
                    dst_key = (event, row[0])
                    in_flight[dst_key] = in_flight.get(dst_key, 0) + 1

    def _pinned_in_flight(self) -> list[Event]:
        return [key[0] for key, n in self._in_flight.items() if n > 0]

    def _compactable_size(self) -> int:
        """How many live events summary compaction could reclaim right
        now, without materializing the cut.

        Mirrors :meth:`~repro.core.synchrony.AdmissibilityChecker.summarizable_prefix`
        arithmetically: per process, everything strictly below the
        frontier and below the lowest pinned in-flight send is
        removable.  O(processes + in-flight sends) -- cheap enough to
        evaluate per record, which is what makes the adaptive trigger
        affordable where materializing the prefix each time would not
        be.
        """
        checker = self._checker
        stops = {
            process: checker.n_events_of(process) - 1
            for process in checker.processes
        }
        for (event, _dest), n in self._in_flight.items():
            if n > 0:
                stop = stops.get(event.process)
                if stop is not None and event.index < stop:
                    stops[event.process] = event.index
        return sum(
            max(0, stop - checker.first_live_index(process))
            for process, stop in stops.items()
        )

    def maybe_compact(self) -> int:
        """Summary-compact iff the live digraph outgrew its boundary.

        The trigger is the live/boundary ratio: with ``b`` events that
        must stay (frontiers plus in-flight send pins) and ``n`` live
        events, compaction runs when ``n > threshold * b`` -- i.e. when
        at least ``(threshold - 1) * b`` events are actually
        reclaimable.  Unlike a fixed every-k cadence this never pays a
        compaction that would reclaim little (deep pins, fresh
        digraph), and never lets the digraph grow past ``threshold``
        times its irreducible boundary; reported ratios stay
        bit-identical either way (the summary-mode contract).  Returns
        the number of events compacted away (0 = not triggered).
        """
        threshold = self.compact_threshold
        if threshold is None:
            return 0
        live = self._checker.n_events
        removable = self._compactable_size()
        boundary = live - removable
        if removable <= 0 or live <= threshold * max(boundary, 1):
            return 0
        cut = self._checker.summarizable_prefix(self._pinned_in_flight())
        if not cut:
            return 0
        removed = self.forget_prefix(cut, summarize=True)
        if removed:
            self.auto_compactions += 1
            if self._obs is not None:
                self._obs.compactions.inc()
        return removed

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        xi: Fraction | float | int | str | None = None,
        **kwargs: object,
    ) -> "OnlineAbcMonitor":
        """A monitor that has consumed ``trace`` (faulty set included)."""
        monitor = cls(xi=xi, faulty=trace.faulty, **kwargs)  # type: ignore[arg-type]
        monitor.observe_trace(trace.records)
        return monitor

    # ------------------------------------------------------------------
    # the incremental refresh
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Re-establish the exact worst ratio after new message edges.

        Delegates to
        :meth:`~repro.core.synchrony.AdmissibilityChecker.updated_worst_ratio`
        (one Farey-successor oracle call in the steady state, a
        warm-started search on the rare increase) and fires the
        callbacks when the ratio moved.
        """
        checker = self._checker
        obs = self._obs
        previous = self._worst
        if obs is not None:
            start = time.perf_counter_ns()
            calls_before = checker.oracle_calls
            self._worst = checker.updated_worst_ratio(previous)
            duration = time.perf_counter_ns() - start
            obs.refresh_ns.observe(duration)
            obs.sweep_ns.observe(duration)
            issued = checker.oracle_calls - calls_before
            if issued:
                obs.oracle_calls.inc(issued)
        else:
            self._worst = checker.updated_worst_ratio(previous)
        if self._worst is None or self._worst == previous:
            return
        change = RatioChange(
            n_events=checker.n_events,
            n_messages=checker.n_messages,
            previous=previous,
            worst=self._worst,
        )
        self.changes.append(change)
        if self.on_ratio_increase is not None:
            self.on_ratio_increase(change)
        if (
            self.xi is not None
            and self.violation is None
            and self._worst >= self.xi
        ):
            witness = checker.violating_cycle(self.xi)
            assert witness is not None
            self.violation = witness
            if self.on_violation is not None:
                self.on_violation(witness)


def running_worst_ratio_of_trace(trace: Trace) -> list[Fraction | None]:
    """The worst relevant ratio after each receive record of ``trace``.

    Record ``k`` of the result equals
    ``worst_relevant_ratio(build_execution_graph(trace[:k+1]))`` but the
    whole sequence is computed in one incremental pass.
    """
    monitor = OnlineAbcMonitor(faulty=trace.faulty)
    return [monitor.observe(record) for record in trace.records]

"""Fleet monitoring: many concurrent executions behind one ingestion API.

The Section-6 variants (?ABC / <>ABC) are stated per execution, but a
production deployment monitors a *population* of executions at once --
one growing trace per session, service, or shard pair -- the regime the
asynchronous-fleet literature reasons about in aggregate.  Running one
:class:`~repro.analysis.online.OnlineAbcMonitor` per trace in a plain
loop is exact but pays one Farey-successor oracle call per message
record and holds every trace's full digraph live forever.

:class:`MonitorFleet` keeps the per-trace exactness while amortizing
both costs across the population:

* **Sharding.**  Traces are hash-routed to ``n_shards`` independent
  shard structures (stable CRC32 of the trace id, so placement is
  reproducible across runs and machines).  Shards share no mutable
  state; since this PR the shard machinery itself lives in
  :mod:`repro.runtime.shard` (the :class:`~repro.runtime.shard.ShardGroup`
  engine), and :class:`MonitorFleet` is the *serial* front end driving
  one in-process group holding every shard -- the parallel front end,
  :class:`repro.runtime.ParallelFleet`, drives the same engine on
  worker processes.
* **Batching.**  :meth:`MonitorFleet.ingest` only buffers; when a
  trace's pending buffer reaches the ``batch_size`` watermark (or on an
  explicit :meth:`MonitorFleet.flush`), the burst is absorbed through
  :meth:`~repro.analysis.online.OnlineAbcMonitor.observe_batch` with a
  single deferred worst-ratio refresh -- one oracle call per flush
  instead of one per record, which is where the fleet's throughput over
  the naive loop comes from (``benchmarks/bench_fleet.py``).  Bulk
  ingestion (:meth:`MonitorFleet.ingest_many`) groups the stream per
  shard and flushes each watermark-crossing trace once per shard
  batch, so the per-record routing overhead is paid per batch too.
* **Memory policy.**  An optional global ``event_budget`` bounds the
  total number of live digraph events across the fleet.  When a flush
  pushes the fleet over budget, prefixes are evicted from the
  least-recently-ingested traces first
  (:meth:`~repro.analysis.online.OnlineAbcMonitor.forget_prefix`, with
  each trace's per-process frontier and the send events of its
  in-flight messages pinned): exact no-crossing removal where it
  applies, with a fallback to *summary compaction* -- the prefix is
  replaced by boundary-to-boundary summary edges -- on chain-shaped
  traces where no prefix is exactly removable, so the budget holds on
  every workload shape.  Independently of the budget,
  ``compact_threshold`` hands each monitor the adaptive compaction
  cadence (compact when live events outgrow the boundary by the given
  factor -- see :meth:`~repro.analysis.online.OnlineAbcMonitor.maybe_compact`).
  :meth:`MonitorFleet.close` retires a finished trace to an immutable
  :class:`TraceSummary`, freeing its digraph entirely, and
  ``auto_retire_after`` closes idle traces the same way without an
  explicit call.
* **Aggregates.**  :meth:`MonitorFleet.worst_ratio_histogram`,
  :meth:`MonitorFleet.violating_traces`,
  :meth:`MonitorFleet.top_k_riskiest` and the :class:`FleetReport`
  snapshot expose the fleet-level view (per-shard oracle and memory
  counters included) without touching individual monitors.

Exactness contract.  Batching never changes a reported ratio: the worst
relevant ratio is a function of the observed graph, so at every flush
boundary each trace's :meth:`MonitorFleet.worst_ratio` is bit-identical
to a standalone monitor fed the same records one at a time (the property
test in ``tests/analysis/test_fleet.py``).  Budget-driven eviction is
exact *when the stream carries send metadata* (``record.sends``, as
simulator traces and :func:`repro.scenarios.generators.concurrent_workload`
streams do): the fleet then knows which send events still have a message
in flight and pins them, so no future edge ever crosses a forgotten
prefix -- and summary compaction preserves every query above the
trace's running worst ratio, the only range its monitor ever refreshes
in, so the fallback is just as exact.  Streams without send metadata can be evicted past an in-flight
send; the late edge is then skipped, counted, and the trace flagged
``degraded`` -- its ratio remains a sound lower bound with the
historical maximum kept, and the flag is surfaced per trace and in the
fleet report instead of silently losing exactness.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Callable, Iterable

from repro.analysis.online import OnlineAbcMonitor
from repro.core.cycles import CycleClassification
from repro.core.events import ProcessId
from repro.runtime.shard import (
    FleetReport,
    FleetShard,
    MonitorSpec,
    ShardGroup,
    ShardStats,
    TraceId,
    TraceSummary,
    ratio_histogram,
    shard_index_of as _shard_index,
    top_k_riskiest,
)
from repro.sim.trace import ReceiveRecord

__all__ = [
    "FleetReport",
    "MonitorFleet",
    "ShardStats",
    "TraceId",
    "TraceSummary",
]

# Serial fleet snapshot frame: ("abc-fleet-snapshot", version,
# config_row, group_frame).  Unlike the parallel durability plane
# (journals + periodic checkpoints), this is a one-shot image: the
# whole fleet -- configuration *and* state -- as one picklable frame.
_SNAPSHOT_MAGIC = "abc-fleet-snapshot"
_SNAPSHOT_VERSION = 1


class MonitorFleet:
    """N concurrent online ABC monitors behind one ingestion API.

    This is the *serial* front end over the share-nothing shard engine
    of :mod:`repro.runtime.shard`: one in-process
    :class:`~repro.runtime.shard.ShardGroup` holds every shard, and the
    fleet contributes trace routing, the user-facing callbacks, and the
    report.  :class:`repro.runtime.ParallelFleet` offers the same
    surface with the groups spread across worker processes.

    Args:
        xi: optional synchrony parameter every trace is monitored
            against; per-trace violations surface through
            ``on_violation`` and :meth:`violating_traces`.
        n_shards: number of independent hash shards.
        batch_size: per-trace pending-record watermark that triggers an
            automatic flush; larger batches mean fewer oracle calls and
            staler intermediate ratios.
        event_budget: optional cap on total live digraph events across
            the fleet, enforced by LRU eviction after any flush that
            exceeds it (``None`` disables eviction).  Eviction first
            tries exact settled-prefix removal; when pinning blocks it
            (a causal chain links history to the frontier), it falls
            back to summary compaction, so the budget is a real bound
            on chain-shaped traces too.
        auto_retire_after: optional idle age in fleet-wide ingests;
            a trace that has not been ingested into for this many
            ingests is automatically closed through the reopen-safe
            :class:`TraceSummary` path, exactly as an explicit
            :meth:`close` would (``None`` disables auto-retirement).
        compact_threshold: optional adaptive compaction cadence handed
            to every default-constructed monitor: a trace's digraph is
            summary-compacted whenever its live events outgrow its
            boundary (frontier + in-flight pins) by this factor,
            independent of budget pressure (``None`` disables; see
            :class:`~repro.analysis.online.OnlineAbcMonitor`).
        faulty: processes whose sent messages are dropped, applied to
            every trace (as in :class:`~repro.analysis.online.OnlineAbcMonitor`).
        drop_faulty: disable the faulty-sender filter when ``False``.
        kernel: detection-kernel name for every default-constructed
            monitor (``None`` follows the ambient ``REPRO_KERNEL``
            environment; per-trace specs may override).  Every kernel
            is exact -- a speed knob, never an answer change.
        monitor_factory: optional ``factory(trace_id) -> OnlineAbcMonitor``
            for per-trace monitor customization; the fleet chains its
            own violation bookkeeping onto the returned monitor's
            ``on_violation``.
        monitor_specs: declarative per-trace monitor configuration --
            one :class:`~repro.runtime.shard.MonitorSpec` applied to
            every trace, or a ``{trace_id: MonitorSpec}`` mapping
            (unlisted traces get the fleet defaults).  Plain data, so
            the same registry drives :class:`repro.runtime.ParallelFleet`
            process workers unchanged; ignored when ``monitor_factory``
            is given.
        on_violation: called as ``on_violation(trace_id, witness)`` the
            first time a trace's worst ratio reaches ``xi``.

    The fleet is a context manager: ``with MonitorFleet(...) as fleet:``
    closes it on exit.  A closed fleet rejects further ingestion with
    ``RuntimeError`` but still answers queries; :meth:`snapshot` /
    :meth:`restore` round-trip the whole fleet (configuration included)
    through one picklable frame or a file.
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        *,
        n_shards: int = 8,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        compact_threshold: float | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        kernel: str | None = None,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        monitor_specs: MonitorSpec | dict[TraceId, MonitorSpec] | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if event_budget is not None and event_budget < 1:
            raise ValueError("event_budget must be positive (or None)")
        if auto_retire_after is not None and auto_retire_after < 1:
            raise ValueError("auto_retire_after must be positive (or None)")
        if monitor_specs is not None and not isinstance(
            monitor_specs, (MonitorSpec, dict)
        ):
            raise TypeError(
                "monitor_specs must be a MonitorSpec or a "
                "{trace_id: MonitorSpec} mapping"
            )
        self.on_violation = on_violation
        self._closed = False
        self._group = ShardGroup(
            range(n_shards),
            xi=xi,
            batch_size=batch_size,
            event_budget=event_budget,
            auto_retire_after=auto_retire_after,
            compact_threshold=compact_threshold,
            faulty=faulty,
            drop_faulty=drop_faulty,
            kernel=kernel,
            monitor_factory=monitor_factory,
            monitor_specs=monitor_specs,
            emit_violation=self._emit_violation,
        )

    def _emit_violation(
        self, trace_id: TraceId, witness: CycleClassification
    ) -> None:
        # Read the attribute at fire time: callers may swap the callback
        # after construction (and callbacks may re-enter the fleet).
        if self.on_violation is not None:
            self.on_violation(trace_id, witness)

    # ------------------------------------------------------------------
    # configuration (readable and writable at runtime, as before the
    # engine extraction: these were plain attributes, and deployments
    # legitimately retune them mid-stream -- e.g. tightening the budget
    # under memory pressure)
    # ------------------------------------------------------------------

    @property
    def xi(self) -> Fraction | float | int | str | None:
        return self._group.xi

    @xi.setter
    def xi(self, value: Fraction | float | int | str | None) -> None:
        # Applies to monitors created from here on, as pre-extraction.
        self._group.xi = value

    @property
    def batch_size(self) -> int:
        return self._group.batch_size

    @batch_size.setter
    def batch_size(self, value: int) -> None:
        if value < 1:
            raise ValueError("batch_size must be positive")
        self._group.batch_size = value

    @property
    def event_budget(self) -> int | None:
        return self._group.event_budget

    @event_budget.setter
    def event_budget(self, value: int | None) -> None:
        if value is not None and value < 1:
            raise ValueError("event_budget must be positive (or None)")
        # set_budget invalidates the futility memo and enforces
        # immediately, so a tightened budget takes effect now rather
        # than at the next flush.
        self._group.set_budget(value)

    @property
    def auto_retire_after(self) -> int | None:
        return self._group.auto_retire_after

    @auto_retire_after.setter
    def auto_retire_after(self, value: int | None) -> None:
        if value is not None and value < 1:
            raise ValueError("auto_retire_after must be positive (or None)")
        self._group.auto_retire_after = value

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return self._group.faulty

    @faulty.setter
    def faulty(self, value: frozenset[ProcessId] | set[ProcessId]) -> None:
        # Applies to monitors created from here on (as before the
        # extraction: the value was read at trace creation).
        self._group.faulty = frozenset(value)

    @property
    def drop_faulty(self) -> bool:
        return self._group.drop_faulty

    @drop_faulty.setter
    def drop_faulty(self, value: bool) -> None:
        self._group.drop_faulty = value

    @property
    def kernel(self) -> str | None:
        """Detection-kernel name for monitors this fleet creates from
        here on (existing monitors keep their kernel until restored)."""
        return self._group.kernel

    @kernel.setter
    def kernel(self, value: str | None) -> None:
        if value is not None:
            from repro.core.kernel import resolve_kernel_name

            resolve_kernel_name(value)
        self._group.kernel = value

    @property
    def peak_live_events(self) -> int:
        return self._group.peak_live_events

    @property
    def budget_overruns(self) -> int:
        return self._group.budget_overruns

    @property
    def _shards(self) -> list[FleetShard]:
        """The serial group's shards, indexed by shard number (the whole
        shard space lives in one group here)."""
        return [self._group.shards[i] for i in range(len(self._group.shards))]

    @property
    def _futile_at(self) -> int | None:
        return self._group._futile_at

    @_futile_at.setter
    def _futile_at(self, value: int | None) -> None:
        self._group._futile_at = value

    # ------------------------------------------------------------------
    # routing and trace lifecycle
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._group.shards)

    def shard_of(self, trace_id: TraceId) -> int:
        """The shard index ``trace_id`` routes to (stable across runs)."""
        return _shard_index(trace_id, self.n_shards)

    def ingest(self, trace_id: TraceId, record: ReceiveRecord) -> None:
        """Route one receive record to its trace's pending buffer.

        Ingestion is O(1) buffering; oracle work happens when the
        trace's buffer reaches ``batch_size`` (or on :meth:`flush`),
        so a burst of records on one trace pays a single refresh.
        """
        if self._closed:
            raise RuntimeError("the fleet has been closed")
        self._group.ingest(self.shard_of(trace_id), trace_id, record)

    def ingest_many(
        self,
        stream: Iterable[tuple[TraceId, ReceiveRecord]],
        chunk_size: int = 1024,
    ) -> None:
        """Consume an interleaved ``(trace_id, record)`` stream (the
        shape :func:`repro.scenarios.generators.concurrent_workload`
        yields), grouped per shard.

        Unlike a loop of :meth:`ingest` calls -- which pays routing, the
        auto-retire sweep, and a budget probe per record, and flushes a
        trace the instant its buffer crosses the watermark -- bulk
        ingestion groups each ``chunk_size``-record chunk of the stream
        by shard, buffers whole shard batches at once, and flushes each
        watermark-crossing trace exactly once per shard batch, keeping
        the one-oracle-call-per-flush guarantee while the per-record
        overhead collapses into per-batch overhead.  Flush boundaries
        coarsen to the chunk, which never changes a reported ratio on
        streams carrying sends metadata (the worst ratio is a function
        of the observed graph, and eviction pins keep every cut safe).
        On metadata-free streams under an ``event_budget``, moving the
        flush points moves the budget-eviction points too, so *which*
        traces end up degraded -- with which lower-bound ratios -- can
        differ from the per-record loop, exactly as in the degraded
        regime the class docstring describes.  Idle-age
        auto-retirement is likewise probed once per shard batch: ages
        are measured in the same stream-order ticks as per-record
        ingestion (each record's touch time is its stream position),
        but a borderline-idle trace whose next record arrives in the
        same chunk is *not* retired mid-chunk the way a per-record
        loop would retire it.  Which borderline traces end up
        retired-then-reopened (and hence flagged degraded) can
        therefore differ from the per-record loop; each path is
        individually deterministic and sound (degraded ratios are
        flagged lower bounds, everything else exact).
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self._closed:
            raise RuntimeError("the fleet has been closed")
        group = self._group
        n_shards = self.n_shards
        route = _shard_index
        pending: dict[int, list[tuple[int, TraceId, ReceiveRecord]]] = {}
        count = 0
        tick = group.tick
        for trace_id, record in stream:
            tick += 1
            pending.setdefault(route(trace_id, n_shards), []).append(
                (tick, trace_id, record)
            )
            count += 1
            if count >= chunk_size:
                for shard_index in sorted(pending):
                    group.ingest_batch(shard_index, pending[shard_index])
                pending.clear()
                count = 0
                tick = group.tick
        for shard_index in sorted(pending):
            group.ingest_batch(shard_index, pending[shard_index])

    def flush(self, trace_id: TraceId | None = None) -> None:
        """Absorb pending records (of one trace, or of every trace)."""
        if trace_id is not None:
            self._group.flush_trace(self.shard_of(trace_id), trace_id)
        else:
            self._group.flush_all()

    def close(self, trace_id: TraceId | None = None) -> TraceSummary | None:
        """Retire a finished trace -- or, with no argument, the fleet.

        With a ``trace_id``: flush it, record an immutable summary, and
        free its digraph entirely.  Closing is the deterministic memory
        lever -- a closed trace costs a summary, not a digraph -- and
        keeps aggregate queries exact: the summary's ratio *is* the
        trace's final running worst ratio.  Closing an unknown trace
        raises ``KeyError``; closing a previously retired trace returns
        its summary unchanged.  If the trace was re-opened after
        retirement, the summaries are merged (maximum ratio, summed
        counters) and flagged degraded.

        With no argument (the context-manager exit path, matching
        :meth:`ParallelFleet.close`): flush everything and mark the
        fleet closed.  Idempotent; a closed fleet raises
        ``RuntimeError`` on further ingestion while every query --
        ratios, reports, per-trace close -- keeps answering from the
        final state.
        """
        if trace_id is None:
            if not self._closed:
                self._group.flush_all()
                self._closed = True
            return None
        return self._group.close(self.shard_of(trace_id), trace_id)

    def __enter__(self) -> "MonitorFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, path: str | os.PathLike | None = None) -> tuple:
        """The whole fleet as one picklable frame (optionally written
        to ``path`` in the durability plane's WAL frame format).

        The frame carries both the configuration row (xi, sharding,
        batching, budget, retirement, compaction, faulty set, monitor
        specs) and the shard group image -- pending buffers included,
        taken without flushing -- so :meth:`restore` rebuilds the fleet
        mid-stream, flush boundaries and all.  Callbacks
        (``on_violation``, ``monitor_factory``) are not picklable state
        and must be re-supplied to :meth:`restore`.
        """
        from repro.runtime import codec

        group = self._group
        config = (
            codec.encode_fraction(
                None if group.xi is None else Fraction(group.xi)
            ),
            self.n_shards,
            group.batch_size,
            group.event_budget,
            group.auto_retire_after,
            group.compact_threshold,
            tuple(group.faulty),
            group.drop_faulty,
            codec.encode_specs(group.monitor_specs),
            group.kernel,
        )
        frame = (
            _SNAPSHOT_MAGIC,
            _SNAPSHOT_VERSION,
            config,
            group.snapshot(),
        )
        if path is not None:
            from repro.runtime.durable import write_frames

            write_frames(path, [frame])
        return frame

    @classmethod
    def restore(
        cls,
        source: tuple | str | os.PathLike,
        *,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None] | None = None,
    ) -> "MonitorFleet":
        """Rebuild a fleet from a :meth:`snapshot` frame or file.

        Per-trace worst ratios, degraded flags, violating sets, pending
        buffers and all counters are bit-identical to the snapshotted
        fleet's; ``monitor_factory`` / ``on_violation`` are re-attached
        from the keyword arguments (callbacks do not survive pickling).
        """
        if isinstance(source, (str, os.PathLike)):
            from repro.runtime.durable import read_frames

            frames = list(read_frames(source))
            if not frames:
                raise ValueError(f"no snapshot frame in {source!r}")
            source = frames[0]
        if not (
            isinstance(source, tuple)
            and len(source) == 4
            and source[0] == _SNAPSHOT_MAGIC
        ):
            raise ValueError("not a MonitorFleet snapshot frame")
        _magic, version, config, group_frame = source
        if version != _SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported fleet snapshot version {version!r}"
            )
        from repro.runtime import codec

        # Pre-kernel frames are 9-tuples; tolerate them (their monitors
        # then follow the restoring process's ambient kernel).
        (
            xi_wire,
            n_shards,
            batch_size,
            event_budget,
            auto_retire_after,
            compact_threshold,
            faulty,
            drop_faulty,
            specs_wire,
            *rest,
        ) = config
        fleet = cls(
            codec.decode_fraction(xi_wire),
            n_shards=n_shards,
            batch_size=batch_size,
            event_budget=event_budget,
            auto_retire_after=auto_retire_after,
            compact_threshold=compact_threshold,
            faulty=frozenset(faulty),
            drop_faulty=drop_faulty,
            kernel=rest[0] if rest else None,
            monitor_factory=monitor_factory,
            monitor_specs=codec.decode_specs(specs_wire),
            on_violation=on_violation,
        )
        fleet._group.load_snapshot(group_frame)
        return fleet

    # ------------------------------------------------------------------
    # per-trace queries
    # ------------------------------------------------------------------

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        """The trace's exact running worst relevant ratio (pending
        records flushed first); falls back to the retired summary.  A
        trace re-opened after retirement reports the maximum of its
        retired summary and its post-reopen suffix."""
        return self._group.worst_ratio(self.shard_of(trace_id), trace_id)

    def monitor_of(self, trace_id: TraceId) -> OnlineAbcMonitor:
        """Direct access to an open trace's monitor (flushed first), for
        speculative queries (``would_violate``) or inspection."""
        return self._group.monitor_of(self.shard_of(trace_id), trace_id)

    def is_degraded(self, trace_id: TraceId) -> bool:
        """Whether the trace's ratio is a lower bound rather than exact
        (unsafe eviction detected, or the trace was re-opened)."""
        return self._group.is_degraded(self.shard_of(trace_id), trace_id)

    # ------------------------------------------------------------------
    # fleet-level aggregates
    # ------------------------------------------------------------------

    @property
    def live_events(self) -> int:
        """Total live digraph events across all open monitors."""
        return self._group.live_events

    @property
    def open_traces(self) -> int:
        return self._group.open_traces

    @property
    def retired_traces(self) -> int:
        """Retired traces not currently re-opened (each trace counts
        exactly once between here and :attr:`open_traces`)."""
        return self._group.retired_traces

    def __len__(self) -> int:
        """Number of distinct traces ever seen (open + retired)."""
        return self.open_traces + self.retired_traces

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        """Exact population histogram: how many traces sit at each worst
        relevant ratio (``None`` = no relevant cycle).  Ratios are exact
        rationals, so the histogram needs no binning; bucket the keys
        with ``float()`` for plotting."""
        return ratio_histogram(self._group.all_ratios())

    def violating_traces(self) -> tuple[TraceId, ...]:
        """Ids of traces whose worst ratio reached the monitored ``xi``,
        in first-detection order."""
        self.flush()
        return self._group.violating_ids()

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        """The ``k`` traces with the highest worst ratio, descending
        (ties broken by trace id; traces with no relevant cycle last).

        The closer a trace's ratio is to the deployment's ``Xi``, the
        less asynchrony headroom it has left -- this is the fleet-level
        watchlist."""
        return top_k_riskiest(self._group.all_ratios(), k)

    def report(self) -> FleetReport:
        """A :class:`FleetReport` snapshot (pending records flushed)."""
        self.flush()
        group = self._group
        stats = group.shard_stats()
        return FleetReport(
            xi=None if self.xi is None else Fraction(self.xi),
            n_shards=self.n_shards,
            batch_size=group.batch_size,
            event_budget=group.event_budget,
            open_traces=group.open_traces,
            retired_traces=group.retired_traces,
            records=sum(s.records for s in stats),
            flushes=sum(s.flushes for s in stats),
            oracle_calls=sum(s.oracle_calls for s in stats),
            live_events=group.live_events,
            peak_live_events=group.peak_live_events,
            tombstoned_events=sum(s.tombstoned_events for s in stats),
            evictions=sum(s.evictions for s in stats),
            summary_compactions=sum(s.summary_compactions for s in stats),
            summary_edges=sum(s.summary_edges for s in stats),
            auto_retired=sum(s.auto_retired for s in stats),
            budget_overruns=group.budget_overruns,
            degraded_traces=group.degraded_traces(),
            violating_traces=group.violating_ids(),
            shards=tuple(stats),
            auto_compactions=sum(s.auto_compactions for s in stats),
        )

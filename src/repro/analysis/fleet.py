"""Fleet monitoring: many concurrent executions behind one ingestion API.

The Section-6 variants (?ABC / <>ABC) are stated per execution, but a
production deployment monitors a *population* of executions at once --
one growing trace per session, service, or shard pair -- the regime the
asynchronous-fleet literature reasons about in aggregate.  Running one
:class:`~repro.analysis.online.OnlineAbcMonitor` per trace in a plain
loop is exact but pays one Farey-successor oracle call per message
record and holds every trace's full digraph live forever.

:class:`MonitorFleet` keeps the per-trace exactness while amortizing
both costs across the population:

* **Sharding.**  Traces are hash-routed to ``n_shards`` independent
  shard structures (stable CRC32 of the trace id, so placement is
  reproducible across runs and machines).  Shards share no mutable
  state -- a deployment may drive each shard from its own worker thread
  or process; within one shard, traces are fully independent monitors.
* **Batching.**  :meth:`MonitorFleet.ingest` only buffers; when a
  trace's pending buffer reaches the ``batch_size`` watermark (or on an
  explicit :meth:`MonitorFleet.flush`), the burst is absorbed through
  :meth:`~repro.analysis.online.OnlineAbcMonitor.observe_batch` with a
  single deferred worst-ratio refresh -- one oracle call per flush
  instead of one per record, which is where the fleet's throughput over
  the naive loop comes from (``benchmarks/bench_fleet.py``).
* **Memory policy.**  An optional global ``event_budget`` bounds the
  total number of live digraph events across the fleet.  When a flush
  pushes the fleet over budget, prefixes are evicted from the
  least-recently-ingested traces first
  (:meth:`~repro.analysis.online.OnlineAbcMonitor.forget_prefix`, with
  each trace's per-process frontier and the send events of its
  in-flight messages pinned): exact no-crossing removal where it
  applies, with a fallback to *summary compaction* -- the prefix is
  replaced by boundary-to-boundary summary edges -- on chain-shaped
  traces where no prefix is exactly removable, so the budget holds on
  every workload shape.  :meth:`MonitorFleet.close` retires a finished
  trace to an immutable :class:`TraceSummary`, freeing its digraph
  entirely, and ``auto_retire_after`` closes idle traces the same way
  without an explicit call.
* **Aggregates.**  :meth:`MonitorFleet.worst_ratio_histogram`,
  :meth:`MonitorFleet.violating_traces`,
  :meth:`MonitorFleet.top_k_riskiest` and the :class:`FleetReport`
  snapshot expose the fleet-level view (per-shard oracle and memory
  counters included) without touching individual monitors.

Exactness contract.  Batching never changes a reported ratio: the worst
relevant ratio is a function of the observed graph, so at every flush
boundary each trace's :meth:`MonitorFleet.worst_ratio` is bit-identical
to a standalone monitor fed the same records one at a time (the property
test in ``tests/analysis/test_fleet.py``).  Budget-driven eviction is
exact *when the stream carries send metadata* (``record.sends``, as
simulator traces and :func:`repro.scenarios.generators.concurrent_workload`
streams do): the fleet then knows which send events still have a message
in flight and pins them, so no future edge ever crosses a forgotten
prefix -- and summary compaction preserves every query above the
trace's running worst ratio, the only range its monitor ever refreshes
in, so the fallback is just as exact.  Streams without send metadata can be evicted past an in-flight
send; the late edge is then skipped, counted, and the trace flagged
``degraded`` -- its ratio remains a sound lower bound with the
historical maximum kept, and the flag is surfaced per trace and in the
fleet report instead of silently losing exactness.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

from repro.analysis.online import OnlineAbcMonitor
from repro.core.cycles import CycleClassification
from repro.core.events import Event, ProcessId
from repro.sim.trace import ReceiveRecord

__all__ = [
    "FleetReport",
    "MonitorFleet",
    "ShardStats",
    "TraceId",
    "TraceSummary",
]

TraceId = str | int
"""Trace identifiers: any value with a stable ``str()`` form."""


def _shard_index(trace_id: TraceId, n_shards: int) -> int:
    """Stable hash routing (CRC32 of the id's string form): independent
    of interpreter hash randomization, so trace placement -- and with it
    every per-shard counter -- is reproducible across runs."""
    return zlib.crc32(str(trace_id).encode()) % n_shards


@dataclass(frozen=True)
class TraceSummary:
    """Immutable record of a retired (closed) trace.

    Attributes:
        trace_id: the trace's fleet-wide identifier.
        worst_ratio: the exact running worst relevant ratio at close
            (``None`` = no relevant cycle ever observed).
        n_records: receive records ingested over the trace's lifetime.
        oracle_calls: negative-cycle runs the trace's monitor issued.
        violation: the first violating witness cycle, when ``xi`` was
            monitored and reached.
        degraded: ``True`` when exactness was lost -- a forgotten prefix
            turned out to have an in-flight message crossing it, or the
            trace was re-opened after retirement; the ratio is then a
            lower bound (historical maximum kept) rather than exact.
    """

    trace_id: TraceId
    worst_ratio: Fraction | None
    n_records: int
    oracle_calls: int
    violation: CycleClassification | None
    degraded: bool


@dataclass(frozen=True)
class ShardStats:
    """Counters of one hash shard (see :class:`FleetReport`)."""

    shard: int
    open_traces: int
    retired_traces: int
    records: int
    flushes: int
    oracle_calls: int
    live_events: int
    tombstoned_events: int
    evictions: int
    summary_compactions: int
    summary_edges: int
    auto_retired: int


@dataclass(frozen=True)
class FleetReport:
    """Point-in-time snapshot of the whole fleet (all pending flushed).

    Attributes:
        open_traces / retired_traces: population counts.
        records / flushes / oracle_calls: lifetime work counters; the
            batching win is visible as ``oracle_calls`` growing with
            flushes rather than with message records.
        live_events / peak_live_events: current and high-water total of
            live digraph events across all open monitors (the watermark
            is sampled after each flush's budget enforcement; absorption
            may transiently exceed it by one batch).  With an
            ``event_budget`` configured and no overruns,
            ``peak_live_events <= event_budget`` is the memory
            guarantee of the eviction policy.
        tombstoned_events / evictions: events dropped by budget-driven
            prefix forgetting, and how many times a trace was evicted.
        summary_compactions / summary_edges: eviction passes that fell
            back to summary compaction because exact no-crossing
            removal was blocked (chain-shaped traces), and the live
            summary edges currently standing in for compacted history.
        auto_retired: traces closed by idle-age auto-retirement
            (``auto_retire_after``), over the fleet's lifetime.
        budget_overruns: enforcement passes that could not get back
            under budget even with summary compaction (every remaining
            trace was already compacted to its pinned core).
        degraded_traces: traces whose ratio is a lower bound rather than
            exact (see :class:`TraceSummary`).
        violating_traces: ids of traces whose worst ratio reached the
            monitored ``xi``, in detection order.
        shards: per-shard breakdowns of the counters above.
    """

    xi: Fraction | None
    n_shards: int
    batch_size: int
    event_budget: int | None
    open_traces: int
    retired_traces: int
    records: int
    flushes: int
    oracle_calls: int
    live_events: int
    peak_live_events: int
    tombstoned_events: int
    evictions: int
    summary_compactions: int
    summary_edges: int
    auto_retired: int
    budget_overruns: int
    degraded_traces: int
    violating_traces: tuple[TraceId, ...]
    shards: tuple[ShardStats, ...]


class _TraceState:
    """One open trace: its monitor plus the fleet-side bookkeeping."""

    __slots__ = (
        "monitor",
        "pending",
        "in_flight",
        "frontier",
        "n_records",
        "last_touch",
        "live_cached",
        "reopened",
        "evict_marker",
    )

    def __init__(self, monitor: OnlineAbcMonitor, reopened: bool) -> None:
        self.monitor = monitor
        self.pending: list[ReceiveRecord] = []
        # (send event, destination process) -> messages announced by a
        # record's ``sends`` but not yet observed arriving.  Positive
        # entries pin their send event against eviction.
        self.in_flight: Counter[tuple[Event, ProcessId]] = Counter()
        self.frontier: dict[ProcessId, int] = {}
        self.n_records = 0
        self.last_touch = 0
        self.live_cached = 0
        self.reopened = reopened
        # Event count at the last eviction attempt that removed nothing.
        # Pins and settledness only change when events are absorbed, so
        # retrying at the same count is provably futile -- this memo
        # keeps permanently-over-budget fleets from re-sweeping every
        # unsettleable trace on every flush.
        self.evict_marker: int | None = None

    @property
    def degraded(self) -> bool:
        return self.reopened or self.monitor.forgotten_message_edges > 0

    def pinned_events(self) -> list[Event]:
        """Events eviction must keep live: each process's frontier (its
        next local edge attaches there) and every send event with a
        message still in flight (its message edge is still to come)."""
        pinned = [
            Event(process, index) for process, index in self.frontier.items()
        ]
        pinned.extend(key[0] for key, n in self.in_flight.items() if n > 0)
        return pinned


class _Shard:
    """One hash shard: an independent group of trace monitors.

    Shards never touch each other's state, so a deployment may pin each
    shard to its own worker; the fleet front end only routes.
    """

    __slots__ = (
        "index",
        "traces",
        "retired",
        "records",
        "flushes",
        "tombstoned",
        "evictions",
        "summary_compactions",
        "auto_retired",
        "retired_oracle_calls",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        # Insertion order doubles as LRU ingest order: ``ingest`` moves
        # the touched trace to the end, so the first entry is always the
        # least-recently-ingested open trace (the auto-retire probe).
        self.traces: dict[TraceId, _TraceState] = {}
        self.retired: dict[TraceId, TraceSummary] = {}
        self.records = 0
        self.flushes = 0
        self.tombstoned = 0
        self.evictions = 0
        self.summary_compactions = 0
        self.auto_retired = 0
        self.retired_oracle_calls = 0

    def oracle_calls(self) -> int:
        return self.retired_oracle_calls + sum(
            state.monitor.oracle_calls for state in self.traces.values()
        )

    def live_events(self) -> int:
        return sum(state.monitor.n_events for state in self.traces.values())

    def n_retired(self) -> int:
        """Retired traces, not counting ids that have been re-opened
        (those are listed as open, with their summaries merged in)."""
        return sum(1 for trace_id in self.retired if trace_id not in self.traces)

    def summary_edges(self) -> int:
        return sum(
            state.monitor.summary_edges for state in self.traces.values()
        )

    def stats(self) -> ShardStats:
        return ShardStats(
            shard=self.index,
            open_traces=len(self.traces),
            retired_traces=self.n_retired(),
            records=self.records,
            flushes=self.flushes,
            oracle_calls=self.oracle_calls(),
            live_events=self.live_events(),
            tombstoned_events=self.tombstoned,
            evictions=self.evictions,
            summary_compactions=self.summary_compactions,
            summary_edges=self.summary_edges(),
            auto_retired=self.auto_retired,
        )


class MonitorFleet:
    """N concurrent online ABC monitors behind one ingestion API.

    Args:
        xi: optional synchrony parameter every trace is monitored
            against; per-trace violations surface through
            ``on_violation`` and :meth:`violating_traces`.
        n_shards: number of independent hash shards.
        batch_size: per-trace pending-record watermark that triggers an
            automatic flush; larger batches mean fewer oracle calls and
            staler intermediate ratios.
        event_budget: optional cap on total live digraph events across
            the fleet, enforced by LRU eviction after any flush that
            exceeds it (``None`` disables eviction).  Eviction first
            tries exact settled-prefix removal; when pinning blocks it
            (a causal chain links history to the frontier), it falls
            back to summary compaction, so the budget is a real bound
            on chain-shaped traces too.
        auto_retire_after: optional idle age in fleet-wide ingests;
            a trace that has not been ingested into for this many
            ingests is automatically closed through the reopen-safe
            :class:`TraceSummary` path, exactly as an explicit
            :meth:`close` would (``None`` disables auto-retirement).
        faulty: processes whose sent messages are dropped, applied to
            every trace (as in :class:`~repro.analysis.online.OnlineAbcMonitor`).
        drop_faulty: disable the faulty-sender filter when ``False``.
        monitor_factory: optional ``factory(trace_id) -> OnlineAbcMonitor``
            for per-trace monitor customization; the fleet chains its
            own violation bookkeeping onto the returned monitor's
            ``on_violation``.
        on_violation: called as ``on_violation(trace_id, witness)`` the
            first time a trace's worst ratio reaches ``xi``.
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        *,
        n_shards: int = 8,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if event_budget is not None and event_budget < 1:
            raise ValueError("event_budget must be positive (or None)")
        if auto_retire_after is not None and auto_retire_after < 1:
            raise ValueError("auto_retire_after must be positive (or None)")
        self.xi = xi
        self.batch_size = batch_size
        self.event_budget = event_budget
        self.auto_retire_after = auto_retire_after
        self.faulty = frozenset(faulty)
        self.drop_faulty = drop_faulty
        self.on_violation = on_violation
        self._monitor_factory = monitor_factory
        self._shards = [_Shard(i) for i in range(n_shards)]
        self._tick = 0
        self._live_events = 0
        self.peak_live_events = 0
        self.budget_overruns = 0
        self._violations: list[TraceId] = []
        self._enforcing = False
        # Live-event count at the last enforcement pass that ended over
        # budget; skip re-sweeping until something new is absorbed.
        self._futile_at: int | None = None
        # (trace_id, witness, chained monitor callback): violations are
        # recorded immediately but callbacks fire only after the
        # triggering flush finishes its bookkeeping, so a callback may
        # safely re-enter the fleet (e.g. close() the violating trace).
        self._deferred_violations: list[
            tuple[TraceId, CycleClassification, Callable | None]
        ] = []

    # ------------------------------------------------------------------
    # routing and trace lifecycle
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, trace_id: TraceId) -> int:
        """The shard index ``trace_id`` routes to (stable across runs)."""
        return _shard_index(trace_id, len(self._shards))

    def _state(self, shard: _Shard, trace_id: TraceId) -> _TraceState:
        state = shard.traces.get(trace_id)
        if state is None:
            # Re-opening a retired trace loses its digraph history: the
            # fresh monitor is exact on the new suffix only, so the trace
            # is permanently flagged degraded (ratios stay lower bounds
            # via the max-merge in close()).
            reopened = trace_id in shard.retired
            monitor = self._make_monitor(trace_id)
            state = _TraceState(monitor, reopened=reopened)
            shard.traces[trace_id] = state
        return state

    def _make_monitor(self, trace_id: TraceId) -> OnlineAbcMonitor:
        if self._monitor_factory is not None:
            monitor = self._monitor_factory(trace_id)
        else:
            monitor = OnlineAbcMonitor(
                xi=self.xi, faulty=self.faulty, drop_faulty=self.drop_faulty
            )
        chained = monitor.on_violation

        def note(witness: CycleClassification) -> None:
            # Fires mid-flush (inside observe_batch): record now, defer
            # the user-facing callbacks until the flush is reentrancy-safe.
            self._violations.append(trace_id)
            self._deferred_violations.append((trace_id, witness, chained))

        monitor.on_violation = note
        return monitor

    def _fire_deferred_violations(self) -> None:
        while self._deferred_violations:
            trace_id, witness, chained = self._deferred_violations.pop(0)
            if self.on_violation is not None:
                self.on_violation(trace_id, witness)
            if chained is not None:
                chained(witness)

    def ingest(self, trace_id: TraceId, record: ReceiveRecord) -> None:
        """Route one receive record to its trace's pending buffer.

        Ingestion is O(1) buffering; oracle work happens when the
        trace's buffer reaches ``batch_size`` (or on :meth:`flush`),
        so a burst of records on one trace pays a single refresh.
        """
        shard = self._shards[self.shard_of(trace_id)]
        state = self._state(shard, trace_id)
        self._tick += 1
        state.last_touch = self._tick
        # Keep shard.traces in ingest order (LRU): the auto-retire sweep
        # only ever probes each shard's first entry.
        shard.traces[trace_id] = shard.traces.pop(trace_id)
        state.pending.append(record)
        shard.records += 1
        self._auto_retire()
        if len(state.pending) >= self.batch_size:
            self._flush_state(shard, state)
            self._maybe_enforce_budget()

    def ingest_many(
        self, stream: Iterable[tuple[TraceId, ReceiveRecord]]
    ) -> None:
        """Consume an interleaved ``(trace_id, record)`` stream (the
        shape :func:`repro.scenarios.generators.concurrent_workload`
        yields)."""
        for trace_id, record in stream:
            self.ingest(trace_id, record)

    def flush(self, trace_id: TraceId | None = None) -> None:
        """Absorb pending records (of one trace, or of every trace)."""
        if trace_id is not None:
            shard = self._shards[self.shard_of(trace_id)]
            state = shard.traces.get(trace_id)
            if state is not None:
                self._flush_state(shard, state)
        else:
            for shard in self._shards:
                # Snapshot: a violation callback may close() traces
                # (their detached states flush as no-ops afterwards).
                for state in list(shard.traces.values()):
                    self._flush_state(shard, state)
        self._maybe_enforce_budget()

    def close(self, trace_id: TraceId) -> TraceSummary:
        """Retire a finished trace: flush it, record an immutable
        summary, and free its digraph entirely.

        Closing is the deterministic memory lever -- a closed trace costs
        a summary, not a digraph -- and keeps aggregate queries exact:
        the summary's ratio *is* the trace's final running worst ratio.
        Closing an unknown trace raises ``KeyError``; closing a
        previously retired trace returns its summary unchanged.  If the
        trace was re-opened after retirement, the summaries are merged
        (maximum ratio, summed counters) and flagged degraded.
        """
        shard = self._shards[self.shard_of(trace_id)]
        state = shard.traces.get(trace_id)
        if state is None:
            summary = shard.retired.get(trace_id)
            if summary is None:
                raise KeyError(f"unknown trace {trace_id!r}")
            return summary
        self._flush_state(shard, state)
        if shard.traces.get(trace_id) is not state:
            # A violation callback fired by that flush already closed
            # the trace reentrantly; its summary is authoritative.
            return shard.retired[trace_id]
        monitor = state.monitor
        summary = TraceSummary(
            trace_id=trace_id,
            worst_ratio=monitor.worst_ratio,
            n_records=state.n_records,
            oracle_calls=monitor.oracle_calls,
            violation=monitor.violation,
            degraded=state.degraded,
        )
        previous = shard.retired.get(trace_id)
        if previous is not None:
            ratios = [
                r
                for r in (previous.worst_ratio, summary.worst_ratio)
                if r is not None
            ]
            summary = TraceSummary(
                trace_id=trace_id,
                worst_ratio=max(ratios) if ratios else None,
                n_records=previous.n_records + summary.n_records,
                oracle_calls=previous.oracle_calls + summary.oracle_calls,
                violation=previous.violation or summary.violation,
                degraded=True,
            )
        shard.retired[trace_id] = summary
        shard.retired_oracle_calls += monitor.oracle_calls
        self._live_events -= monitor.n_events
        del shard.traces[trace_id]
        # The fleet's composition changed: a sweep that was futile
        # before may now succeed at the same live count.
        self._futile_at = None
        return summary

    def _auto_retire(self) -> None:
        """Close traces idle for ``auto_retire_after`` fleet ingests.

        Each shard's trace table is kept in ingest order, so only its
        first entry can be stale; the sweep pops stale heads until each
        shard's oldest trace is young enough -- O(shards) per ingest
        when nothing retires.  Retirement goes through :meth:`close`,
        i.e. the reopen-safe :class:`TraceSummary` path: a late record
        for a retired trace re-opens it with gap-filled timelines and
        the merged summary flagged degraded, exactly as after an
        explicit close.
        """
        age = self.auto_retire_after
        if age is None:
            return
        for shard in self._shards:
            while shard.traces:
                trace_id, state = next(iter(shard.traces.items()))
                if self._tick - state.last_touch < age:
                    break
                self.close(trace_id)
                shard.auto_retired += 1

    # ------------------------------------------------------------------
    # flushing and the memory budget
    # ------------------------------------------------------------------

    def _flush_state(self, shard: _Shard, state: _TraceState) -> None:
        if not state.pending:
            return
        batch = state.pending
        state.pending = []
        if state.reopened:
            self._fill_gaps(state.monitor, batch)
        for record in batch:
            state.frontier[record.event.process] = record.event.index
            if record.sender is not None and record.send_event is not None:
                key = (record.send_event, record.event.process)
                if state.in_flight.get(key, 0) > 0:
                    state.in_flight[key] -= 1
                    if state.in_flight[key] == 0:
                        del state.in_flight[key]
            for send in record.sends:
                state.in_flight[(record.event, send.dest)] += 1
        state.monitor.observe_batch(batch)
        state.n_records += len(batch)
        shard.flushes += 1
        self._live_events += state.monitor.n_events - state.live_cached
        state.live_cached = state.monitor.n_events
        # Absorbing records invalidates every "retrying is futile" memo:
        # pins and settledness moved, and comparing raw live-event
        # *counts* alone can collide (absorb N, evict N elsewhere lands
        # back on the memoized count and would skip a viable attempt).
        state.evict_marker = None
        self._futile_at = None
        # Bookkeeping is consistent from here on: violation callbacks
        # recorded by the batch may now re-enter the fleet.
        self._fire_deferred_violations()

    @staticmethod
    def _fill_gaps(
        monitor: OnlineAbcMonitor, batch: list[ReceiveRecord]
    ) -> None:
        """Reconstruct the local-timeline skeleton a re-opened trace's
        fresh monitor is missing.

        A record arriving after retirement carries its original event
        index, which the fresh monitor's per-process timelines don't
        reach yet.  The gap events are exactly the (process, index)
        identities of the retired prefix, so adding them as bare events
        restores local order -- and lets late messages from pre-close
        send events re-attach -- while the prefix's own message edges
        stay lost, which is what the trace's ``degraded`` flag reports.
        """
        filled: dict[ProcessId, int] = {}

        def fill_below(process: ProcessId, stop: int) -> None:
            expected = filled.get(process, monitor.n_events_of(process))
            for gap in range(expected, stop):
                monitor.observe_event(Event(process, gap))
            filled[process] = max(expected, stop)

        for record in batch:
            if record.send_event is not None:
                # The triggering send may reference the retired prefix
                # of a process with no receive in this batch.
                fill_below(
                    record.send_event.process, record.send_event.index + 1
                )
            fill_below(record.event.process, record.event.index)
            filled[record.event.process] = record.event.index + 1

    def _maybe_enforce_budget(self) -> None:
        """Evict prefixes, least-recently-ingested traces first, until
        the fleet is back under its event budget.

        Per trace, eviction first tries the prefix the no-crossing
        criterion proves exactly safe (frontiers and in-flight sends
        pinned).  When that removes nothing -- a causal chain links
        history to the frontier, the shape where the old fleet was
        powerless -- it falls back to *summary compaction* of
        everything below the pins: the monitor replaces the prefix by
        boundary summary edges that keep every reported ratio
        bit-identical (see
        :meth:`~repro.analysis.online.OnlineAbcMonitor.forget_prefix`),
        so the budget is a real bound on chain-shaped traces too.
        Neither path trades exactness for memory; a pass that cannot
        reach the budget -- every survivor is already compacted to its
        pinned core -- is counted in ``budget_overruns`` rather than
        forced.

        ``peak_live_events`` is the post-enforcement watermark: between
        absorbing a batch and enforcing the budget, the live count may
        transiently exceed it by at most that one batch.
        """
        budget = self.event_budget
        if budget is None or self._live_events <= budget or self._enforcing:
            self._note_peak()
            return
        if self._live_events == self._futile_at:
            # Nothing absorbed since a pass that could not reach the
            # budget: re-sweeping is provably futile, skip it.
            self._note_peak()
            return
        self._enforcing = True
        try:
            candidates = sorted(
                (
                    (state.last_touch, shard, trace_id, state)
                    for shard in self._shards
                    for trace_id, state in shard.traces.items()
                ),
                key=lambda item: item[0],
            )
            for _touch, shard, trace_id, state in candidates:
                if self._live_events <= budget:
                    self._futile_at = None
                    return
                if shard.traces.get(trace_id) is not state:
                    continue  # closed reentrantly earlier in this pass
                # Pending buffers are NOT force-flushed here: eviction
                # works on the absorbed digraph, whose pins (frontier,
                # announced in-flight sends) already cover everything a
                # pending record can reference, and forcing flushes
                # would collapse the batching win fleet-wide whenever
                # the fleet sits over budget.
                if state.monitor.n_events == state.evict_marker:
                    continue  # unchanged since a known-futile attempt
                pinned = state.pinned_events()
                settled = state.monitor.settled_prefix(pinned)
                removed = (
                    state.monitor.forget_prefix(settled) if settled else 0
                )
                if self._live_events - removed > budget:
                    # Exact removal missed the budget -- blocked
                    # entirely on chain shapes, or insufficient on
                    # traces mixing settleable activity with a
                    # chain-shaped core: compact the remaining past
                    # into summary edges too, so the budget stays a
                    # real bound on every shape.
                    cut = state.monitor.compactable_prefix(pinned)
                    if cut:
                        summarized = state.monitor.forget_prefix(
                            cut, summarize=True
                        )
                        if summarized:
                            shard.summary_compactions += 1
                            removed += summarized
                if removed:
                    state.evict_marker = None
                    shard.evictions += 1
                    shard.tombstoned += removed
                    self._live_events -= removed
                    state.live_cached = state.monitor.n_events
                else:
                    state.evict_marker = state.monitor.n_events
            if self._live_events > budget:
                self.budget_overruns += 1
                self._futile_at = self._live_events
            else:
                self._futile_at = None
        finally:
            self._enforcing = False
            self._note_peak()

    def _note_peak(self) -> None:
        if self._live_events > self.peak_live_events:
            self.peak_live_events = self._live_events

    # ------------------------------------------------------------------
    # per-trace queries
    # ------------------------------------------------------------------

    @staticmethod
    def _merged_ratio(
        state: _TraceState, summary: TraceSummary | None
    ) -> Fraction | None:
        """An open trace's ratio, merged with its pre-reopen summary:
        the historical maximum is kept across retirement, matching the
        lower-bound semantics of the ``degraded`` flag."""
        ratio = state.monitor.worst_ratio
        if summary is None or summary.worst_ratio is None:
            return ratio
        if ratio is None or summary.worst_ratio > ratio:
            return summary.worst_ratio
        return ratio

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        """The trace's exact running worst relevant ratio (pending
        records flushed first); falls back to the retired summary.  A
        trace re-opened after retirement reports the maximum of its
        retired summary and its post-reopen suffix."""
        shard = self._shards[self.shard_of(trace_id)]
        state = shard.traces.get(trace_id)
        if state is not None:
            self._flush_state(shard, state)
            self._maybe_enforce_budget()
            return self._merged_ratio(state, shard.retired.get(trace_id))
        summary = shard.retired.get(trace_id)
        if summary is None:
            raise KeyError(f"unknown trace {trace_id!r}")
        return summary.worst_ratio

    def monitor_of(self, trace_id: TraceId) -> OnlineAbcMonitor:
        """Direct access to an open trace's monitor (flushed first), for
        speculative queries (``would_violate``) or inspection."""
        shard = self._shards[self.shard_of(trace_id)]
        state = shard.traces.get(trace_id)
        if state is None:
            raise KeyError(f"unknown or retired trace {trace_id!r}")
        self._flush_state(shard, state)
        self._maybe_enforce_budget()
        return state.monitor

    def is_degraded(self, trace_id: TraceId) -> bool:
        """Whether the trace's ratio is a lower bound rather than exact
        (unsafe eviction detected, or the trace was re-opened)."""
        shard = self._shards[self.shard_of(trace_id)]
        state = shard.traces.get(trace_id)
        if state is not None:
            return state.degraded
        summary = shard.retired.get(trace_id)
        if summary is None:
            raise KeyError(f"unknown trace {trace_id!r}")
        return summary.degraded

    # ------------------------------------------------------------------
    # fleet-level aggregates
    # ------------------------------------------------------------------

    def _all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        """(trace_id, worst ratio) over open and retired traces, with
        everything pending flushed so the ratios are current.  Each
        trace appears exactly once: a trace re-opened after retirement
        is listed as open, with its retired maximum merged in."""
        self.flush()
        out: list[tuple[TraceId, Fraction | None]] = []
        for shard in self._shards:
            for trace_id, state in shard.traces.items():
                out.append(
                    (trace_id, self._merged_ratio(state, shard.retired.get(trace_id)))
                )
            for trace_id, summary in shard.retired.items():
                if trace_id not in shard.traces:
                    out.append((trace_id, summary.worst_ratio))
        return out

    @property
    def live_events(self) -> int:
        """Total live digraph events across all open monitors."""
        return self._live_events

    @property
    def open_traces(self) -> int:
        return sum(len(shard.traces) for shard in self._shards)

    @property
    def retired_traces(self) -> int:
        """Retired traces not currently re-opened (each trace counts
        exactly once between here and :attr:`open_traces`)."""
        return sum(shard.n_retired() for shard in self._shards)

    def __len__(self) -> int:
        """Number of distinct traces ever seen (open + retired)."""
        return self.open_traces + self.retired_traces

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        """Exact population histogram: how many traces sit at each worst
        relevant ratio (``None`` = no relevant cycle).  Ratios are exact
        rationals, so the histogram needs no binning; bucket the keys
        with ``float()`` for plotting."""
        return dict(Counter(ratio for _trace_id, ratio in self._all_ratios()))

    def _violating_ids(self) -> tuple[TraceId, ...]:
        """Deduplicated violation ids, first-detection order (no flush)."""
        return tuple(dict.fromkeys(self._violations))

    def violating_traces(self) -> tuple[TraceId, ...]:
        """Ids of traces whose worst ratio reached the monitored ``xi``,
        in first-detection order."""
        self.flush()
        return self._violating_ids()

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        """The ``k`` traces with the highest worst ratio, descending
        (ties broken by trace id; traces with no relevant cycle last).

        The closer a trace's ratio is to the deployment's ``Xi``, the
        less asynchrony headroom it has left -- this is the fleet-level
        watchlist."""
        if k < 0:
            raise ValueError("k must be non-negative")
        items = sorted(self._all_ratios(), key=lambda it: str(it[0]))
        items.sort(
            key=lambda it: it[1] if it[1] is not None else Fraction(0),
            reverse=True,
        )
        return items[:k]

    def report(self) -> FleetReport:
        """A :class:`FleetReport` snapshot (pending records flushed)."""
        self.flush()
        # One count per distinct trace: an open trace re-opened after
        # retirement is already degraded via its ``reopened`` flag.
        degraded = sum(
            1
            for shard in self._shards
            for state in shard.traces.values()
            if state.degraded
        ) + sum(
            1
            for shard in self._shards
            for trace_id, summary in shard.retired.items()
            if summary.degraded and trace_id not in shard.traces
        )
        return FleetReport(
            xi=None if self.xi is None else Fraction(self.xi),
            n_shards=len(self._shards),
            batch_size=self.batch_size,
            event_budget=self.event_budget,
            open_traces=self.open_traces,
            retired_traces=self.retired_traces,
            records=sum(shard.records for shard in self._shards),
            flushes=sum(shard.flushes for shard in self._shards),
            oracle_calls=sum(shard.oracle_calls() for shard in self._shards),
            live_events=self._live_events,
            peak_live_events=self.peak_live_events,
            tombstoned_events=sum(shard.tombstoned for shard in self._shards),
            evictions=sum(shard.evictions for shard in self._shards),
            summary_compactions=sum(
                shard.summary_compactions for shard in self._shards
            ),
            summary_edges=sum(
                shard.summary_edges() for shard in self._shards
            ),
            auto_retired=sum(shard.auto_retired for shard in self._shards),
            budget_overruns=self.budget_overruns,
            degraded_traces=degraded,
            violating_traces=self._violating_ids(),
            shards=tuple(shard.stats() for shard in self._shards),
        )

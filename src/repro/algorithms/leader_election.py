"""Omega (eventual leader election) from a restricted ABC condition.

Section 6 of the paper sketches how to chase weaker models: "the ABC
synchrony condition could be restricted to a fixed subset of f + 2
processes in the system, which elect a leader among themselves and
disseminate its id to the remaining processes".  This module implements
that construction for crash faults:

* the ``core`` (any f + 2 processes) run the Figure-3 ping-pong failure
  detector among themselves -- only *their* message chains need to obey
  the ABC condition (messages outside the core can be exempted from the
  execution graph via ``build_execution_graph(keep_message=...)``);
* every core member elects the smallest core process it does not
  suspect, and piggybacks the current leader id on its probe traffic;
* non-core processes adopt the most recent leader id they hear.

Under a restricted-ABC execution the detector is perfect within the
core, so all correct processes eventually and permanently agree on the
smallest correct core member -- the Omega guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.algorithms.failure_detector import Ping, PingPongMonitor, Pong
from repro.sim.process import Process, StepContext

__all__ = ["LeaderAnnouncement", "CoreElector", "LeaderFollower"]


@dataclass(frozen=True)
class LeaderAnnouncement:
    """Broadcast by core members: their current leader choice.

    ``epoch`` counts the sender's probe rounds so stale announcements can
    be recognized by followers.
    """

    leader: int
    epoch: int


class CoreElector(PingPongMonitor):
    """A core member: monitors its core peers and announces a leader.

    Args:
        core: the f + 2 core processes (must include this process).
        others: the non-core processes to notify.
        xi: the (restricted) ABC synchrony parameter.
        max_probes: probe rounds before quiescing.
    """

    def __init__(
        self,
        core: tuple[int, ...] | list[int],
        others: tuple[int, ...] | list[int],
        xi: Fraction | int | float,
        max_probes: int = 10,
    ) -> None:
        self.core = tuple(sorted(core))
        self.others = tuple(sorted(others))
        self._ready = False
        super().__init__(
            targets=[],  # filled in attach(), when pid is known
            xi=xi,
            max_probes=max_probes,
        )
        self.leader: int | None = None
        self.leader_history: list[int] = []

    def attach(self, pid: int, n: int) -> None:
        super().attach(pid, n)
        if pid not in self.core:
            raise ValueError(f"process {pid} is not in the core {self.core}")
        self.targets = tuple(t for t in self.core if t != pid)
        self._ready = True

    # -- election ---------------------------------------------------------

    def current_leader(self) -> int:
        candidates = [p for p in self.core if p not in self.suspected]
        # The process itself is never self-suspected.
        return min(candidates) if candidates else self.pid

    def _announce(self, ctx: StepContext) -> None:
        new_leader = self.current_leader()
        if new_leader != self.leader:
            self.leader = new_leader
            self.leader_history.append(new_leader)
        announcement = LeaderAnnouncement(self.leader, self._probe)
        for dest in self.others:
            ctx.send(dest, announcement)

    def on_wakeup(self, ctx: StepContext) -> None:
        super().on_wakeup(ctx)
        self._announce(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        before = set(self.suspected)
        probe_before = self._probe
        super().on_message(ctx, payload, sender)
        # Re-announce whenever the suspicion set or probe round changed.
        if self.suspected != before or self._probe != probe_before:
            self._announce(ctx)


class LeaderFollower(Process):
    """A non-core process: trusts the freshest announcement per sender,
    and follows the announcement of the smallest non-stale sender."""

    def __init__(self) -> None:
        self.leader: int | None = None
        self._latest: dict[int, LeaderAnnouncement] = {}

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if not isinstance(payload, LeaderAnnouncement):
            return
        current = self._latest.get(sender)
        if current is None or payload.epoch >= current.epoch:
            self._latest[sender] = payload
        freshest = max(a.epoch for a in self._latest.values())
        recent = [
            a.leader
            for a in self._latest.values()
            if a.epoch >= freshest - 1
        ]
        if recent:
            self.leader = min(recent)

"""Byzantine consensus on top of simulated lock-step rounds.

Section 2 of the paper: "the ABC synchrony condition is sufficient for
simulating lock-step rounds, and hence for solving e.g. consensus by
means of any synchronous consensus algorithm".  This module provides two
classic synchronous algorithms in the :class:`~repro.algorithms.lockstep.
RoundAlgorithm` shape, so they run unchanged on the lock-step simulation
(Algorithm 2) *and* on the native synchronous executor
(:func:`~repro.algorithms.lockstep.run_synchronous`) -- the test-suite
checks that both executions decide identically:

* :class:`PhaseKing` -- the 2-rounds-per-phase king algorithm (Attiya &
  Welch's variant); simple, ``f + 1`` phases, requires ``n > 4f``.
* :class:`ExponentialInformationGathering` -- EIG with ``f + 1`` rounds
  and optimal resilience ``n > 3f`` (matching the clock-sync layer's
  ``n >= 3f + 1``), at the price of exponentially sized messages.

Byzantine round behaviours for tests live here too.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "PhaseKing",
    "ExponentialInformationGathering",
    "RandomLiar",
    "ConflictingLiar",
    "phase_king_rounds",
    "eig_rounds",
]


def phase_king_rounds(f: int) -> int:
    """Rounds needed by :class:`PhaseKing`: two per phase, f+1 phases."""
    return 2 * (f + 1)


def eig_rounds(f: int) -> int:
    """Rounds needed by EIG: f+1 value-relay rounds."""
    return f + 1


class PhaseKing:
    """Phase-king binary consensus (``n > 4f``).

    Round layout (round 0 is the initial broadcast of Algorithm 2):

    * even round ``2(k-1)``: phase ``k`` value exchange -- broadcast the
      current preference;
    * odd round ``2k - 1``: phase ``k`` king round -- the king (process
      ``k - 1``) broadcasts the majority it saw; everyone else sends
      ``None``.

    After processing the king round of phase ``f + 1`` the process
    decides.  Invalid or missing payloads (Byzantine senders) are treated
    as ``0``, missing kings as ``0``.

    Guarantees (with at most ``f`` Byzantine processes, ``n >= 4f + 1``):
    agreement, validity, termination after ``2(f + 1)`` rounds; all are
    checked by the test-suite on both executors.
    """

    def __init__(self, pid: int, n: int, f: int, initial: int) -> None:
        if n <= 4 * f:
            raise ValueError(f"phase king needs n > 4f, got n={n}, f={f}")
        if initial not in (0, 1):
            raise ValueError("binary consensus: initial value must be 0 or 1")
        self.pid = pid
        self.n = n
        self.f = f
        self.preference = initial
        self.decision: int | None = None
        self._majority = 0
        self._multiplicity = 0

    # -- RoundAlgorithm --------------------------------------------------

    def initial_message(self) -> Any:
        return self.preference

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        if round_index % 2 == 1:
            return self._after_exchange(round_index, received)
        return self._after_king(round_index, received)

    # -- internals ---------------------------------------------------------

    def _after_exchange(self, round_index: int, received: Mapping[int, Any]) -> Any:
        """Process a value-exchange round; emit the king-round message."""
        ones = sum(1 for v in received.values() if v == 1)
        zeros = sum(1 for v in received.values() if v == 0)
        # Missing senders count as 0, mirroring "no message -> default".
        zeros += self.n - len(received)
        if ones >= zeros:
            self._majority, self._multiplicity = 1, ones
        else:
            self._majority, self._multiplicity = 0, zeros
        king = (round_index - 1) // 2  # phase k has king k - 1
        return self._majority if self.pid == king else None

    def _after_king(self, round_index: int, received: Mapping[int, Any]) -> Any:
        """Process a king round; emit the next exchange (or decide)."""
        phase = round_index // 2  # just finished phase `phase`
        king = phase - 1
        king_value = received.get(king)
        if king_value not in (0, 1):
            king_value = 0
        if self._multiplicity > self.n // 2 + self.f:
            self.preference = self._majority
        else:
            self.preference = king_value
        if phase == self.f + 1:
            self.decision = self.preference
        return self.preference


class ExponentialInformationGathering:
    """EIG Byzantine consensus with optimal resilience (``n > 3f``).

    Each process maintains the EIG tree: node ``sigma = (i_1, ..., i_r)``
    holds the value that ``i_r`` relayed for node ``(i_1, ..., i_{r-1})``.
    Round ``r`` broadcasts all level-``r`` values; after round ``f + 1``
    the tree is resolved bottom-up by majority (default 0) and the root
    resolution is the decision.
    """

    def __init__(self, pid: int, n: int, f: int, initial: int) -> None:
        if n <= 3 * f:
            raise ValueError(f"EIG needs n > 3f, got n={n}, f={f}")
        if initial not in (0, 1):
            raise ValueError("binary consensus: initial value must be 0 or 1")
        self.pid = pid
        self.n = n
        self.f = f
        self.initial = initial
        self.decision: int | None = None
        # tree[sigma] for sigma a tuple of distinct pids, 1 <= len <= f+1.
        self.tree: dict[tuple[int, ...], int] = {}

    def initial_message(self) -> Any:
        # Level-0 relay: "my value is `initial`".
        return {(): self.initial}

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        """Incorporate level ``round_index`` relays; emit the next level."""
        level = round_index
        for sender, payload in received.items():
            if not isinstance(payload, dict):
                continue
            for sigma, value in payload.items():
                if not self._valid_label(sigma, level - 1, sender):
                    continue
                if value not in (0, 1):
                    value = 0
                self.tree[(*sigma, sender)] = value
        if level >= self.f + 1:
            self.decision = self._resolve(())
            return None
        return {
            sigma: value
            for sigma, value in self.tree.items()
            if len(sigma) == level and self.pid not in sigma
        }

    def _valid_label(self, sigma: Any, expected_len: int, sender: int) -> bool:
        if not isinstance(sigma, tuple) or len(sigma) != expected_len:
            return False
        if any(not isinstance(i, int) or not 0 <= i < self.n for i in sigma):
            return False
        if len(set(sigma)) != len(sigma) or sender in sigma:
            return False
        return True

    def _resolve(self, sigma: tuple[int, ...]) -> int:
        if len(sigma) == self.f + 1:
            return self.tree.get(sigma, 0)
        children = [j for j in range(self.n) if j not in sigma]
        values = [self._resolve((*sigma, j)) for j in children]
        ones = sum(values)
        return 1 if ones * 2 > len(values) else 0


class RandomLiar:
    """Byzantine round behaviour: sends random bits / garbage."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.decision: int | None = None

    def initial_message(self) -> Any:
        return self.rng.randint(0, 1)

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        roll = self.rng.random()
        if roll < 0.3:
            return self.rng.randint(0, 1)
        if roll < 0.5:
            return "garbage"
        if roll < 0.7:
            return None
        return {("nonsense",): 42}


class ConflictingLiar:
    """Byzantine round behaviour: always sends the most disruptive bit.

    Tracks the counts it receives and reports the minority value, keeping
    the system as close to a split as it can manage.
    """

    def __init__(self) -> None:
        self.decision: int | None = None
        self._bit = 1

    def initial_message(self) -> Any:
        return self._bit

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        ones = sum(1 for v in received.values() if v == 1)
        zeros = sum(1 for v in received.values() if v == 0)
        self._bit = 1 if ones < zeros else 0
        return self._bit

"""Failure detection by timing out relevant message chains (Figure 3).

The ABC synchrony condition enables a time-free timeout: a correct
process ``p`` ping-pongs with a partner; once a causal chain of ``2 Xi``
messages (``ceil(Xi)`` round trips) has completed since ``p`` broadcast a
probe, any outstanding reply would close a relevant cycle with ratio
``>= 2 Xi / 2 = Xi`` -- which condition (2) forbids.  So ``p`` can safely
suspect the silent process: *the absence of a reply allows the timeout,
because a later arrival would violate the ABC synchrony condition*.

:class:`PingPongMonitor` implements this as a repeating probe protocol
against a set of monitored targets (crash faults, as in the paper's
example).  Every correct process also answers pings
(:class:`PongResponder` behaviour is built into both classes), so any
correct target doubles as the "fast" chain partner.

In every ABC-admissible execution the resulting detector is *perfect*:

* strong accuracy -- a correct process is never suspected (its reply
  arriving after the timeout would make the execution inadmissible);
* strong completeness -- a crashed process is eventually suspected by
  every correct monitor (probe rounds repeat forever).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.sim.process import Process, StepContext

__all__ = ["Ping", "Pong", "PingPongMonitor", "PongResponder"]


@dataclass(frozen=True)
class Ping:
    """A probe; ``probe`` identifies the round, ``trip`` the round trip."""

    probe: int
    trip: int


@dataclass(frozen=True)
class Pong:
    """The immediate reply to a :class:`Ping`."""

    probe: int
    trip: int


class PongResponder(Process):
    """A correct process that immediately echoes pings with pongs."""

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if isinstance(payload, Ping):
            ctx.send(sender, Pong(payload.probe, payload.trip))


class PingPongMonitor(PongResponder):
    """The monitor ``p`` of Figure 3, generalized to many targets.

    Per probe round, the monitor broadcasts ``Ping(probe, 0)`` to every
    target.  Each pong from target ``t`` is immediately re-ponged until
    ``t`` has completed ``trips_needed = ceil(Xi)`` round trips (a causal
    chain of ``2 ceil(Xi) >= 2 Xi`` messages).  The moment the *first*
    target completes its chain, every target whose round-0 pong is still
    outstanding is suspected, and the next probe round starts.

    Args:
        targets: processes to monitor (and use as chain partners).
        xi: the ABC synchrony parameter.
        max_probes: stop probing after this many rounds (so runs
            quiesce); completeness needs at least one full round after
            the crash.

    Attributes:
        suspected: the (monotonically growing) suspicion set.
        suspicion_step: local step index at which each suspicion
            happened, for causal analysis in tests.
    """

    def __init__(
        self,
        targets: tuple[int, ...] | list[int],
        xi: Fraction | int | float,
        max_probes: int = 10,
    ) -> None:
        xi_frac = Fraction(xi)
        if xi_frac <= 1:
            raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
        self.targets = tuple(targets)
        self.xi = xi_frac
        self.trips_needed = math.ceil(xi_frac)
        self.max_probes = max_probes
        self.suspected: set[int] = set()
        self.suspicion_step: dict[int, int] = {}
        self.total_trips = 0  # completed round trips, across all probes
        self._probe = -1
        self._replied: set[int] = set()
        self._pinged: set[int] = set()
        self._trips: dict[int, int] = {}
        self._steps = 0

    def on_wakeup(self, ctx: StepContext) -> None:
        self._start_probe(ctx)

    def _issued_ping(self, target: int) -> None:
        """Hook for subclasses: a round-0 probe ping went to ``target``."""

    def _start_probe(self, ctx: StepContext) -> None:
        self._probe += 1
        if self._probe >= self.max_probes:
            return
        self._replied = set()
        self._pinged = set()
        self._trips = {t: 0 for t in self.targets}
        for t in self.targets:
            if t not in self.suspected:
                ctx.send(t, Ping(self._probe, 0))
                self._pinged.add(t)
                self._issued_ping(t)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self._steps += 1
        if isinstance(payload, Ping):
            ctx.send(sender, Pong(payload.probe, payload.trip))
            return
        if not isinstance(payload, Pong) or payload.probe != self._probe:
            return
        if sender not in self._trips or sender in self.suspected:
            return
        self._replied.add(sender)
        self._trips[sender] += 1
        self.total_trips += 1
        if self._trips[sender] < self.trips_needed:
            ctx.send(sender, Ping(self._probe, payload.trip + 1))
            return
        # ``sender`` completed a chain of 2 * trips_needed >= 2 Xi
        # messages.  Any target pinged in this probe round and still
        # silent can be suspected: its reply would now close a relevant
        # cycle with |Z-| >= 2 Xi and |Z+| = 2, violating condition (2).
        for t in self._pinged:
            if t not in self._replied and t not in self.suspected:
                self.suspected.add(t)
                self.suspicion_step[t] = self._steps
        self._start_probe(ctx)

"""Algorithm 2: lock-step round simulation on top of Algorithm 1.

Clocks are treated as phase counters and a round consists of ``2 Xi``
phases: whenever the clock ``k`` reaches ``(r + 1) * round_phases`` the
process starts round ``r + 1``, reading the round ``r`` messages,
executing the round ``r + 1`` computation and sending the round ``r + 1``
messages.  Round messages are *piggybacked* on the ``(tick k)`` broadcast
with ``k = r * round_phases`` -- this is essential: a separate message
could arrive late, while Lemma 4 (causal cone) guarantees that the tick
itself is received by every correct process before it enters the next
round, which is exactly Theorem 5.

Since clock values are integers, ``round_phases`` must be an integer
``>= 2 Xi``; use ``ceil(2 Xi)`` for fractional ``Xi`` (a longer round
keeps Theorem 5's argument valid a fortiori).

The computation executed in each round is supplied as a
:class:`RoundAlgorithm`; :mod:`repro.algorithms.consensus` provides the
phase-king Byzantine consensus instance, and
:func:`run_synchronous` executes the same interface on a native
synchronous executor for baseline comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping, Protocol, Sequence

from repro.algorithms.clock_sync import ClockSyncProcess, Tick

__all__ = [
    "RoundAlgorithm",
    "RoundPayload",
    "LockstepProcess",
    "round_phases_for",
    "run_synchronous",
]


class RoundAlgorithm(Protocol):
    """A synchronous full-information round-based algorithm.

    The contract matches classic synchronous executions: in round ``r``
    each process receives the round ``r - 1`` messages of all processes
    (possibly missing or garbled entries for faulty senders), updates its
    state, and emits its round ``r`` message.
    """

    def initial_message(self) -> Any:
        """The round 0 message, sent before any reception."""
        ...

    def on_round(self, round_index: int, received: Mapping[int, Any]) -> Any:
        """Execute round ``round_index`` and return its outgoing message.

        ``received`` maps sender pid to the round ``round_index - 1``
        payload received from that sender.
        """
        ...


@dataclass(frozen=True)
class RoundPayload:
    """The piggybacked content of a round-boundary tick."""

    round_index: int
    data: Any


def round_phases_for(xi: Fraction | int | float) -> int:
    """``ceil(2 Xi)``: the number of phases per simulated round."""
    xi_frac = Fraction(xi)
    if xi_frac <= 1:
        raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
    return math.ceil(2 * xi_frac)


class LockstepProcess(ClockSyncProcess):
    """Algorithm 2 merged with Algorithm 1.

    Args:
        f: resilience parameter of the clock-sync layer.
        round_phases: phases per round (``ceil(2 Xi)``).
        algorithm: the round computation to run on top.
        max_rounds: stop piggybacking after this round so runs quiesce.

    Attributes:
        r: the current round (the paper's variable ``r``).
        round_entry_step: local step index at which each round was
            entered (for the lock-step verification in the analysis
            package).
        received_rounds: per round, the payload received from each
            sender, exactly as handed to the algorithm.
    """

    def __init__(
        self,
        f: int,
        round_phases: int,
        algorithm: RoundAlgorithm,
        max_rounds: int,
    ) -> None:
        if round_phases < 2:
            raise ValueError("a round needs at least 2 phases (Xi > 1)")
        max_tick = round_phases * max_rounds
        super().__init__(f, max_tick=max_tick)
        self.round_phases = round_phases
        self.algorithm = algorithm
        self.max_rounds = max_rounds
        self.r = 0
        self.round_entry_step: dict[int, int] = {0: 0}
        self.received_rounds: dict[int, dict[int, Any]] = {}
        self.round_inputs: dict[int, dict[int, Any]] = {}
        self._emitted: dict[int, Any] = {}

    # -- piggybacking ----------------------------------------------------

    def tick_payload(self, value: int) -> Any:
        if value % self.round_phases != 0:
            return None
        round_index = value // self.round_phases
        if round_index > self.max_rounds:
            return None
        return RoundPayload(round_index, self._message_for(round_index))

    def _message_for(self, round_index: int) -> Any:
        """Compute (once) the round message emitted at this boundary.

        Entering round ``round_index`` means reading the round
        ``round_index - 1`` messages and producing the round
        ``round_index`` message (procedure ``start(r)`` of Algorithm 2).
        """
        if round_index in self._emitted:
            return self._emitted[round_index]
        if round_index == 0:
            message = self.algorithm.initial_message()
        else:
            received = dict(self.received_rounds.get(round_index - 1, {}))
            self.round_inputs[round_index] = received
            message = self.algorithm.on_round(round_index, received)
            self.r = round_index
            self.round_entry_step[round_index] = self._step_index
        self._emitted[round_index] = message
        return message

    def on_tick_received(self, tick: Tick, sender: int) -> None:
        payload = tick.payload
        if not isinstance(payload, RoundPayload):
            return
        expected = tick.value // self.round_phases
        if tick.value % self.round_phases != 0 or payload.round_index != expected:
            return  # malformed piggyback (Byzantine sender)
        bucket = self.received_rounds.setdefault(payload.round_index, {})
        if sender not in bucket:
            bucket[sender] = payload.data


def run_synchronous(
    algorithms: Sequence[RoundAlgorithm | None],
    rounds: int,
) -> list[dict[int, Any]]:
    """Native synchronous executor: the baseline Algorithm 2 simulates.

    ``algorithms[pid]`` may be ``None`` for a crashed/absent process (it
    sends nothing).  Byzantine behaviours are just ``RoundAlgorithm``
    implementations that lie.  Returns, per round ``r`` in ``0..rounds``,
    the map of messages sent in that round.
    """
    n = len(algorithms)
    messages: dict[int, Any] = {
        pid: algo.initial_message()
        for pid, algo in enumerate(algorithms)
        if algo is not None
    }
    history = [dict(messages)]
    for r in range(1, rounds + 1):
        new_messages: dict[int, Any] = {}
        for pid, algo in enumerate(algorithms):
            if algo is None:
                continue
            new_messages[pid] = algo.on_round(r, dict(messages))
        messages = new_messages
        history.append(dict(messages))
    return history

"""The paper's algorithms: clock sync, lock-step rounds, consensus, FD."""

from repro.algorithms.clock_sync import (
    ByzantineTickEquivocator,
    ByzantineTickSpammer,
    ClockSyncProcess,
    Tick,
)
from repro.algorithms.consensus import (
    ConflictingLiar,
    ExponentialInformationGathering,
    PhaseKing,
    RandomLiar,
    eig_rounds,
    phase_king_rounds,
)
from repro.algorithms.eventual import (
    AdaptiveXiMonitor,
    DoublingLockstepProcess,
    doubling_round_start,
)
from repro.algorithms.failure_detector import (
    Ping,
    PingPongMonitor,
    Pong,
    PongResponder,
)
from repro.algorithms.leader_election import (
    CoreElector,
    LeaderAnnouncement,
    LeaderFollower,
)
from repro.algorithms.lockstep import (
    LockstepProcess,
    RoundAlgorithm,
    RoundPayload,
    round_phases_for,
    run_synchronous,
)

__all__ = [
    "ByzantineTickEquivocator",
    "ByzantineTickSpammer",
    "ClockSyncProcess",
    "Tick",
    "ConflictingLiar",
    "ExponentialInformationGathering",
    "PhaseKing",
    "RandomLiar",
    "eig_rounds",
    "phase_king_rounds",
    "AdaptiveXiMonitor",
    "DoublingLockstepProcess",
    "doubling_round_start",
    "Ping",
    "PingPongMonitor",
    "Pong",
    "PongResponder",
    "CoreElector",
    "LeaderAnnouncement",
    "LeaderFollower",
    "LockstepProcess",
    "RoundAlgorithm",
    "RoundPayload",
    "round_phases_for",
    "run_synchronous",
]

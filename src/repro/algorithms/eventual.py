"""Algorithms for the weaker ABC variants of Section 6.

Two mechanisms are implemented:

* :class:`AdaptiveXiMonitor` -- the ?ABC idea sketched at the end of
  Section 6: run the Figure-3 timeout with an *estimate* ``Xihat``; when
  a reply arrives from a process that the estimate had already timed
  out, the estimate was wrong (or the process crashed) -- so increase
  ``Xihat`` to just above the ratio actually observed and rehabilitate
  the suspect.  In a ?ABC execution (some unknown ``Xi`` holds
  perpetually) the estimate increases at most finitely often and the
  detector converges to eventually-perfect behaviour.

* :class:`DoublingLockstepProcess` -- eventual lock-step rounds for the
  <>ABC / ?<>ABC models in the style the paper attributes to Widder &
  Schmid: rounds double in length (round ``r`` spans ``X_0 * 2^r``
  phases of the Algorithm 1 clock), so once the (eventually holding,
  possibly unknown) synchrony bound is dominated, every later round is
  lock-step.  "A more clever algorithm could exploit the ABC synchrony
  condition to eventually learn a feasible value for Xi" -- that cleverer
  route is :class:`AdaptiveXiMonitor`; the doubling construction is the
  robust baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Mapping

from repro.algorithms.clock_sync import ClockSyncProcess, Tick
from repro.algorithms.failure_detector import Ping, PingPongMonitor, Pong
from repro.algorithms.lockstep import RoundAlgorithm, RoundPayload
from repro.sim.process import StepContext

__all__ = [
    "AdaptiveXiMonitor",
    "DoublingLockstepProcess",
    "doubling_round_start",
]


class AdaptiveXiMonitor(PingPongMonitor):
    """A Figure-3 monitor that learns ``Xi`` (the ?ABC model).

    Behaves like :class:`PingPongMonitor` with estimate ``Xihat``, but
    keeps counting chain progress after a timeout.  If a suspected
    target's reply arrives later, the monitor:

    * computes the observed ratio (completed chain length over the
      2-message reply chain) at arrival,
    * raises ``Xihat`` strictly above it, and
    * removes the suspicion.

    Attributes:
        xi_hat: the current estimate (a ``Fraction``).
        revisions: log of ``(old, observed_ratio, new)`` estimate bumps.
    """

    def __init__(
        self,
        targets: tuple[int, ...] | list[int],
        initial_xi_hat: Fraction | int | float = Fraction(3, 2),
        max_probes: int = 10,
    ) -> None:
        super().__init__(targets, initial_xi_hat, max_probes=max_probes)
        self.xi_hat = Fraction(initial_xi_hat)
        self.revisions: list[tuple[Fraction, Fraction, Fraction]] = []
        self._ping_issue_point: dict[int, int] = {}

    def _issued_ping(self, target: int) -> None:
        self._ping_issue_point[target] = self.total_trips

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if isinstance(payload, Pong) and sender in self.suspected:
            # A late reply from a suspect -- typically from an earlier
            # probe round whose timeout fired: the estimate was too low.
            self._learn_from_late_reply(sender)
        super().on_message(ctx, payload, sender)

    def _learn_from_late_reply(self, sender: int) -> None:
        """A suspected target answered: the estimate was too small.

        The observed ratio is the number of round trips (chains of two
        messages each) completed between issuing the outstanding ping and
        the reply's arrival -- exactly the ``|Z-| / |Z+|`` of the cycle
        the reply closed.
        """
        issued_at = self._ping_issue_point.get(sender, 0)
        observed = Fraction(max(self.total_trips - issued_at, 1))
        old = self.xi_hat
        self.xi_hat = max(self.xi_hat, observed) + 1
        self.trips_needed = math.ceil(self.xi_hat)
        self.revisions.append((old, observed, self.xi_hat))
        self.suspected.discard(sender)
        self.suspicion_step.pop(sender, None)


def doubling_round_start(base_phases: int, round_index: int) -> int:
    """First clock value of round ``round_index`` under doubling rounds.

    Round ``r`` spans ``base_phases * 2^r`` phases, so it starts at
    ``base_phases * (2^r - 1)``.
    """
    return base_phases * ((1 << round_index) - 1)


class DoublingLockstepProcess(ClockSyncProcess):
    """Eventual lock-step rounds via doubling round durations.

    Identical piggybacking discipline to
    :class:`~repro.algorithms.lockstep.LockstepProcess`, but the round
    boundaries are ``base_phases * (2^r - 1)`` instead of ``r * 2 Xi``.
    No synchrony parameter is consumed at all -- suitable for the ?<>ABC
    model.  Eventual lock-step: once ``2^r`` exceeds the (unknown,
    eventually holding) ``2 Xi``, round ``r`` messages of correct
    processes arrive before any correct process enters round ``r + 1``;
    the analysis module measures the first such round.
    """

    def __init__(
        self,
        f: int,
        base_phases: int,
        algorithm: RoundAlgorithm,
        max_rounds: int,
    ) -> None:
        if base_phases < 1:
            raise ValueError("base_phases must be positive")
        max_tick = doubling_round_start(base_phases, max_rounds + 1)
        super().__init__(f, max_tick=max_tick)
        self.base_phases = base_phases
        self.algorithm = algorithm
        self.max_rounds = max_rounds
        self.r = 0
        self.round_entry_step: dict[int, int] = {0: 0}
        self.received_rounds: dict[int, dict[int, Any]] = {}
        self.round_inputs: dict[int, dict[int, Any]] = {}
        self._emitted: dict[int, Any] = {}
        self._boundaries = {
            doubling_round_start(base_phases, r): r
            for r in range(max_rounds + 1)
        }

    def tick_payload(self, value: int) -> Any:
        round_index = self._boundaries.get(value)
        if round_index is None:
            return None
        return RoundPayload(round_index, self._message_for(round_index))

    def _message_for(self, round_index: int) -> Any:
        if round_index in self._emitted:
            return self._emitted[round_index]
        if round_index == 0:
            message = self.algorithm.initial_message()
        else:
            received = dict(self.received_rounds.get(round_index - 1, {}))
            self.round_inputs[round_index] = received
            message = self.algorithm.on_round(round_index, received)
            self.r = round_index
            self.round_entry_step[round_index] = self._step_index
        self._emitted[round_index] = message
        return message

    def on_tick_received(self, tick: Tick, sender: int) -> None:
        payload = tick.payload
        if not isinstance(payload, RoundPayload):
            return
        if self._boundaries.get(tick.value) != payload.round_index:
            return  # malformed piggyback
        bucket = self.received_rounds.setdefault(payload.round_index, {})
        if sender not in bucket:
            bucket[sender] = payload.data

"""Algorithm 1: Byzantine fault-tolerant clock synchronization.

The tick-generation algorithm of Widder & Schmid, proved correct in the
ABC model in Section 3 of the paper.  It tolerates up to ``f`` Byzantine
failures among ``n >= 3f + 1`` fully connected processes:

* every process starts by broadcasting ``(tick 0)`` (also to itself);
* **catch-up rule** (line 3): on ``(tick l)`` from ``f + 1`` distinct
  processes with ``l > k``, send ``(tick k+1) ... (tick l)`` [once] and
  set ``k = l``;
* **advance rule** (line 6): on ``(tick k)`` from ``n - f`` distinct
  processes, send ``(tick k+1)`` [once] and set ``k = k + 1``.

The guarantees reproduced by :mod:`repro.analysis.properties`:

* Theorem 1 (progress): every correct clock grows without bound;
* Theorem 2 (synchrony): ``|C_p(S) - C_q(S)| <= 2 Xi`` on every
  consistent cut;
* Theorem 3 (precision): the same bound at every real time;
* Theorem 4 (bounded progress): ``rho = 4 Xi + 1``.

Byzantine adversaries tailored to this algorithm live at the bottom of
the module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.process import Process, StepContext

__all__ = [
    "Tick",
    "ClockSyncProcess",
    "ByzantineTickSpammer",
    "ByzantineTickEquivocator",
]


@dataclass(frozen=True)
class Tick:
    """A ``(tick value)`` message; ``payload`` carries piggybacked data.

    Algorithm 2 piggybacks its round ``r`` messages on the ``(tick k)``
    broadcasts with ``k = r * round_phases``, which is why the payload
    slot lives here rather than in the lock-step layer.
    """

    value: int
    payload: Any = None


class ClockSyncProcess(Process):
    """A correct process running Algorithm 1.

    Args:
        f: resilience parameter (at most ``f`` Byzantine processes).
        max_tick: stop broadcasting beyond this clock value so that runs
            quiesce; the algorithm itself never terminates.  Properties
            are checked on the resulting finite prefix.

    Attributes:
        k: the local clock (the paper's variable ``k``).
        clock_after_step: ``clock_after_step[i]`` is the clock value after
            the process's ``i``-th computing step -- exactly ``C_p(phi)``
            for the event ``phi = Event(pid, i)``, since every receive
            event of a correct process triggers one step.
        distinguished_steps: indices of steps that incremented the clock
            and broadcast (the distinguished events of Theorem 4; the
            initial ``(tick 0)`` broadcast counts as one).
    """

    def __init__(self, f: int, max_tick: int | None = None) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = f
        self.max_tick = max_tick
        self.k = 0
        self._received: dict[int, set[int]] = {}
        self._max_sent = -1
        self.clock_after_step: list[int] = []
        self.distinguished_steps: list[int] = []
        self._step_index = -1

    # -- hooks for Algorithm 2 -----------------------------------------

    def tick_payload(self, value: int) -> Any:
        """Payload piggybacked on the ``(tick value)`` broadcast.

        Plain clock synchronization sends no payload; the lock-step layer
        overrides this to attach round messages.
        """
        return None

    def on_tick_received(self, tick: Tick, sender: int) -> None:
        """Called for every received tick before the rules run."""

    # -- Algorithm 1 -----------------------------------------------------

    def on_wakeup(self, ctx: StepContext) -> None:
        self._step_index += 1
        self._broadcast_up_to(ctx, 0)
        self.distinguished_steps.append(self._step_index)
        self.clock_after_step.append(self.k)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self._step_index += 1
        old_k = self.k
        if isinstance(payload, Tick) and isinstance(payload.value, int) \
                and payload.value >= 0:
            self.on_tick_received(payload, sender)
            self._received.setdefault(payload.value, set()).add(sender)
            self._apply_rules(ctx)
        if self.k > old_k:
            self.distinguished_steps.append(self._step_index)
        self.clock_after_step.append(self.k)

    def _apply_rules(self, ctx: StepContext) -> None:
        # Run catch-up and advance to fixpoint: a single reception can
        # enable the advance rule for several successive values when
        # higher ticks arrived out of order.
        while True:
            # Catch-up rule (line 3).
            candidates = [
                value
                for value, senders in self._received.items()
                if value > self.k and len(senders) >= self.f + 1
            ]
            if candidates:
                target = max(candidates)
                self._broadcast_up_to(ctx, target)
                self.k = target
                continue
            # Advance rule (line 6).
            senders = self._received.get(self.k, ())
            if len(senders) >= self.n - self.f:
                self._broadcast_up_to(ctx, self.k + 1)
                self.k += 1
                continue
            return

    def _broadcast_up_to(self, ctx: StepContext, value: int) -> None:
        """Send ``(tick j)`` for all unsent ``j <= value`` [once]."""
        top = value if self.max_tick is None else min(value, self.max_tick)
        for j in range(self._max_sent + 1, top + 1):
            ctx.broadcast(Tick(j, self.tick_payload(j)))
        self._max_sent = max(self._max_sent, top)

    # -- analysis helpers -------------------------------------------------

    def clock_at_step(self, index: int) -> int | None:
        """``C_p(phi)`` for the event with local index ``index``."""
        if 0 <= index < len(self.clock_after_step):
            return self.clock_after_step[index]
        return None


class ByzantineTickSpammer(Process):
    """Byzantine adversary: broadcasts arbitrary tick values.

    Sends ``burst`` random ticks from ``[0, spread]`` on every step,
    trying to drive correct clocks apart.  Its messages are dropped from
    the execution graph per Section 2, so it cannot manufacture relevant
    cycles -- but its ticks do reach the catch-up rule's counters.
    """

    def __init__(self, spread: int = 20, burst: int = 3, seed: int = 0) -> None:
        import random

        self.spread = spread
        self.burst = burst
        self.rng = random.Random(seed)

    def _spam(self, ctx: StepContext) -> None:
        for _ in range(self.burst):
            ctx.broadcast(Tick(self.rng.randint(0, self.spread)))

    def on_wakeup(self, ctx: StepContext) -> None:
        self._spam(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        # React only occasionally so the run quiesces.
        if self.rng.random() < 0.2:
            self._spam(ctx)


class ByzantineTickEquivocator(Process):
    """Byzantine adversary: reports different clocks to different halves.

    Sends ``(tick low)`` to the first half of its neighbors and
    ``(tick high)`` to the second half on every step, pushing the halves
    apart -- the catch-up rule's ``f + 1`` threshold is exactly what
    defuses it.
    """

    def __init__(self, low: int = 0, high: int = 10) -> None:
        self.low = low
        self.high = high
        self._steps = 0

    def _equivocate(self, ctx: StepContext) -> None:
        half = len(ctx.neighbors) // 2
        for i, dest in enumerate(ctx.neighbors):
            value = self.low if i < half else self.high
            ctx.send(dest, Tick(value))

    def on_wakeup(self, ctx: StepContext) -> None:
        self._equivocate(ctx)

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        self._steps += 1
        if self._steps <= 3:  # bounded so runs quiesce
            self._equivocate(ctx)

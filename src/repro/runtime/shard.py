"""The share-nothing shard engine behind every fleet front end.

PR 3's :class:`~repro.analysis.fleet.MonitorFleet` already kept its
shards structurally independent -- hash routing outside, no shared
mutable state between shards -- but the shard logic itself lived inside
the fleet facade, welded to one interpreter thread.  This module is
that logic *extracted*: everything one shard (and one group of shards)
does -- buffering, batched absorption through
:meth:`~repro.analysis.online.OnlineAbcMonitor.observe_batch`,
gap-filled reopening, budget-driven eviction with the summary-compaction
fallback, idle-age auto-retirement, violation bookkeeping, statistics --
with no reference to trace routing, worker placement, or transport.

Two front ends drive it:

* the **serial** :class:`~repro.analysis.fleet.MonitorFleet` keeps one
  in-process :class:`ShardGroup` holding every shard (the pre-extraction
  behavior, bit for bit);
* the **parallel** :class:`~repro.runtime.parallel.ParallelFleet` gives
  each worker (process or thread) its own :class:`ShardGroup` over a
  subset of the shard space, driving it through the message protocol of
  :mod:`repro.runtime.worker`.

The :class:`ShardRuntime` protocol names the surface both rely on; it
is deliberately *positional* about shard indices (a group holds shards
``{index: shard}`` for an arbitrary subset of the global shard space)
so that shard placement is a front-end concern and per-shard counters
merge across workers without renumbering.

Determinism contract.  A group's behavior is a function of the sequence
of protocol calls it receives: monitors hold no clocks and no RNG, ticks
arrive explicitly from the front end, and iteration orders are insertion
orders.  Two groups fed the same call sequence produce bit-identical
ratios, summaries, violations, and counters -- the property the
differential tests of ``tests/runtime/test_parallel.py`` pin across the
serial fleet and both parallel backends.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Iterable, Protocol, Sequence

from repro.core.cycles import CycleClassification
from repro.core.events import Event, ProcessId
from repro.core.kernel import resolve_kernel_name
from repro.obs import metrics as _obs_metrics
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.sim.trace import ReceiveRecord, RecordColumns

if TYPE_CHECKING:  # runtime import is lazy: repro.analysis imports the
    # fleet facade, which imports this module -- a module-level import
    # back into repro.analysis would break whichever package loads
    # second (the monitor is only needed when the first trace opens).
    from repro.analysis.online import OnlineAbcMonitor

__all__ = [
    "FleetReport",
    "FleetShard",
    "MonitorSpec",
    "ShardGroup",
    "ShardRuntime",
    "ShardStats",
    "TraceId",
    "TraceState",
    "TraceSummary",
    "ratio_histogram",
    "shard_index_of",
    "top_k_riskiest",
]

TraceId = str | int
"""Trace identifiers: any value with a stable ``str()`` form."""


def ratio_histogram(
    ratios: Iterable[tuple[TraceId, Fraction | None]],
) -> dict[Fraction | None, int]:
    """Population histogram over (trace id, worst ratio) pairs: how
    many traces sit at each exact ratio (``None`` = no relevant
    cycle).  Shared by both fleet front ends so their aggregate
    semantics cannot drift apart."""
    return dict(Counter(ratio for _trace_id, ratio in ratios))


def top_k_riskiest(
    ratios: Iterable[tuple[TraceId, Fraction | None]], k: int
) -> list[tuple[TraceId, Fraction | None]]:
    """The ``k`` pairs with the highest worst ratio, descending (ties
    broken by trace id; traces with no relevant cycle last).  The one
    ordering both fleet front ends report."""
    if k < 0:
        raise ValueError("k must be non-negative")
    items = sorted(ratios, key=lambda it: str(it[0]))
    items.sort(
        key=lambda it: it[1] if it[1] is not None else Fraction(0),
        reverse=True,
    )
    return items[:k]


def shard_index_of(trace_id: TraceId, n_shards: int) -> int:
    """Stable hash routing (CRC32 of the id's string form): independent
    of interpreter hash randomization, so trace placement -- and with it
    every per-shard counter -- is reproducible across runs.  The single
    routing function of both fleet front ends: the parallel fleet's
    bit-identity contract rests on serial and parallel placement being
    the same computation, so there is exactly one copy of it.
    """
    return zlib.crc32(str(trace_id).encode()) % n_shards


@dataclass(frozen=True)
class MonitorSpec:
    """Picklable per-trace monitor configuration.

    The declarative counterpart of ``monitor_factory``: where a factory
    is an arbitrary callable (and therefore thread-backend-only -- a
    closure cannot cross a process boundary), a spec is plain data that
    the codec frames onto the wire, closing the documented
    process-backend gap.  Every field defaults to ``None``, meaning
    "inherit the group default" -- a spec only names the knobs it pins.

    Attributes:
        xi: synchrony parameter to monitor this trace against.
        compact_threshold: adaptive summary-compaction cadence (must
            exceed 1 when given, as for the group-level knob).
        faulty: processes whose messages the monitor treats as faulty.
        drop_faulty: whether faulty messages are dropped or kept.
        kernel: detection-kernel name for the trace's checker (every
            kernel is exact -- purely a speed knob, answers identical).
    """

    xi: Fraction | float | int | str | None = None
    compact_threshold: float | None = None
    faulty: frozenset[ProcessId] | None = None
    drop_faulty: bool | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.compact_threshold is not None and self.compact_threshold <= 1:
            raise ValueError(
                "compact_threshold must exceed 1 (the live/boundary "
                f"ratio is at least 1), got {self.compact_threshold}"
            )
        if self.faulty is not None and not isinstance(self.faulty, frozenset):
            object.__setattr__(self, "faulty", frozenset(self.faulty))
        if self.kernel is not None:
            resolve_kernel_name(self.kernel)  # fail fast on unknown names


_NO_SPEC = MonitorSpec()
"""The all-inherit spec: what an unlisted trace resolves to."""


@dataclass(frozen=True)
class TraceSummary:
    """Immutable record of a retired (closed) trace.

    Attributes:
        trace_id: the trace's fleet-wide identifier.
        worst_ratio: the exact running worst relevant ratio at close
            (``None`` = no relevant cycle ever observed).
        n_records: receive records ingested over the trace's lifetime.
        oracle_calls: negative-cycle runs the trace's monitor issued.
        violation: the first violating witness cycle, when ``xi`` was
            monitored and reached.
        degraded: ``True`` when exactness was lost -- a forgotten prefix
            turned out to have an in-flight message crossing it, or the
            trace was re-opened after retirement; the ratio is then a
            lower bound (historical maximum kept) rather than exact.
    """

    trace_id: TraceId
    worst_ratio: Fraction | None
    n_records: int
    oracle_calls: int
    violation: CycleClassification | None
    degraded: bool


@dataclass(frozen=True)
class ShardStats:
    """Counters of one hash shard (see :class:`FleetReport`)."""

    shard: int
    open_traces: int
    retired_traces: int
    records: int
    flushes: int
    oracle_calls: int
    live_events: int
    tombstoned_events: int
    evictions: int
    summary_compactions: int
    summary_edges: int
    auto_retired: int
    auto_compactions: int = 0


@dataclass(frozen=True)
class FleetReport:
    """Point-in-time snapshot of a whole fleet (all pending flushed).

    Attributes:
        open_traces / retired_traces: population counts.
        records / flushes / oracle_calls: lifetime work counters; the
            batching win is visible as ``oracle_calls`` growing with
            flushes rather than with message records.
        live_events / peak_live_events: current and high-water total of
            live digraph events across all open monitors (the watermark
            is sampled after each flush's budget enforcement; absorption
            may transiently exceed it by one batch).  With an
            ``event_budget`` configured and no overruns,
            ``peak_live_events <= event_budget`` is the memory
            guarantee of the eviction policy.  A parallel fleet reports
            the *epoch watermark*: the maximum, over budget-apportioning
            epochs, of the summed per-worker watermarks -- a sound upper
            bound on the true global peak (see
            :mod:`repro.runtime.parallel`).
        tombstoned_events / evictions: events dropped by budget-driven
            prefix forgetting, and how many times a trace was evicted.
        summary_compactions / summary_edges: eviction passes that fell
            back to summary compaction because exact no-crossing
            removal was blocked (chain-shaped traces), and the live
            summary edges currently standing in for compacted history.
        auto_retired: traces closed by idle-age auto-retirement
            (``auto_retire_after``), over the fleet's lifetime.
        auto_compactions: adaptive-cadence summary compactions run by
            the monitors themselves (``compact_threshold``), outside
            budget enforcement.
        budget_overruns: enforcement passes that could not get back
            under budget even with summary compaction (every remaining
            trace was already compacted to its pinned core).
        degraded_traces: traces whose ratio is a lower bound rather than
            exact (see :class:`TraceSummary`).
        violating_traces: ids of traces whose worst ratio reached the
            monitored ``xi``; detection order for the serial fleet, the
            deterministic ``(tick, trace id)`` merge order for a
            parallel one.
        shards: per-shard breakdowns of the counters above.
        crashed_shards: shard indices owned by a crashed worker (always
            empty for the serial fleet); their traces are degraded --
            last-synced statistics are retained but no longer advance.
    """

    xi: Fraction | None
    n_shards: int
    batch_size: int
    event_budget: int | None
    open_traces: int
    retired_traces: int
    records: int
    flushes: int
    oracle_calls: int
    live_events: int
    peak_live_events: int
    tombstoned_events: int
    evictions: int
    summary_compactions: int
    summary_edges: int
    auto_retired: int
    budget_overruns: int
    degraded_traces: int
    violating_traces: tuple[TraceId, ...]
    shards: tuple[ShardStats, ...]
    auto_compactions: int = 0
    crashed_shards: tuple[int, ...] = ()


class TraceState:
    """One open trace: its monitor plus the shard-side bookkeeping."""

    __slots__ = (
        "monitor",
        "pending",
        "in_flight",
        "frontier",
        "n_records",
        "last_touch",
        "live_cached",
        "reopened",
        "evict_marker",
    )

    def __init__(self, monitor: OnlineAbcMonitor, reopened: bool) -> None:
        self.monitor = monitor
        self.pending: list[ReceiveRecord] = []
        # (send event, destination process) -> messages announced by a
        # record's ``sends`` but not yet observed arriving.  Positive
        # entries pin their send event against eviction.
        self.in_flight: Counter[tuple[Event, ProcessId]] = Counter()
        self.frontier: dict[ProcessId, int] = {}
        self.n_records = 0
        self.last_touch = 0
        self.live_cached = 0
        self.reopened = reopened
        # Event count at the last eviction attempt that removed nothing.
        # Pins and settledness only change when events are absorbed, so
        # retrying at the same count is provably futile -- this memo
        # keeps permanently-over-budget fleets from re-sweeping every
        # unsettleable trace on every flush.
        self.evict_marker: int | None = None

    @property
    def degraded(self) -> bool:
        return self.reopened or self.monitor.forgotten_message_edges > 0

    def pinned_events(self) -> list[Event]:
        """Events eviction must keep live: each process's frontier (its
        next local edge attaches there) and every send event with a
        message still in flight (its message edge is still to come)."""
        pinned = [
            Event(process, index) for process, index in self.frontier.items()
        ]
        pinned.extend(key[0] for key, n in self.in_flight.items() if n > 0)
        return pinned


class FleetShard:
    """One hash shard: an independent group of trace monitors.

    Shards never touch each other's state -- a shard is the unit of
    placement, and any subset of the shard space can be handed to a
    worker as a :class:`ShardGroup` without coordination.
    """

    __slots__ = (
        "index",
        "traces",
        "retired",
        "records",
        "flushes",
        "tombstoned",
        "evictions",
        "summary_compactions",
        "auto_retired",
        "retired_oracle_calls",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        # Insertion order doubles as LRU ingest order: ``ingest`` moves
        # the touched trace to the end, so the first entry is always the
        # least-recently-ingested open trace (the auto-retire probe).
        self.traces: dict[TraceId, TraceState] = {}
        self.retired: dict[TraceId, TraceSummary] = {}
        self.records = 0
        self.flushes = 0
        self.tombstoned = 0
        self.evictions = 0
        self.summary_compactions = 0
        self.auto_retired = 0
        self.retired_oracle_calls = 0

    def oracle_calls(self) -> int:
        return self.retired_oracle_calls + sum(
            state.monitor.oracle_calls for state in self.traces.values()
        )

    def live_events(self) -> int:
        return sum(state.monitor.n_events for state in self.traces.values())

    def n_retired(self) -> int:
        """Retired traces, not counting ids that have been re-opened
        (those are listed as open, with their summaries merged in)."""
        return sum(1 for trace_id in self.retired if trace_id not in self.traces)

    def summary_edges(self) -> int:
        return sum(
            state.monitor.summary_edges for state in self.traces.values()
        )

    def auto_compactions(self) -> int:
        return sum(
            state.monitor.auto_compactions for state in self.traces.values()
        )

    def stats(self) -> ShardStats:
        return ShardStats(
            shard=self.index,
            open_traces=len(self.traces),
            retired_traces=self.n_retired(),
            records=self.records,
            flushes=self.flushes,
            oracle_calls=self.oracle_calls(),
            live_events=self.live_events(),
            tombstoned_events=self.tombstoned,
            evictions=self.evictions,
            summary_compactions=self.summary_compactions,
            summary_edges=self.summary_edges(),
            auto_retired=self.auto_retired,
            auto_compactions=self.auto_compactions(),
        )


class ShardRuntime(Protocol):
    """The backend-agnostic surface a fleet front end drives.

    Implemented in process by :class:`ShardGroup`; spoken over the wire
    by the dispatcher/worker pair of :mod:`repro.runtime.parallel` and
    :mod:`repro.runtime.worker` (one protocol message per method, plus
    unsolicited violation notices).  Shard indices are *global*: a
    runtime holds an arbitrary subset of the shard space and every
    query names the shard it targets, so placement lives entirely in
    the front end.
    """

    def ingest(
        self,
        shard_index: int,
        trace_id: TraceId,
        record: ReceiveRecord,
        tick: int | None = None,
    ) -> None: ...

    def flush_all(self) -> None: ...

    def flush_trace(self, shard_index: int, trace_id: TraceId) -> None: ...

    def close(self, shard_index: int, trace_id: TraceId) -> TraceSummary: ...

    def worst_ratio(
        self, shard_index: int, trace_id: TraceId
    ) -> Fraction | None: ...

    def is_degraded(self, shard_index: int, trace_id: TraceId) -> bool: ...

    def all_ratios(self) -> list[tuple[TraceId, Fraction | None]]: ...

    def set_budget(self, event_budget: int | None) -> None: ...

    def shard_stats(self) -> list[ShardStats]: ...


class _GroupObs:
    """The shard engine's instrument bundle on the group's registry.

    Everything here is a function of the protocol-call sequence the
    group receives (the module's determinism contract), so all of it is
    declared deterministic: two workers fed the same stream report
    bit-identical rows on the process and thread backends alike.
    """

    __slots__ = (
        "flushes",
        "batch_records",
        "evictions",
        "summary_compactions",
        "tombstoned",
        "budget_overruns",
        "live_events",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.flushes = registry.counter(
            "repro_shard_flushes_total",
            help="per-trace pending-buffer flushes absorbed by monitors",
        )
        self.batch_records = registry.histogram(
            "repro_shard_batch_records",
            deterministic=True,
            bounds=COUNT_BUCKETS,
            help="records per flushed batch",
        )
        self.evictions = registry.counter(
            "repro_shard_evictions_total",
            help="budget-driven eviction passes that removed events",
        )
        self.summary_compactions = registry.counter(
            "repro_shard_summary_compactions_total",
            help="eviction passes that fell back to summary compaction",
        )
        self.tombstoned = registry.counter(
            "repro_shard_tombstoned_events_total",
            help="live digraph events reclaimed by eviction/compaction",
        )
        self.budget_overruns = registry.counter(
            "repro_shard_budget_overruns_total",
            help="enforcement passes that could not reach the budget",
        )
        self.live_events = registry.gauge(
            "repro_shard_live_events",
            deterministic=True,
            help="live digraph events after the last enforcement pass",
        )


class ShardGroup:
    """A set of shards driven as one unit: the engine of every fleet.

    One group is the unit of *execution*: the serial fleet runs a single
    group holding all shards, a parallel worker runs one group over its
    assigned subset.  Within a group the budget, futility memos, peak
    watermark and violation ordering are exactly the pre-extraction
    fleet semantics; across groups nothing is shared, which is what
    makes the worker placement free.

    Args:
        shard_indices: the global shard indices this group owns.
        xi: optional synchrony parameter every trace is monitored
            against.
        batch_size: per-trace pending-record watermark that triggers an
            automatic flush.
        event_budget: optional cap on total live digraph events across
            *this group's* shards (the front end apportions a global
            budget across groups), enforced by LRU eviction with the
            summary-compaction fallback.
        auto_retire_after: optional idle age in ticks after which a
            trace is closed through the reopen-safe summary path.
        compact_threshold: optional adaptive compaction cadence passed
            to every default-constructed monitor (see
            :class:`~repro.analysis.online.OnlineAbcMonitor`).
        faulty / drop_faulty: per-monitor message filtering.
        kernel: detection-kernel name for every default-constructed
            monitor (``None`` follows the ambient ``REPRO_KERNEL``
            environment; per-trace specs may override).  Every kernel
            is exact, so this never changes an answer.
        monitor_factory: optional ``factory(trace_id) -> OnlineAbcMonitor``
            (thread-backend escape hatch; prefer ``monitor_specs``).
        monitor_specs: declarative per-trace monitor configuration --
            either one :class:`MonitorSpec` applied to every trace or a
            ``{trace_id: MonitorSpec}`` mapping (unlisted traces get the
            group defaults).  Plain data, so it crosses the process
            boundary; ignored when ``monitor_factory`` is given.
        emit_violation: called as ``emit_violation(trace_id, witness)``
            after the triggering flush finishes its bookkeeping (so the
            callback may re-enter the group, e.g. close the trace).
    """

    def __init__(
        self,
        shard_indices: Iterable[int],
        *,
        xi: Fraction | float | int | str | None = None,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        compact_threshold: float | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        kernel: str | None = None,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        monitor_specs: MonitorSpec | dict[TraceId, MonitorSpec] | None = None,
        emit_violation: Callable[[TraceId, CycleClassification], None]
        | None = None,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 1:
            # Validated here, not only in the monitor constructor, so
            # both fleet front ends fail at construction -- a parallel
            # worker hitting this at first ingest would die with its
            # shards marked crashed instead of raising in the caller.
            raise ValueError(
                "compact_threshold must exceed 1 (the live/boundary "
                f"ratio is at least 1), got {compact_threshold}"
            )
        self.xi = xi
        self.batch_size = batch_size
        self.event_budget = event_budget
        self.auto_retire_after = auto_retire_after
        self.compact_threshold = compact_threshold
        self.faulty = frozenset(faulty)
        self.drop_faulty = drop_faulty
        if kernel is not None:
            resolve_kernel_name(kernel)  # fail fast, as for specs
        self.kernel = kernel
        self.monitor_factory = monitor_factory
        self.monitor_specs = monitor_specs
        self.emit_violation = emit_violation
        # Optional delta hook: ``emit_ratio(trace_id, worst)`` fires on
        # every worst-ratio growth (merged with the trace's pre-reopen
        # retired maximum, so the value matches ``all_ratios``) and once
        # at trace open with the starting value.  Installed
        # post-construction by push-based consumers (the parallel
        # worker feeding the network delta plane); ``None`` costs one
        # attribute read per ratio increase.
        self.emit_ratio: Callable[[TraceId, Fraction | None], None] | None = (
            None
        )
        # Telemetry: each group owns its *own* registry (None when
        # disabled), so thread-backend workers never share instruments
        # and per-worker rows merge at the dispatcher like any other
        # counter.  Monitors built for this group re-bind to it in
        # ``_wire_monitor``.
        self.metrics: MetricsRegistry | None = (
            _obs_metrics.MetricsRegistry() if _obs_metrics.enabled() else None
        )
        self._obs: _GroupObs | None = (
            _GroupObs(self.metrics) if self.metrics is not None else None
        )
        self._monitor_obs = None
        self.shards: dict[int, FleetShard] = {
            index: FleetShard(index) for index in shard_indices
        }
        if not self.shards:
            raise ValueError("a shard group needs at least one shard")
        self.tick = 0
        self._live_events = 0
        self.peak_live_events = 0
        self.budget_overruns = 0
        # Trace ids whose worst ratio reached xi, detection order.
        self.violations: list[TraceId] = []
        self._enforcing = False
        # Live-event count at the last enforcement pass that ended over
        # budget; skip re-sweeping until something new is absorbed.
        self._futile_at: int | None = None
        # (trace_id, witness, chained monitor callback): violations are
        # recorded immediately but callbacks fire only after the
        # triggering flush finishes its bookkeeping, so a callback may
        # safely re-enter the group (e.g. close() the violating trace).
        self._deferred_violations: list[
            tuple[TraceId, CycleClassification, Callable | None]
        ] = []

    # ------------------------------------------------------------------
    # trace lifecycle
    # ------------------------------------------------------------------

    def state_of(self, shard: FleetShard, trace_id: TraceId) -> TraceState:
        state = shard.traces.get(trace_id)
        if state is None:
            # Re-opening a retired trace loses its digraph history: the
            # fresh monitor is exact on the new suffix only, so the trace
            # is permanently flagged degraded (ratios stay lower bounds
            # via the max-merge in close()).
            reopened = trace_id in shard.retired
            monitor = self._make_monitor(trace_id)
            self._wire_monitor(shard, trace_id, monitor)
            state = TraceState(monitor, reopened=reopened)
            shard.traces[trace_id] = state
            if self.emit_ratio is not None:
                # The trace's starting value: None for a fresh trace,
                # the retired maximum on a reopen (the floor the merge
                # in `_wire_monitor` keeps).
                summary = shard.retired.get(trace_id)
                self.emit_ratio(
                    trace_id,
                    None if summary is None else summary.worst_ratio,
                )
        return state

    def _spec_for(self, trace_id: TraceId) -> MonitorSpec | None:
        specs = self.monitor_specs
        if specs is None or isinstance(specs, MonitorSpec):
            return specs
        return specs.get(trace_id)

    def _make_monitor(self, trace_id: TraceId) -> OnlineAbcMonitor:
        from repro.analysis.online import OnlineAbcMonitor

        if self.monitor_factory is not None:
            monitor = self.monitor_factory(trace_id)
        else:
            spec = self._spec_for(trace_id)
            if spec is None:
                spec = _NO_SPEC
            monitor = OnlineAbcMonitor(
                xi=self.xi if spec.xi is None else spec.xi,
                faulty=self.faulty if spec.faulty is None else spec.faulty,
                drop_faulty=(
                    self.drop_faulty
                    if spec.drop_faulty is None
                    else spec.drop_faulty
                ),
                compact_threshold=(
                    self.compact_threshold
                    if spec.compact_threshold is None
                    else spec.compact_threshold
                ),
                kernel=self.kernel if spec.kernel is None else spec.kernel,
            )
        return monitor

    def _wire_monitor(
        self, shard: FleetShard, trace_id: TraceId, monitor: OnlineAbcMonitor
    ) -> None:
        """Attach this group's bookkeeping to a monitor: violation
        recording plus -- for delta consumers -- push-based worst-ratio
        updates.  Called for newly created monitors and for
        imported/restored ones, which arrive with callbacks stripped
        (they close over the *source* group and its shard objects) and
        must be re-wired to their new owner.

        Imported monitors are also re-pinned to *this* group's kernel
        resolution: checkpoints are kernel-portable, so a snapshot taken
        under one kernel restores under whatever the restoring group
        selects (factory-made monitors are left alone -- the factory's
        choice stands)."""
        if self.monitor_factory is None:
            spec = self._spec_for(trace_id) or _NO_SPEC
            monitor.set_kernel(
                self.kernel if spec.kernel is None else spec.kernel
            )
        if self.metrics is not None:
            # Re-bind the monitor's instruments (global registry by
            # default, stripped entirely on import/restore) to this
            # group's registry; one shared bundle serves every monitor
            # the group owns.
            if self._monitor_obs is None:
                from repro.analysis.online import MonitorObs

                self._monitor_obs = MonitorObs(self.metrics)
            monitor._obs = self._monitor_obs
        self._wire_violation(trace_id, monitor)
        chained = monitor.on_ratio_increase

        def on_increase(change) -> None:
            emit = self.emit_ratio
            if emit is not None:
                # Emit the *merged* value (open-monitor worst vs the
                # pre-reopen retired maximum): exactly what
                # `all_ratios` reports, so a delta consumer's last-wins
                # map converges to the pull-side answer.
                summary = shard.retired.get(trace_id)
                worst = change.worst
                if (
                    summary is not None
                    and summary.worst_ratio is not None
                    and summary.worst_ratio > worst
                ):
                    worst = summary.worst_ratio
                emit(trace_id, worst)
            if chained is not None:
                chained(change)

        monitor.on_ratio_increase = on_increase

    def _wire_violation(
        self, trace_id: TraceId, monitor: OnlineAbcMonitor
    ) -> None:
        """Attach this group's violation bookkeeping to a monitor,
        chaining any caller-installed callback (the violation half of
        :meth:`_wire_monitor`)."""
        chained = monitor.on_violation

        def note(witness: CycleClassification) -> None:
            # Fires mid-flush (inside observe_batch): record now, defer
            # the user-facing callbacks until the flush is reentrancy-safe.
            self.violations.append(trace_id)
            self._deferred_violations.append((trace_id, witness, chained))

        monitor.on_violation = note

    def _fire_deferred_violations(self) -> None:
        while self._deferred_violations:
            trace_id, witness, chained = self._deferred_violations.pop(0)
            if self.emit_violation is not None:
                self.emit_violation(trace_id, witness)
            if chained is not None:
                chained(witness)

    def buffer(
        self,
        shard_index: int,
        trace_id: TraceId,
        record: ReceiveRecord,
        tick: int | None = None,
    ) -> TraceState:
        """Route one record to its trace's pending buffer (no flush).

        The O(1) half of :meth:`ingest`; bulk front ends
        (``ingest_many``, the wire dispatcher) buffer a whole shard
        batch through here and flush watermark-crossers once per batch
        instead of once per record.
        """
        shard = self.shards[shard_index]
        state = self.state_of(shard, trace_id)
        if tick is None:
            self.tick = tick = self.tick + 1
        elif tick > self.tick:
            self.tick = tick
        # The touch time is the record's own stream tick, not the group
        # clock: bulk front ends process shard batches sequentially, so
        # the clock has already advanced past later shards' early
        # records -- stamping the clock would inflate their idle ages.
        state.last_touch = tick
        # Keep shard.traces in ingest order (LRU): the auto-retire sweep
        # only ever probes each shard's first entry.
        shard.traces[trace_id] = shard.traces.pop(trace_id)
        pending = state.pending
        if type(pending) is list:
            pending.append(record)
        else:
            # The trace's buffer is mid-batch columnar (the two ingest
            # surfaces may interleave on one trace, e.g. a metadata-free
            # fallback batch between columnar ones); fold the record in
            # rather than forcing a flush.
            pending.append_record(record)
        shard.records += 1
        return state

    def ingest(
        self,
        shard_index: int,
        trace_id: TraceId,
        record: ReceiveRecord,
        tick: int | None = None,
    ) -> None:
        """Buffer one record; flush its trace at the batch watermark.

        ``tick`` is the front end's global ingest counter (used by
        idle-age auto-retirement); ``None`` lets the group count its own
        ingests, which is the serial single-group behavior.
        """
        shard = self.shards[shard_index]
        state = self.buffer(shard_index, trace_id, record, tick)
        self.auto_retire()
        if len(state.pending) >= self.batch_size:
            self.flush_state(shard, state)
            self.enforce_budget()

    def ingest_batch(
        self,
        shard_index: int,
        batch: Iterable[tuple[int, TraceId, ReceiveRecord]],
    ) -> None:
        """Absorb a pre-grouped shard batch: buffer every record, then
        flush each watermark-crossing trace exactly once.

        This is the bulk-ingest path (``ingest_many``, the wire
        dispatcher): per-trace flush boundaries coarsen to the batch --
        which never changes a reported ratio, the worst ratio being a
        function of the observed graph -- while the per-record overhead
        (auto-retire sweep, budget probe) is paid once per batch.
        """
        shard = self.shards[shard_index]
        pending_over: dict[TraceId, TraceState] = {}
        for tick, trace_id, record in batch:
            state = self.buffer(shard_index, trace_id, record, tick)
            if len(state.pending) >= self.batch_size:
                pending_over[trace_id] = state
        self.auto_retire()
        for trace_id, state in pending_over.items():
            if shard.traces.get(trace_id) is state:
                self.flush_state(shard, state)
        self.enforce_budget()

    def ingest_batch_columnar(
        self,
        shard_index: int,
        ticks: Sequence[int],
        trace_ids: Sequence[TraceId],
        cols: RecordColumns,
    ) -> None:
        """Columnar twin of :meth:`ingest_batch`: absorb a shard batch
        of parallel columns without materializing record objects.

        Row ``k`` of ``ticks`` / ``trace_ids`` / ``cols`` is one
        receive record; each row is copied (:meth:`~repro.sim.trace.RecordColumns.append_from`,
        plain column stores) onto its trace's columnar pending builder,
        and watermark-crossing traces flush once per batch exactly as
        in :meth:`ingest_batch`.  Flushing a columnar buffer takes the
        zero-object path (:meth:`_flush_columns`) for healthy traces
        and falls back to materialized records for reopened or
        degraded ones, so everything observable -- ratios, flags,
        violation order, flush cadence, counters -- is bit-identical
        to object-path ingestion of the same rows.

        A trace whose pending buffer is a non-empty object list (the
        two ingest surfaces may interleave on one trace) folds this
        row in as a record instead; the fast path resumes after its
        next flush.
        """
        n = len(cols)
        if len(ticks) != n or len(trace_ids) != n:
            raise ValueError(
                f"ragged columnar batch: {len(ticks)} ticks, "
                f"{len(trace_ids)} trace ids, {n} record rows"
            )
        shard = self.shards[shard_index]
        traces = shard.traces
        batch_size = self.batch_size
        pending_over: dict[TraceId, TraceState] = {}
        for k in range(n):
            trace_id = trace_ids[k]
            state = self.state_of(shard, trace_id)
            tick = ticks[k]
            if tick is None:
                self.tick = tick = self.tick + 1
            elif tick > self.tick:
                self.tick = tick
            state.last_touch = tick
            traces[trace_id] = traces.pop(trace_id)
            pending = state.pending
            if type(pending) is list:
                if pending:
                    pending.append(cols.record_at(k))
                else:
                    fresh = RecordColumns()
                    fresh.append_from(cols, k)
                    state.pending = fresh
            else:
                pending.append_from(cols, k)
            shard.records += 1
            if len(state.pending) >= batch_size:
                pending_over[trace_id] = state
        self.auto_retire()
        for trace_id, state in pending_over.items():
            if traces.get(trace_id) is state:
                self.flush_state(shard, state)
        self.enforce_budget()

    def flush_all(self) -> None:
        for shard in self.shards.values():
            # Snapshot: a violation callback may close() traces
            # (their detached states flush as no-ops afterwards).
            for state in list(shard.traces.values()):
                self.flush_state(shard, state)
        self.enforce_budget()

    def flush_trace(self, shard_index: int, trace_id: TraceId) -> None:
        shard = self.shards[shard_index]
        state = shard.traces.get(trace_id)
        if state is not None:
            self.flush_state(shard, state)
        self.enforce_budget()

    def close(self, shard_index: int, trace_id: TraceId) -> TraceSummary:
        """Retire a finished trace: flush it, record an immutable
        summary, and free its digraph entirely.  See
        :meth:`repro.analysis.fleet.MonitorFleet.close` for semantics.
        """
        shard = self.shards[shard_index]
        state = shard.traces.get(trace_id)
        if state is None:
            summary = shard.retired.get(trace_id)
            if summary is None:
                raise KeyError(f"unknown trace {trace_id!r}")
            return summary
        self.flush_state(shard, state)
        if shard.traces.get(trace_id) is not state:
            # A violation callback fired by that flush already closed
            # the trace reentrantly; its summary is authoritative.
            return shard.retired[trace_id]
        monitor = state.monitor
        summary = TraceSummary(
            trace_id=trace_id,
            worst_ratio=monitor.worst_ratio,
            n_records=state.n_records,
            oracle_calls=monitor.oracle_calls,
            violation=monitor.violation,
            degraded=state.degraded,
        )
        previous = shard.retired.get(trace_id)
        if previous is not None:
            ratios = [
                r
                for r in (previous.worst_ratio, summary.worst_ratio)
                if r is not None
            ]
            summary = TraceSummary(
                trace_id=trace_id,
                worst_ratio=max(ratios) if ratios else None,
                n_records=previous.n_records + summary.n_records,
                oracle_calls=previous.oracle_calls + summary.oracle_calls,
                violation=previous.violation or summary.violation,
                degraded=True,
            )
        shard.retired[trace_id] = summary
        shard.retired_oracle_calls += monitor.oracle_calls
        self._live_events -= monitor.n_events
        del shard.traces[trace_id]
        # The group's composition changed: a sweep that was futile
        # before may now succeed at the same live count.
        self._futile_at = None
        return summary

    def auto_retire(self) -> None:
        """Close traces idle for ``auto_retire_after`` ticks.

        Each shard's trace table is kept in ingest order, so only its
        first entry can be stale; the sweep pops stale heads until each
        shard's oldest trace is young enough -- O(shards) per ingest
        when nothing retires.  Retirement goes through :meth:`close`,
        i.e. the reopen-safe :class:`TraceSummary` path.
        """
        age = self.auto_retire_after
        if age is None:
            return
        for shard in self.shards.values():
            while shard.traces:
                trace_id, state = next(iter(shard.traces.items()))
                if self.tick - state.last_touch < age:
                    break
                self.close(shard.index, trace_id)
                shard.auto_retired += 1

    # ------------------------------------------------------------------
    # flushing and the memory budget
    # ------------------------------------------------------------------

    def flush_state(self, shard: FleetShard, state: TraceState) -> None:
        if not state.pending:
            return
        batch = state.pending
        state.pending = []
        if type(batch) is not list:
            if state.reopened or state.monitor.forgotten_message_edges:
                # The gap-fill path needs record objects, and degraded
                # streams (an unsafe cut already happened) stay on the
                # reference path wholesale -- rare by construction, and
                # it keeps the columnar fast path free of the two
                # hairiest regimes.
                batch = batch.to_records()
            else:
                self._flush_columns(shard, state, batch)
                return
        if state.reopened:
            self._fill_gaps(state.monitor, batch)
        for record in batch:
            state.frontier[record.event.process] = record.event.index
            if record.sender is not None and record.send_event is not None:
                key = (record.send_event, record.event.process)
                if state.in_flight.get(key, 0) > 0:
                    state.in_flight[key] -= 1
                    if state.in_flight[key] == 0:
                        del state.in_flight[key]
            for send in record.sends:
                state.in_flight[(record.event, send.dest)] += 1
        state.monitor.observe_batch(batch)
        state.n_records += len(batch)
        shard.flushes += 1
        if self._obs is not None:
            self._obs.flushes.inc()
            self._obs.batch_records.observe(len(batch))
        self._live_events += state.monitor.n_events - state.live_cached
        state.live_cached = state.monitor.n_events
        # Absorbing records invalidates every "retrying is futile" memo:
        # pins and settledness moved, and comparing raw live-event
        # *counts* alone can collide (absorb N, evict N elsewhere lands
        # back on the memoized count and would skip a viable attempt).
        state.evict_marker = None
        self._futile_at = None
        # Bookkeeping is consistent from here on: violation callbacks
        # recorded by the batch may now re-enter the group.
        self._fire_deferred_violations()

    def _flush_columns(
        self, shard: FleetShard, state: TraceState, cols: RecordColumns
    ) -> None:
        """The columnar half of :meth:`flush_state`: one pass over the
        columns replicates the per-record frontier / in-flight
        bookkeeping (``Event`` keys fast-constructed from the columns,
        so they compare equal to the object path's keys), then the
        monitor absorbs the batch through
        :meth:`~repro.analysis.online.OnlineAbcMonitor.observe_batch_columnar`.
        Counters and memo invalidation mirror the object path line for
        line -- :meth:`flush_state` already routed reopened and
        degraded traces away from here.
        """
        frontier = state.frontier
        in_flight = state.in_flight
        processes = cols.processes
        indexes = cols.indexes
        senders = cols.senders
        send_processes = cols.send_processes
        send_indexes = cols.send_indexes
        sends = cols.sends
        new_event = Event.__new__
        for k in range(len(processes)):
            p = processes[k]
            frontier[p] = indexes[k]
            sp = send_processes[k]
            if senders[k] is not None and sp is not None:
                src = new_event(Event)
                src.__dict__["process"] = sp
                src.__dict__["index"] = send_indexes[k]
                key = (src, p)
                if in_flight.get(key, 0) > 0:
                    in_flight[key] -= 1
                    if in_flight[key] == 0:
                        del in_flight[key]
            rows = sends[k]
            if rows:
                event = new_event(Event)
                event.__dict__["process"] = p
                event.__dict__["index"] = indexes[k]
                for row in rows:
                    in_flight[(event, row[0])] += 1
        state.monitor.observe_batch_columnar(cols)
        state.n_records += len(cols)
        shard.flushes += 1
        if self._obs is not None:
            self._obs.flushes.inc()
            self._obs.batch_records.observe(len(cols))
        self._live_events += state.monitor.n_events - state.live_cached
        state.live_cached = state.monitor.n_events
        # Same memo invalidation as the object path (see flush_state).
        state.evict_marker = None
        self._futile_at = None
        self._fire_deferred_violations()

    @staticmethod
    def _fill_gaps(
        monitor: OnlineAbcMonitor, batch: list[ReceiveRecord]
    ) -> None:
        """Reconstruct the local-timeline skeleton a re-opened trace's
        fresh monitor is missing.

        A record arriving after retirement carries its original event
        index, which the fresh monitor's per-process timelines don't
        reach yet.  The gap events are exactly the (process, index)
        identities of the retired prefix, so adding them as bare events
        restores local order -- and lets late messages from pre-close
        send events re-attach -- while the prefix's own message edges
        stay lost, which is what the trace's ``degraded`` flag reports.
        """
        filled: dict[ProcessId, int] = {}

        def fill_below(process: ProcessId, stop: int) -> None:
            expected = filled.get(process, monitor.n_events_of(process))
            for gap in range(expected, stop):
                monitor.observe_event(Event(process, gap))
            filled[process] = max(expected, stop)

        for record in batch:
            if record.send_event is not None:
                # The triggering send may reference the retired prefix
                # of a process with no receive in this batch.
                fill_below(
                    record.send_event.process, record.send_event.index + 1
                )
            fill_below(record.event.process, record.event.index)
            filled[record.event.process] = record.event.index + 1

    def set_budget(self, event_budget: int | None) -> None:
        """Re-apportion this group's share of the global event budget.

        Called by the parallel dispatcher when rebalancing; a changed
        budget invalidates the futility memo (a pass that could not
        reach the old budget may well reach a larger one, and a smaller
        one must be re-attempted).
        """
        if event_budget == self.event_budget:
            return
        self.event_budget = event_budget
        self._futile_at = None
        self.enforce_budget()

    def reset_peak(self) -> int:
        """Close the current budget epoch: return the post-enforcement
        watermark accumulated since the last reset and restart it from
        the current live count (see the epoch-watermark merge in
        :mod:`repro.runtime.parallel`)."""
        peak = self.peak_live_events
        self.peak_live_events = self._live_events
        return peak

    def enforce_budget(self) -> None:
        """Evict prefixes, least-recently-ingested traces first, until
        the group is back under its event budget.

        Per trace, eviction first tries the prefix the no-crossing
        criterion proves exactly safe (frontiers and in-flight sends
        pinned).  When that removes nothing -- a causal chain links
        history to the frontier -- it falls back to *summary compaction*
        of everything below the pins: the monitor replaces the prefix by
        boundary summary edges that keep every reported ratio
        bit-identical (see
        :meth:`~repro.analysis.online.OnlineAbcMonitor.forget_prefix`),
        so the budget is a real bound on chain-shaped traces too.
        Neither path trades exactness for memory; a pass that cannot
        reach the budget -- every survivor is already compacted to its
        pinned core -- is counted in ``budget_overruns`` rather than
        forced.

        ``peak_live_events`` is the post-enforcement watermark: between
        absorbing a batch and enforcing the budget, the live count may
        transiently exceed it by at most that one batch.
        """
        budget = self.event_budget
        if budget is None or self._live_events <= budget or self._enforcing:
            self._note_peak()
            return
        if self._live_events == self._futile_at:
            # Nothing absorbed since a pass that could not reach the
            # budget: re-sweeping is provably futile, skip it.
            self._note_peak()
            return
        self._enforcing = True
        try:
            candidates = sorted(
                (
                    (state.last_touch, shard, trace_id, state)
                    for shard in self.shards.values()
                    for trace_id, state in shard.traces.items()
                ),
                key=lambda item: item[0],
            )
            for _touch, shard, trace_id, state in candidates:
                if self._live_events <= budget:
                    self._futile_at = None
                    return
                if shard.traces.get(trace_id) is not state:
                    continue  # closed reentrantly earlier in this pass
                # Pending buffers are NOT force-flushed here: eviction
                # works on the absorbed digraph, whose pins (frontier,
                # announced in-flight sends) already cover everything a
                # pending record can reference, and forcing flushes
                # would collapse the batching win fleet-wide whenever
                # the fleet sits over budget.
                if state.monitor.n_events == state.evict_marker:
                    continue  # unchanged since a known-futile attempt
                pinned = state.pinned_events()
                settled = state.monitor.settled_prefix(pinned)
                removed = (
                    state.monitor.forget_prefix(settled) if settled else 0
                )
                if self._live_events - removed > budget:
                    # Exact removal missed the budget -- blocked
                    # entirely on chain shapes, or insufficient on
                    # traces mixing settleable activity with a
                    # chain-shaped core: compact the remaining past
                    # into summary edges too, so the budget stays a
                    # real bound on every shape.
                    cut = state.monitor.compactable_prefix(pinned)
                    if cut:
                        summarized = state.monitor.forget_prefix(
                            cut, summarize=True
                        )
                        if summarized:
                            shard.summary_compactions += 1
                            if self._obs is not None:
                                self._obs.summary_compactions.inc()
                            removed += summarized
                if removed:
                    state.evict_marker = None
                    shard.evictions += 1
                    shard.tombstoned += removed
                    self._live_events -= removed
                    state.live_cached = state.monitor.n_events
                    if self._obs is not None:
                        self._obs.evictions.inc()
                        self._obs.tombstoned.inc(removed)
                else:
                    state.evict_marker = state.monitor.n_events
            if self._live_events > budget:
                self.budget_overruns += 1
                if self._obs is not None:
                    self._obs.budget_overruns.inc()
                self._futile_at = self._live_events
            else:
                self._futile_at = None
        finally:
            self._enforcing = False
            self._note_peak()

    def _note_peak(self) -> None:
        if self._live_events > self.peak_live_events:
            self.peak_live_events = self._live_events
        if self._obs is not None:
            self._obs.live_events.set(self._live_events)

    def metrics_rows(self) -> tuple[tuple, ...]:
        """This group's serialized telemetry rows (``()`` when
        disabled): the worker ships these over the reply protocol and
        the dispatcher sum-merges them across workers."""
        return self.metrics.to_rows() if self.metrics is not None else ()

    # ------------------------------------------------------------------
    # export / import / snapshot: traces as movable, durable units
    # ------------------------------------------------------------------

    def export_trace(self, trace_id: TraceId) -> tuple:
        """Detach one open trace and return it as a codec frame.

        The frame carries the monitor (callbacks stripped), the unflushed
        pending buffer, the in-flight/frontier bookkeeping, and -- when
        the id was retired before re-opening -- its prior summary, so the
        max-merge semantics of :meth:`close` survive the move.  The trace
        leaves this group entirely: another group may :meth:`import_trace`
        it, and the pair is a migration.  Raises ``KeyError`` for ids this
        group doesn't hold open.
        """
        from repro.runtime import codec

        for shard in self.shards.values():
            state = shard.traces.get(trace_id)
            if state is not None:
                frame = (
                    shard.index,
                    codec.encode_trace_state(trace_id, state),
                    (
                        codec.encode_summary(shard.retired[trace_id])
                        if trace_id in shard.retired
                        else None
                    ),
                )
                self._live_events -= state.live_cached
                del shard.traces[trace_id]
                shard.retired.pop(trace_id, None)
                self._futile_at = None
                return frame
        raise KeyError(f"unknown or retired trace {trace_id!r}")

    def import_trace(self, frame: tuple) -> TraceId:
        """Install a trace exported by :meth:`export_trace`.

        The monitor is re-wired to *this* group's violation bookkeeping;
        a violation already detected at the source stays detected (the
        monitor's once-only guard) and is not re-announced here.  The
        target shard is created on demand -- after a placement change the
        importing group legitimately owns a shard index it wasn't born
        with.  Returns the trace id.
        """
        from repro.runtime import codec

        shard_index, trace_frame, summary_row = frame
        shard = self.shards.get(shard_index)
        if shard is None:
            shard = self.shards[shard_index] = FleetShard(shard_index)
        trace_id, state = codec.decode_trace_state(trace_frame)
        if trace_id in shard.traces:
            raise ValueError(f"trace {trace_id!r} already open here")
        self._wire_monitor(shard, trace_id, state.monitor)
        shard.traces[trace_id] = state
        if summary_row is not None:
            shard.retired[trace_id] = codec.decode_summary(summary_row)
        if self.emit_ratio is not None:
            # Re-announce the migrated trace's current merged value so
            # a delta consumer downstream of *this* group is complete
            # without a full scan (last-wins, so the re-announcement
            # is idempotent for consumers that already knew it).
            self.emit_ratio(
                trace_id,
                self.merged_ratio(state, shard.retired.get(trace_id)),
            )
        self._live_events += state.live_cached
        if state.last_touch > self.tick:
            self.tick = state.last_touch
        self._futile_at = None
        self._note_peak()
        return trace_id

    def export_shard(self, shard_index: int) -> tuple:
        """Detach one whole shard -- open traces, retired summaries,
        lifetime counters -- as a codec frame (the unit the parallel
        dispatcher migrates).  The shard leaves this group."""
        from repro.runtime import codec

        shard = self.shards[shard_index]
        frame = codec.encode_shard_image(shard)
        self._live_events -= sum(
            state.live_cached for state in shard.traces.values()
        )
        del self.shards[shard_index]
        self._futile_at = None
        return frame

    def import_shard(self, frame: tuple) -> int:
        """Install a shard exported by :meth:`export_shard`, re-wiring
        every monitor to this group.  Returns the shard index."""
        from repro.runtime import codec

        shard = codec.decode_shard_image(frame)
        if shard.index in self.shards:
            raise ValueError(f"shard {shard.index} already owned here")
        for trace_id, state in shard.traces.items():
            self._wire_monitor(shard, trace_id, state.monitor)
            if self.emit_ratio is not None:
                self.emit_ratio(
                    trace_id,
                    self.merged_ratio(state, shard.retired.get(trace_id)),
                )
            self._live_events += state.live_cached
            if state.last_touch > self.tick:
                self.tick = state.last_touch
        self.shards[shard.index] = shard
        self._futile_at = None
        self._note_peak()
        return shard.index

    def snapshot(self) -> tuple:
        """The whole group as one codec frame: every shard image plus
        the group clock, violation log, overrun count and watermark.

        Taken *without* flushing -- pending buffers travel verbatim, so
        a restored group reproduces this one mid-stream, flush
        boundaries and all (the bit-identity the durability layer
        rests on).  The live group is not perturbed.
        """
        from repro.runtime import codec

        return codec.encode_group_snapshot(self)

    def load_snapshot(self, frame: tuple) -> None:
        """Replace this group's state with a :meth:`snapshot` image.

        Configuration (xi, batch size, budget, specs...) is *not* in the
        frame -- the caller rebuilds the group with its own configuration
        and then installs the image, which is what worker recovery and
        ``restore()`` do.  Every monitor is re-wired to this group.
        """
        from repro.runtime import codec

        tick, violations, overruns, peak, shards = (
            codec.decode_group_snapshot(frame)
        )
        self.shards = {shard.index: shard for shard in shards}
        if not self.shards:
            raise ValueError("snapshot holds no shards")
        live = 0
        for shard in self.shards.values():
            for trace_id, state in shard.traces.items():
                self._wire_monitor(shard, trace_id, state.monitor)
                if self.emit_ratio is not None:
                    self.emit_ratio(
                        trace_id,
                        self.merged_ratio(state, shard.retired.get(trace_id)),
                    )
                live += state.live_cached
        self.tick = tick
        self.violations = violations
        self.budget_overruns = overruns
        self._live_events = live
        self.peak_live_events = peak
        self._futile_at = None
        self._enforcing = False
        self._deferred_violations = []

    # ------------------------------------------------------------------
    # queries and aggregates
    # ------------------------------------------------------------------

    @staticmethod
    def merged_ratio(
        state: TraceState, summary: TraceSummary | None
    ) -> Fraction | None:
        """An open trace's ratio, merged with its pre-reopen summary:
        the historical maximum is kept across retirement, matching the
        lower-bound semantics of the ``degraded`` flag."""
        ratio = state.monitor.worst_ratio
        if summary is None or summary.worst_ratio is None:
            return ratio
        if ratio is None or summary.worst_ratio > ratio:
            return summary.worst_ratio
        return ratio

    def worst_ratio(
        self, shard_index: int, trace_id: TraceId
    ) -> Fraction | None:
        shard = self.shards[shard_index]
        state = shard.traces.get(trace_id)
        if state is not None:
            self.flush_state(shard, state)
            self.enforce_budget()
            return self.merged_ratio(state, shard.retired.get(trace_id))
        summary = shard.retired.get(trace_id)
        if summary is None:
            raise KeyError(f"unknown trace {trace_id!r}")
        return summary.worst_ratio

    def monitor_of(
        self, shard_index: int, trace_id: TraceId
    ) -> OnlineAbcMonitor:
        shard = self.shards[shard_index]
        state = shard.traces.get(trace_id)
        if state is None:
            raise KeyError(f"unknown or retired trace {trace_id!r}")
        self.flush_state(shard, state)
        self.enforce_budget()
        return state.monitor

    def is_degraded(self, shard_index: int, trace_id: TraceId) -> bool:
        shard = self.shards[shard_index]
        state = shard.traces.get(trace_id)
        if state is not None:
            return state.degraded
        summary = shard.retired.get(trace_id)
        if summary is None:
            raise KeyError(f"unknown trace {trace_id!r}")
        return summary.degraded

    def all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        """(trace_id, worst ratio) over open and retired traces, with
        everything pending flushed so the ratios are current.  Each
        trace appears exactly once: a trace re-opened after retirement
        is listed as open, with its retired maximum merged in."""
        self.flush_all()
        out: list[tuple[TraceId, Fraction | None]] = []
        for shard in self.shards.values():
            for trace_id, state in shard.traces.items():
                out.append(
                    (trace_id, self.merged_ratio(state, shard.retired.get(trace_id)))
                )
            for trace_id, summary in shard.retired.items():
                if trace_id not in shard.traces:
                    out.append((trace_id, summary.worst_ratio))
        return out

    @property
    def live_events(self) -> int:
        """Total live digraph events across this group's open monitors."""
        return self._live_events

    @property
    def open_traces(self) -> int:
        return sum(len(shard.traces) for shard in self.shards.values())

    @property
    def retired_traces(self) -> int:
        return sum(shard.n_retired() for shard in self.shards.values())

    def degraded_traces(self) -> int:
        """Distinct traces whose ratio is a lower bound (an open trace
        re-opened after retirement counts once, via its flag)."""
        return sum(
            1
            for shard in self.shards.values()
            for state in shard.traces.values()
            if state.degraded
        ) + sum(
            1
            for shard in self.shards.values()
            for trace_id, summary in shard.retired.items()
            if summary.degraded and trace_id not in shard.traces
        )

    def violating_ids(self) -> tuple[TraceId, ...]:
        """Deduplicated violation ids, first-detection order (no flush)."""
        return tuple(dict.fromkeys(self.violations))

    def shard_stats(self) -> list[ShardStats]:
        return [shard.stats() for shard in self.shards.values()]

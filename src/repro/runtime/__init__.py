"""The parallel fleet runtime: share-nothing shards on worker backends.

This package executes the monitoring plane itself as an asynchronous
system of independent workers -- the deployment shape the ROADMAP's
"actually running shards on worker threads/processes" item asked for:

* :mod:`repro.runtime.shard` -- the backend-agnostic shard engine
  (:class:`ShardGroup` / :class:`FleetShard` / the :class:`ShardRuntime`
  protocol), extracted from the serial fleet so both front ends share
  one shard implementation; traces are first-class movable units
  (``export_trace`` / ``import_trace`` / group ``snapshot``);
* :mod:`repro.runtime.codec` -- the compact wire encoding for records,
  ratios, summaries, statistics, violation witnesses, and the
  snapshot/WAL frames of the durability plane;
* :mod:`repro.runtime.worker` -- the worker-side message loop driving
  one :class:`ShardGroup`;
* :mod:`repro.runtime.backends` -- process and thread execution
  backends (bounded inboxes, liveness probing);
* :mod:`repro.runtime.durable` -- record journals plus periodic shard
  snapshots (:class:`Durability` / :class:`DurableStore`): the
  persistence layer behind worker recovery and whole-fleet restore;
* :mod:`repro.runtime.parallel` -- the :class:`ParallelFleet` facade:
  the serial fleet's ``ingest / ingest_many / flush / close /
  worst_ratio / report`` surface, with shards spread across workers
  through an explicit (migratable) placement table, a global event
  budget apportioned and rebalanced per worker, crash *recovery* under
  ``durability=``, and per-trace results bit-identical to
  :class:`repro.analysis.fleet.MonitorFleet`;
* :mod:`repro.runtime.net` -- the network ingestion plane: an asyncio
  ingest server over N sharded fleet fronts, exactly-once producer
  clients, and delta-streaming observability
  (:class:`IngestServer` / :class:`ProducerClient` /
  :class:`DeltaSubscriber`).
"""

from repro.runtime.backends import ProcessBackend, ThreadBackend, WorkerCrashed
from repro.runtime.durable import Durability, DurableStore
from repro.runtime.net import (
    DeltaStore,
    DeltaSubscriber,
    DeltaView,
    IngestServer,
    ProducerClient,
)
from repro.runtime.parallel import ParallelFleet
from repro.runtime.shard import (
    FleetReport,
    FleetShard,
    MonitorSpec,
    ShardGroup,
    ShardRuntime,
    ShardStats,
    TraceId,
    TraceState,
    TraceSummary,
)

__all__ = [
    "DeltaStore",
    "DeltaSubscriber",
    "DeltaView",
    "Durability",
    "DurableStore",
    "FleetReport",
    "IngestServer",
    "ProducerClient",
    "FleetShard",
    "MonitorSpec",
    "ParallelFleet",
    "ProcessBackend",
    "ShardGroup",
    "ShardRuntime",
    "ShardStats",
    "ThreadBackend",
    "TraceId",
    "TraceState",
    "TraceSummary",
    "WorkerCrashed",
]

"""The parallel fleet runtime: share-nothing shards on worker backends.

This package executes the monitoring plane itself as an asynchronous
system of independent workers -- the deployment shape the ROADMAP's
"actually running shards on worker threads/processes" item asked for:

* :mod:`repro.runtime.shard` -- the backend-agnostic shard engine
  (:class:`ShardGroup` / :class:`FleetShard` / the :class:`ShardRuntime`
  protocol), extracted from the serial fleet so both front ends share
  one shard implementation;
* :mod:`repro.runtime.codec` -- the compact wire encoding for records,
  ratios, summaries, statistics and violation witnesses;
* :mod:`repro.runtime.worker` -- the worker-side message loop driving
  one :class:`ShardGroup`;
* :mod:`repro.runtime.backends` -- process and thread execution
  backends (bounded inboxes, liveness probing);
* :mod:`repro.runtime.parallel` -- the :class:`ParallelFleet` facade:
  the serial fleet's ``ingest / ingest_many / flush / close /
  worst_ratio / report`` surface, with shards spread across workers,
  a global event budget apportioned and rebalanced per worker, and
  per-trace results bit-identical to :class:`repro.analysis.fleet.MonitorFleet`.
"""

from repro.runtime.backends import ProcessBackend, ThreadBackend, WorkerCrashed
from repro.runtime.parallel import ParallelFleet
from repro.runtime.shard import (
    FleetReport,
    FleetShard,
    ShardGroup,
    ShardRuntime,
    ShardStats,
    TraceId,
    TraceState,
    TraceSummary,
)

__all__ = [
    "FleetReport",
    "FleetShard",
    "ParallelFleet",
    "ProcessBackend",
    "ShardGroup",
    "ShardRuntime",
    "ShardStats",
    "ThreadBackend",
    "TraceId",
    "TraceState",
    "TraceSummary",
    "WorkerCrashed",
]

"""The worker-side message loop: one :class:`ShardGroup` behind a queue.

A worker owns a fixed subset of the global shard space and drives it as
one :class:`~repro.runtime.shard.ShardGroup` -- the same engine the
serial fleet runs in process -- in response to protocol messages from
the dispatcher.  The loop is single-threaded and processes its inbox in
FIFO order, so per-trace record order (guaranteed by the dispatcher's
per-shard batching) translates directly into per-trace observation
order, which is what makes worker-side ratios bit-identical to the
serial fleet's.

Protocol (all messages are plain tuples; payloads go through
:mod:`repro.runtime.codec`):

=====================  ==============================================
inbound                meaning
=====================  ==============================================
``("ingest", s, b)``    absorb shard batch ``b`` into shard ``s``
                        (buffer, auto-retire probe, watermark flushes)
``("flush", r, t)``     advance the clock to tick ``t`` (with an
                        auto-retire probe -- a quiet worker must still
                        retire its idle traces), flush all
``("flush_trace", r, s, tid)``  flush one trace
``("close", r, s, tid)``        retire a trace -> encoded summary
``("ratio", r, s, tid)``        worst ratio -> encoded fraction
``("degraded", r, s, tid)``     degradation flag -> bool
``("ratios", r, t)``            all (trace id, encoded ratio) pairs
``("counters", r)``             (live, open, retired) -- pure read, no
                                flush (cheap telemetry polling)
``("report", r, t)``            encoded shard stats + group counters
``("budget", r, n)``            re-apportioned event budget; replies
                                with the closed epoch's peak watermark
``("fence", r, t)``             sync point: advance the clock, ack.
                                FIFO order makes the ack proof that
                                every earlier message was absorbed --
                                the ordering primitive of migration
                                and recovery (no flush: batching
                                boundaries stay undisturbed)
``("snapshot", r, t)``          codec-framed image of the whole group
                                (taken *without* flushing)
``("restore", r, f)``           replace the group's state with a
                                snapshot frame (worker recovery /
                                fleet restore)
``("metrics", r)``              the group's serialized telemetry rows
                                (``()`` when telemetry is disabled) --
                                pure read, no flush; the dispatcher
                                sum-merges rows across workers
``("export_trace", r, tid)``    detach one trace -> codec frame
``("import_trace", r, f)``      install an exported trace
``("export_shard", r, s)``      detach one whole shard -> codec frame
``("import_shard", r, f)``      install an exported shard
``("stop", r)``                 graceful drain: flush, ack, exit
=====================  ==============================================

Replies are ``("reply", req_id, payload, notices, ratio_rows, live,
peak)`` where ``payload`` is ``("ok", value)`` or ``("err", kind,
message)`` (the dispatcher re-raises ``KeyError`` locally, preserving
the serial surface), ``notices`` are the violation notices accumulated
since the last send, ``ratio_rows`` are the worst-ratio update rows
accumulated since the last send (coalesced last-wins per trace --
the push feed of the network delta plane, empty unless something's
ratio actually moved), and ``live``/``peak`` feed the dispatcher's
budget rebalancing and epoch watermark.  ``ingest`` sends no reply;
pending notices and ratio rows are pushed unsolicited as
``("notices", notices, ratio_rows, live, peak)`` so violations and
delta updates never wait for the next query.  Any exception escaping a
handler emits ``("crash", worker_id, traceback)`` and ends the worker:
the dispatcher then surfaces the worker's shards as crashed/degraded
instead of hanging on a silent peer.
"""

from __future__ import annotations

import logging
import traceback
from typing import Any

from repro.obs import metrics as _obs_metrics
from repro.obs.trace import TraceContext, new_context
from repro.runtime import codec
from repro.runtime.shard import ShardGroup, TraceId

__all__ = ["worker_main"]

logger = logging.getLogger(__name__)


def _build_group(
    shard_indices: tuple[int, ...],
    config: dict[str, Any],
    notices: list[tuple],
    ratio_updates: dict[TraceId, tuple[int, int] | None],
) -> ShardGroup:
    group = ShardGroup(
        shard_indices,
        xi=codec.decode_fraction(config["xi"]),
        batch_size=config["batch_size"],
        event_budget=config["event_budget"],
        auto_retire_after=config["auto_retire_after"],
        compact_threshold=config["compact_threshold"],
        faulty=frozenset(config["faulty"]),
        drop_faulty=config["drop_faulty"],
        kernel=config.get("kernel"),
        monitor_factory=config.get("monitor_factory"),
        monitor_specs=codec.decode_specs(config.get("monitor_specs")),
    )

    def emit(trace_id: TraceId, witness) -> None:
        # The deterministic merge key is the violating trace's last
        # absorbed global ingest tick at the detecting flush.  Flush
        # boundaries -- and with them this tick -- depend on the wire
        # batching, so the key is deterministic for a fixed fleet
        # configuration and call sequence (what the merge contract
        # promises), not invariant across configurations.
        tick = group.tick
        for shard in group.shards.values():
            state = shard.traces.get(trace_id)
            if state is not None:
                tick = state.last_touch
                break
        notices.append(codec.encode_notice(tick, trace_id, witness))

    def emit_ratio(trace_id: TraceId, worst) -> None:
        # Last-wins per trace: ratios only grow, so only the newest
        # value matters to a delta consumer -- a burst of increases
        # between sends collapses to one row.
        ratio_updates[trace_id] = codec.encode_fraction(worst)

    group.emit_violation = emit
    group.emit_ratio = emit_ratio
    return group


def worker_main(
    worker_id: int,
    shard_indices: tuple[int, ...],
    config: dict[str, Any],
    inbox: Any,
    outbox: Any,
) -> None:
    """Run one worker until ``("stop", ...)`` or a crash.

    ``inbox``/``outbox`` are queue-likes (``multiprocessing.Queue`` or
    ``queue.Queue``); the loop never touches anything else, which is
    what makes the worker backend-agnostic.
    """
    if "obs" in config:
        # The dispatcher pins telemetry explicitly: a programmatic
        # set_enabled() in the parent must bind in children even under
        # a spawn start method (fork inherits it for free).
        _obs_metrics.set_enabled(bool(config["obs"]))
    notices: list[tuple] = []
    ratio_updates: dict[TraceId, tuple[int, int] | None] = {}
    group = _build_group(
        tuple(shard_indices), config, notices, ratio_updates
    )
    # Lifecycle tracing for the absorb stage; None when disabled (the
    # ingest hot path then pays one is-None test per *batch*).
    ctx: TraceContext | None = (
        new_context(group.metrics, name=f"w{worker_id}")
        if group.metrics is not None
        else None
    )

    def drain_notices() -> list[tuple]:
        out = notices[:]
        notices.clear()
        return out

    def drain_ratios() -> tuple[tuple, ...]:
        if not ratio_updates:
            return ()
        out = tuple(ratio_updates.items())
        ratio_updates.clear()
        return out

    def reply(req_id: int, payload: tuple) -> None:
        outbox.put(
            (
                "reply",
                req_id,
                payload,
                drain_notices(),
                drain_ratios(),
                group.live_events,
                group.peak_live_events,
            )
        )

    def advance(tick: int) -> None:
        # A barrier advances this worker's clock to the dispatcher's
        # global ingest count -- and must also probe retirement: the
        # serial fleet sweeps on every ingest anywhere, so by barrier
        # time it has already retired anything this age covers, while
        # a worker whose shards stopped receiving traffic would
        # otherwise hold its idle traces (and their budget share) open
        # forever.  Retirement *timing* still differs from serial by
        # design -- the documented carve-out -- but never by "never".
        group.tick = max(group.tick, tick)
        group.auto_retire()

    try:
        while True:
            message = inbox.get()
            cmd = message[0]
            if cmd == "ingest":
                _cmd, shard_index, wire_batch = message
                # Columnar decode: two C-speed transposes instead of a
                # per-record object build; the shard engine keeps the
                # batch columnar all the way into the checker (reopened
                # or degraded traces fall back to materialized records
                # at flush time).  Malformed (ragged) frames raise here
                # and surface through crash containment, like any other
                # poison message.
                span = None if ctx is None else ctx.span("worker_absorb")
                ticks, trace_ids, cols = codec.decode_records_columnar(
                    wire_batch
                )
                group.ingest_batch_columnar(
                    shard_index, ticks, trace_ids, cols
                )
                if span is not None:
                    span.end()
                if notices or ratio_updates:
                    outbox.put(
                        (
                            "notices",
                            drain_notices(),
                            drain_ratios(),
                            group.live_events,
                            group.peak_live_events,
                        )
                    )
            elif cmd == "flush":
                _cmd, req_id, tick = message
                advance(tick)
                group.flush_all()
                reply(req_id, ("ok", None))
            elif cmd == "flush_trace":
                _cmd, req_id, shard_index, trace_id = message
                group.flush_trace(shard_index, trace_id)
                reply(req_id, ("ok", None))
            elif cmd == "close":
                _cmd, req_id, shard_index, trace_id = message
                try:
                    summary = group.close(shard_index, trace_id)
                except KeyError as exc:
                    reply(req_id, ("err", "KeyError", str(exc)))
                else:
                    reply(req_id, ("ok", codec.encode_summary(summary)))
            elif cmd == "ratio":
                _cmd, req_id, shard_index, trace_id = message
                try:
                    ratio = group.worst_ratio(shard_index, trace_id)
                except KeyError as exc:
                    reply(req_id, ("err", "KeyError", str(exc)))
                else:
                    reply(req_id, ("ok", codec.encode_fraction(ratio)))
            elif cmd == "degraded":
                _cmd, req_id, shard_index, trace_id = message
                try:
                    flag = group.is_degraded(shard_index, trace_id)
                except KeyError as exc:
                    reply(req_id, ("err", "KeyError", str(exc)))
                else:
                    reply(req_id, ("ok", flag))
            elif cmd == "ratios":
                _cmd, req_id, tick = message
                advance(tick)
                pairs = [
                    (trace_id, codec.encode_fraction(ratio))
                    for trace_id, ratio in group.all_ratios()
                ]
                reply(req_id, ("ok", pairs))
            elif cmd == "counters":
                _cmd, req_id = message
                reply(
                    req_id,
                    (
                        "ok",
                        (
                            group.live_events,
                            group.open_traces,
                            group.retired_traces,
                        ),
                    ),
                )
            elif cmd == "metrics":
                _cmd, req_id = message
                reply(
                    req_id,
                    ("ok", codec.encode_metrics_rows(group.metrics_rows())),
                )
            elif cmd == "report":
                _cmd, req_id, tick = message
                advance(tick)
                group.flush_all()
                payload = (
                    [codec.encode_stats(s) for s in group.shard_stats()],
                    group.open_traces,
                    group.retired_traces,
                    group.degraded_traces(),
                    group.budget_overruns,
                )
                reply(req_id, ("ok", payload))
            elif cmd == "budget":
                _cmd, req_id, event_budget = message
                epoch_peak = group.reset_peak()
                group.set_budget(event_budget)
                reply(req_id, ("ok", epoch_peak))
            elif cmd == "fence":
                _cmd, req_id, tick = message
                advance(tick)
                reply(req_id, ("ok", None))
            elif cmd == "snapshot":
                _cmd, req_id, tick = message
                advance(tick)
                reply(req_id, ("ok", group.snapshot()))
            elif cmd == "restore":
                _cmd, req_id, frame = message
                group.load_snapshot(frame)
                reply(req_id, ("ok", None))
            elif cmd == "export_trace":
                _cmd, req_id, trace_id = message
                try:
                    frame = group.export_trace(trace_id)
                except KeyError as exc:
                    reply(req_id, ("err", "KeyError", str(exc)))
                else:
                    reply(req_id, ("ok", frame))
            elif cmd == "import_trace":
                _cmd, req_id, frame = message
                reply(req_id, ("ok", group.import_trace(frame)))
            elif cmd == "export_shard":
                _cmd, req_id, shard_index = message
                try:
                    frame = group.export_shard(shard_index)
                except KeyError as exc:
                    reply(req_id, ("err", "KeyError", str(exc)))
                else:
                    reply(req_id, ("ok", frame))
            elif cmd == "import_shard":
                _cmd, req_id, frame = message
                reply(req_id, ("ok", group.import_shard(frame)))
            elif cmd == "stop":
                _cmd, req_id = message
                # Graceful drain: absorb everything buffered so the
                # final notices and counters are complete.
                group.flush_all()
                reply(req_id, ("ok", None))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown worker command {cmd!r}")
    except BaseException:
        # Surface the failure instead of dying silently: the dispatcher
        # turns this into degraded shards, never a hung fleet.
        tb = traceback.format_exc()
        logger.error("worker %d crashed:\n%s", worker_id, tb)
        try:
            outbox.put(("crash", worker_id, tb))
        except Exception:  # pragma: no cover - outbox itself broken
            pass
        return

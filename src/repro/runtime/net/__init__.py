"""The network ingestion plane: remote producers over sharded fronts.

This package puts the parallel runtime behind a socket:

* :mod:`repro.runtime.net.wire` -- length-prefixed CRC-checked frame
  streaming (the WAL frame format of :mod:`repro.runtime.durable`,
  reused verbatim on the network);
* :mod:`repro.runtime.net.server` -- :class:`IngestServer`: an asyncio
  stream server (TCP and/or Unix-domain) feeding N independent
  ingestion fronts, each a :class:`~repro.runtime.parallel.
  ParallelFleet` owning a disjoint slice of the shard space and a
  disjoint interleaved slice of the global tick space, with
  exactly-once producer resume and credit-window backpressure;
* :mod:`repro.runtime.net.client` -- :class:`ProducerClient` (batching,
  replay-on-reconnect, windowed) and :class:`DeltaSubscriber`;
* :mod:`repro.runtime.net.deltas` -- :class:`DeltaStore` /
  :class:`DeltaView`: delta-streaming observability, reconstructing
  the fleet's aggregate reports from incremental updates alone.
"""

from repro.runtime.net.client import DeltaSubscriber, ProducerClient
from repro.runtime.net.deltas import DeltaStore, DeltaView
from repro.runtime.net.server import IngestServer
from repro.runtime.net.wire import FrameSocket, ProtocolError, read_frame

__all__ = [
    "DeltaStore",
    "DeltaSubscriber",
    "DeltaView",
    "FrameSocket",
    "IngestServer",
    "ProducerClient",
    "ProtocolError",
    "read_frame",
]
